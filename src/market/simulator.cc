#include "market/simulator.h"

#include <algorithm>
#include <cmath>

#include "stats/distributions.h"
#include "stats/poisson.h"
#include "util/macros.h"
#include "util/stringf.h"

namespace crowdprice::market {

Status SimulatorConfig::Validate() const {
  if (total_tasks < 1) {
    return Status::InvalidArgument(
        StringF("total_tasks must be >= 1; got %lld",
                static_cast<long long>(total_tasks)));
  }
  if (!(horizon_hours > 0.0) || !std::isfinite(horizon_hours)) {
    return Status::InvalidArgument(
        StringF("horizon_hours must be > 0; got %g", horizon_hours));
  }
  if (!(decision_interval_hours > 0.0)) {
    return Status::InvalidArgument(
        StringF("decision_interval_hours must be > 0; got %g",
                decision_interval_hours));
  }
  if (!(service_minutes_per_task >= 0.0)) {
    return Status::InvalidArgument("service_minutes_per_task must be >= 0");
  }
  if (!(retention.max_rate >= 0.0 && retention.max_rate < 1.0)) {
    return Status::InvalidArgument("retention.max_rate must be in [0, 1)");
  }
  if (!(retention.half_price_cents > 0.0)) {
    return Status::InvalidArgument("retention.half_price_cents must be > 0");
  }
  if (accuracy.enabled &&
      (!(accuracy.beta_alpha > 0.0) || !(accuracy.beta_beta > 0.0))) {
    return Status::InvalidArgument("accuracy Beta parameters must be > 0");
  }
  return Status::OK();
}

namespace {

Status ValidateOffer(const Offer& offer) {
  if (offer.group_size < 1) {
    return Status::InvalidArgument(
        StringF("controller returned group_size %d (< 1)", offer.group_size));
  }
  if (!(offer.per_task_reward_cents >= 0.0) ||
      !std::isfinite(offer.per_task_reward_cents)) {
    return Status::InvalidArgument(
        StringF("controller returned invalid reward %g",
                offer.per_task_reward_cents));
  }
  return Status::OK();
}

}  // namespace

Result<SimulationResult> RunSimulation(const SimulatorConfig& config,
                                       const arrival::PiecewiseConstantRate& rate,
                                       const choice::AcceptanceFunction& acceptance,
                                       PricingController& controller, Rng& rng) {
  CP_RETURN_IF_ERROR(config.Validate());

  SimulationResult result;
  int64_t remaining = config.total_tasks;
  double next_epoch = 0.0;
  Offer offer;
  bool offer_valid = false;
  double last_completion = 0.0;

  // Stream NHPP arrivals one rate bucket at a time (workloads with generous
  // horizons stop as soon as the batch is assigned, without materializing
  // the remaining arrivals).
  const double bucket = rate.bucket_width_hours();
  double seg_start = 0.0;
  std::vector<double> arrivals;
  while (seg_start < config.horizon_hours && remaining > 0) {
    const double next_edge =
        (std::floor(seg_start / bucket + 1e-12) + 1.0) * bucket;
    const double seg_end = std::min(next_edge, config.horizon_hours);
    if (seg_end <= seg_start) {
      return Status::NumericError("arrival bucket walk made no progress");
    }
    const double mean = rate.At(seg_start) * (seg_end - seg_start);
    const int count = stats::SamplePoisson(rng, mean);
    arrivals.clear();
    arrivals.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
      arrivals.push_back(seg_start + rng.NextDouble() * (seg_end - seg_start));
    }
    std::sort(arrivals.begin(), arrivals.end());
    seg_start = seg_end;

  for (double t : arrivals) {
    if (remaining <= 0) break;
    ++result.worker_arrivals;
    // Refresh the offer at every decision epoch boundary crossed so far.
    while (next_epoch <= t) {
      CP_ASSIGN_OR_RETURN(offer, controller.Decide(next_epoch, remaining));
      CP_RETURN_IF_ERROR(ValidateOffer(offer));
      offer_valid = true;
      next_epoch += config.decision_interval_hours;
    }
    if (config.decide_on_every_assignment || !offer_valid) {
      CP_ASSIGN_OR_RETURN(offer, controller.Decide(t, remaining));
      CP_RETURN_IF_ERROR(ValidateOffer(offer));
      offer_valid = true;
    }

    const double p = acceptance.ProbabilityAt(offer.per_task_reward_cents);
    if (!(p >= 0.0 && p <= 1.0)) {
      return Status::NumericError(
          StringF("acceptance p(%g) = %g outside [0, 1]",
                  offer.per_task_reward_cents, p));
    }
    if (!rng.Bernoulli(p)) continue;

    // The worker takes HITs until they quit (retention) or tasks run out.
    WorkerRecord worker;
    worker.first_accept_hours = t;
    worker.true_accuracy =
        config.accuracy.enabled
            ? stats::SampleBeta(rng, config.accuracy.beta_alpha,
                                config.accuracy.beta_beta)
            : 0.0;
    double now = t;
    Offer active = offer;
    while (remaining > 0) {
      if (config.decide_on_every_assignment) {
        CP_ASSIGN_OR_RETURN(active, controller.Decide(now, remaining));
        CP_RETURN_IF_ERROR(ValidateOffer(active));
      }
      const int take =
          static_cast<int>(std::min<int64_t>(active.group_size, remaining));
      remaining -= take;
      result.tasks_assigned += take;
      const double done_at =
          now + config.service_minutes_per_task * take / 60.0;
      const double paid = active.per_task_reward_cents * take;
      result.total_cost_cents += paid;
      CompletionEvent ev;
      ev.time_hours = done_at;
      ev.tasks = take;
      ev.cost_cents = paid;
      ev.group_size = active.group_size;
      result.events.push_back(ev);
      last_completion = std::max(last_completion, done_at);
      worker.hits += 1;
      worker.tasks += take;
      if (config.accuracy.enabled) {
        worker.correct += stats::SampleBinomial(rng, take, worker.true_accuracy);
      }
      now = done_at;
      // Quit the session at the horizon or by the retention coin flip.
      if (now >= config.horizon_hours) break;
      if (!rng.Bernoulli(
              config.retention.ProbabilityAt(active.per_task_reward_cents))) {
        break;
      }
    }
    result.workers.push_back(worker);
  }
  }

  for (const auto& ev : result.events) {
    if (ev.time_hours <= config.horizon_hours) {
      result.tasks_completed_by_horizon += ev.tasks;
    }
  }
  result.tasks_unassigned = config.total_tasks - result.tasks_assigned;
  result.finished = result.tasks_assigned == config.total_tasks;
  result.completion_time_hours =
      result.finished ? last_completion : config.horizon_hours;
  return result;
}

}  // namespace crowdprice::market
