#include "market/simulator.h"

#include <cmath>
#include <utility>

#include "market/session.h"
#include "util/macros.h"
#include "util/stringf.h"

namespace crowdprice::market {

Status SimulatorConfig::Validate() const {
  if (total_tasks < 1) {
    return Status::InvalidArgument(
        StringF("total_tasks must be >= 1; got %lld",
                static_cast<long long>(total_tasks)));
  }
  if (!(horizon_hours > 0.0) || !std::isfinite(horizon_hours)) {
    return Status::InvalidArgument(
        StringF("horizon_hours must be > 0; got %g", horizon_hours));
  }
  if (!(decision_interval_hours > 0.0)) {
    return Status::InvalidArgument(
        StringF("decision_interval_hours must be > 0; got %g",
                decision_interval_hours));
  }
  if (!(service_minutes_per_task >= 0.0)) {
    return Status::InvalidArgument("service_minutes_per_task must be >= 0");
  }
  if (!(retention.max_rate >= 0.0 && retention.max_rate < 1.0)) {
    return Status::InvalidArgument("retention.max_rate must be in [0, 1)");
  }
  if (!(retention.half_price_cents > 0.0)) {
    return Status::InvalidArgument("retention.half_price_cents must be > 0");
  }
  if (accuracy.enabled &&
      (!(accuracy.beta_alpha > 0.0) || !(accuracy.beta_beta > 0.0))) {
    return Status::InvalidArgument("accuracy Beta parameters must be > 0");
  }
  return Status::OK();
}

Result<SimulationResult> RunSimulation(
    const SimulatorConfig& config, const arrival::PiecewiseConstantRate& rate,
    const choice::AcceptanceFunction& acceptance, PricingController& controller,
    Rng& rng, double start_hours) {
  // One campaign is a session advanced to its horizon in a single slice;
  // the fleet simulator advances the same session type on a shared clock,
  // which is why its outcomes are bit-identical to this function's --
  // including campaigns admitted mid-run, which compare to a serial run
  // with the same start_hours.
  CP_ASSIGN_OR_RETURN(CampaignSession session,
                      CampaignSession::CreateAt(config, rate, acceptance,
                                                controller, rng, start_hours));
  CP_RETURN_IF_ERROR(session.AdvanceUntil(session.end_hours()));
  rng = session.rng();
  return std::move(session).TakeResult();
}

}  // namespace crowdprice::market
