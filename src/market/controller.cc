#include "market/controller.h"

#include <algorithm>
#include <cmath>

#include "util/macros.h"
#include "util/stringf.h"

namespace crowdprice::market {

Result<int64_t> SingleTypeRemaining(const DecisionRequest& request) {
  if (request.remaining.size() != 1) {
    return Status::InvalidArgument(
        StringF("single-type controller consulted with %zu task types",
                request.remaining.size()));
  }
  return request.remaining[0];
}

Result<OfferSheet> FixedOfferController::Decide(
    const DecisionRequest& request) {
  CP_RETURN_IF_ERROR(SingleTypeRemaining(request).status());
  return OfferSheet::Single(offer_);
}

Result<ScheduleController> ScheduleController::Create(
    std::vector<Offer> schedule, double interval_hours) {
  if (schedule.empty()) {
    return Status::InvalidArgument("ScheduleController needs >= 1 interval");
  }
  if (!(interval_hours > 0.0)) {
    return Status::InvalidArgument(
        StringF("interval must be > 0; got %g", interval_hours));
  }
  for (const Offer& o : schedule) {
    if (o.group_size < 1 || !(o.per_task_reward_cents >= 0.0)) {
      return Status::InvalidArgument("schedule contains an invalid offer");
    }
  }
  return ScheduleController(std::move(schedule), interval_hours);
}

Result<OfferSheet> ScheduleController::Decide(const DecisionRequest& request) {
  CP_RETURN_IF_ERROR(SingleTypeRemaining(request).status());
  if (request.campaign_hours < 0.0) {
    return Status::InvalidArgument("Decide called with negative time");
  }
  size_t idx = static_cast<size_t>(request.campaign_hours / interval_hours_);
  idx = std::min(idx, schedule_.size() - 1);
  return OfferSheet::Single(schedule_[idx]);
}

Result<SemiStaticController> SemiStaticController::Create(
    std::vector<double> prices_cents) {
  if (prices_cents.empty()) {
    return Status::InvalidArgument("SemiStaticController needs >= 1 price");
  }
  for (double c : prices_cents) {
    if (!(c >= 0.0) || !std::isfinite(c)) {
      return Status::InvalidArgument(
          StringF("invalid price %g in sequence", c));
    }
  }
  return SemiStaticController(std::move(prices_cents));
}

Result<OfferSheet> SemiStaticController::Decide(
    const DecisionRequest& request) {
  CP_ASSIGN_OR_RETURN(int64_t remaining_tasks, SingleTypeRemaining(request));
  const int64_t total = static_cast<int64_t>(prices_.size());
  if (remaining_tasks <= 0 || remaining_tasks > total) {
    return Status::OutOfRange(
        StringF("remaining_tasks %lld outside (0, %lld]",
                static_cast<long long>(remaining_tasks),
                static_cast<long long>(total)));
  }
  const int64_t completed = total - remaining_tasks;
  return OfferSheet::Single(Offer{prices_[static_cast<size_t>(completed)], 1});
}

Result<StaticTierController> StaticTierController::Create(
    std::vector<Tier> tiers) {
  if (tiers.empty()) {
    return Status::InvalidArgument("StaticTierController needs >= 1 tier");
  }
  for (const Tier& t : tiers) {
    if (t.count <= 0 || !(t.price_cents >= 0.0) ||
        !std::isfinite(t.price_cents)) {
      return Status::InvalidArgument("tier has invalid price or count");
    }
  }
  std::sort(tiers.begin(), tiers.end(), [](const Tier& a, const Tier& b) {
    return a.price_cents > b.price_cents;
  });
  StaticTierController ctl(std::move(tiers));
  for (const Tier& t : ctl.tiers_) ctl.total_ += t.count;
  return ctl;
}

Result<OfferSheet> StaticTierController::Decide(
    const DecisionRequest& request) {
  CP_ASSIGN_OR_RETURN(int64_t remaining_tasks, SingleTypeRemaining(request));
  if (remaining_tasks <= 0 || remaining_tasks > total_) {
    return Status::OutOfRange(
        StringF("remaining_tasks %lld outside (0, %lld]",
                static_cast<long long>(remaining_tasks),
                static_cast<long long>(total_)));
  }
  // The first (highest-priced) tasks are taken first: with `taken` tasks
  // gone, the active tier is the one containing task index `taken`.
  int64_t taken = total_ - remaining_tasks;
  for (const Tier& t : tiers_) {
    if (taken < t.count) {
      return OfferSheet::Single(Offer{t.price_cents, 1});
    }
    taken -= t.count;
  }
  return Status::Internal("tier walk exhausted (bug)");
}

}  // namespace crowdprice::market
