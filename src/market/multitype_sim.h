// Multi-type campaign simulation (paper §6, "Multiple Task Types").
//
// Several task batches from one requester post concurrently and compete
// for the same arriving workers. The generative model mirrors the
// single-type simulator: workers arrive by an NHPP with rate lambda(t);
// each arrival sees the OfferSheet in force (one offer per type) and picks
// type i with the sheet-level acceptance probability p_i (or walks away
// with probability 1 - sum p_i). By Poisson splitting the per-interval
// completion counts per type are independent Poissons with means
// lambda_t * p_i -- exactly the transition model SolveMultiType plans
// against, so simulated per-type completions track the plan's nominal
// prediction (EvaluateMultiTypeNominal).
//
// The controller is consulted at fixed decision epochs with the full
// per-type remaining vector, the same cadence the joint DP assumes.

#ifndef CROWDPRICE_MARKET_MULTITYPE_SIM_H_
#define CROWDPRICE_MARKET_MULTITYPE_SIM_H_

#include <cstdint>
#include <vector>

#include "arrival/rate_function.h"
#include "market/controller.h"
#include "market/types.h"
#include "util/result.h"
#include "util/rng.h"

namespace crowdprice::market {

struct MultiTypeSimConfig {
  /// Batch size per task type; at least one type with >= 1 task.
  std::vector<int64_t> tasks_per_type;
  double horizon_hours = 0.0;
  /// Controller consultation period (t = 0, d, 2d, ...).
  double decision_interval_hours = 1.0;
  /// Minutes of worker time per task; delays completion timestamps.
  double service_minutes_per_task = 0.0;

  Status Validate() const;
};

/// Per-type slice of a multi-type campaign outcome.
struct TypeOutcome {
  int64_t tasks_assigned = 0;
  int64_t tasks_unassigned = 0;
  double cost_cents = 0.0;
};

/// Outcome of one simulated multi-type campaign.
struct MultiTypeSimResult {
  std::vector<TypeOutcome> types;
  double total_cost_cents = 0.0;
  int64_t worker_arrivals = 0;
  bool finished = false;  ///< Every type fully assigned by the horizon.
  /// Time the last task completed; horizon if the batch did not finish.
  double completion_time_hours = 0.0;
};

/// Runs one multi-type campaign. The controller must price exactly
/// config.tasks_per_type.size() types (e.g. a MultiTypeController playing
/// a solved MultiTypePlan). Deterministic given the Rng stream.
Result<MultiTypeSimResult> RunMultiTypeSimulation(
    const MultiTypeSimConfig& config,
    const arrival::PiecewiseConstantRate& rate,
    const SheetAcceptance& acceptance, PricingController& controller,
    Rng& rng);

}  // namespace crowdprice::market

#endif  // CROWDPRICE_MARKET_MULTITYPE_SIM_H_
