#include "market/session.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "stats/distributions.h"
#include "stats/poisson.h"
#include "util/macros.h"
#include "util/stringf.h"

namespace crowdprice::market {

namespace {

Status ValidateOffer(const Offer& offer) {
  if (offer.group_size < 1) {
    return Status::InvalidArgument(
        StringF("controller returned group_size %d (< 1)", offer.group_size));
  }
  if (!(offer.per_task_reward_cents >= 0.0) ||
      !std::isfinite(offer.per_task_reward_cents)) {
    return Status::InvalidArgument(
        StringF("controller returned invalid reward %g",
                offer.per_task_reward_cents));
  }
  return Status::OK();
}

// One controller consultation on the new decision surface: a single-type
// DecisionRequest answered by a sheet whose lone offer is unwrapped and
// validated. The session is a single-type campaign, so a wider sheet is a
// controller bug.
Result<Offer> DecideOffer(PricingController& controller, double when_hours,
                          int64_t remaining) {
  CP_ASSIGN_OR_RETURN(
      OfferSheet sheet,
      controller.Decide(DecisionRequest::Single(when_hours, remaining)));
  if (sheet.num_types() != 1) {
    return Status::InvalidArgument(
        StringF("single-type campaign got a %d-offer sheet",
                sheet.num_types()));
  }
  CP_RETURN_IF_ERROR(ValidateOffer(sheet.offers[0]));
  return sheet.offers[0];
}

}  // namespace

CampaignSession::CampaignSession(const SimulatorConfig& config,
                                 const arrival::PiecewiseConstantRate& rate,
                                 const choice::AcceptanceFunction& acceptance,
                                 PricingController& controller, Rng rng)
    : config_(config),
      rate_(&rate),
      acceptance_(&acceptance),
      controller_(&controller),
      rng_(rng),
      remaining_(config.total_tasks) {}

Result<CampaignSession> CampaignSession::Create(
    const SimulatorConfig& config, const arrival::PiecewiseConstantRate& rate,
    const choice::AcceptanceFunction& acceptance, PricingController& controller,
    Rng rng) {
  CP_RETURN_IF_ERROR(config.Validate());
  if (controller.num_types() != 1) {
    return Status::InvalidArgument(
        StringF("CampaignSession plays single-type campaigns; the "
                "controller prices %d types (use RunMultiTypeSimulation)",
                controller.num_types()));
  }
  return CampaignSession(config, rate, acceptance, controller, rng);
}

Status CampaignSession::AdvanceUntil(double until_hours) {
  // Stream NHPP arrivals one rate bucket at a time (workloads with generous
  // horizons stop as soon as the batch is assigned, without materializing
  // the remaining arrivals). A bucket is played only once `until_hours`
  // covers it entirely, so slicing never changes the draw sequence.
  const double bucket = rate_->bucket_width_hours();
  while (!done()) {
    const double next_edge =
        (std::floor(clock_hours_ / bucket + 1e-12) + 1.0) * bucket;
    const double seg_end = std::min(next_edge, config_.horizon_hours);
    if (seg_end > until_hours) break;
    if (seg_end <= clock_hours_) {
      return Status::NumericError("arrival bucket walk made no progress");
    }
    CP_RETURN_IF_ERROR(ProcessBucket(clock_hours_, seg_end));
    clock_hours_ = seg_end;
  }
  return Status::OK();
}

Status CampaignSession::ProcessBucket(double seg_start, double seg_end) {
  const double mean = rate_->At(seg_start) * (seg_end - seg_start);
  const int count = stats::SamplePoisson(rng_, mean);
  arrivals_.clear();
  arrivals_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    arrivals_.push_back(seg_start + rng_.NextDouble() * (seg_end - seg_start));
  }
  std::sort(arrivals_.begin(), arrivals_.end());

  for (double t : arrivals_) {
    if (remaining_ <= 0) break;
    ++result_.worker_arrivals;
    // Refresh the offer at every decision epoch boundary crossed so far.
    while (next_epoch_ <= t) {
      ++decides_;
      CP_ASSIGN_OR_RETURN(offer_,
                          DecideOffer(*controller_, next_epoch_, remaining_));
      offer_valid_ = true;
      next_epoch_ += config_.decision_interval_hours;
    }
    if (config_.decide_on_every_assignment || !offer_valid_) {
      ++decides_;
      CP_ASSIGN_OR_RETURN(offer_, DecideOffer(*controller_, t, remaining_));
      offer_valid_ = true;
    }

    const double p = acceptance_->ProbabilityAt(offer_.per_task_reward_cents);
    if (!(p >= 0.0 && p <= 1.0)) {
      return Status::NumericError(
          StringF("acceptance p(%g) = %g outside [0, 1]",
                  offer_.per_task_reward_cents, p));
    }
    if (!rng_.Bernoulli(p)) continue;

    // The worker takes HITs until they quit (retention) or tasks run out.
    WorkerRecord worker;
    worker.first_accept_hours = t;
    worker.true_accuracy =
        config_.accuracy.enabled
            ? stats::SampleBeta(rng_, config_.accuracy.beta_alpha,
                                config_.accuracy.beta_beta)
            : 0.0;
    double now = t;
    Offer active = offer_;
    while (remaining_ > 0) {
      if (config_.decide_on_every_assignment) {
        ++decides_;
        CP_ASSIGN_OR_RETURN(active, DecideOffer(*controller_, now, remaining_));
      }
      const int take =
          static_cast<int>(std::min<int64_t>(active.group_size, remaining_));
      remaining_ -= take;
      result_.tasks_assigned += take;
      const double done_at =
          now + config_.service_minutes_per_task * take / 60.0;
      const double paid = active.per_task_reward_cents * take;
      result_.total_cost_cents += paid;
      CompletionEvent ev;
      ev.time_hours = done_at;
      ev.tasks = take;
      ev.cost_cents = paid;
      ev.group_size = active.group_size;
      result_.events.push_back(ev);
      last_completion_ = std::max(last_completion_, done_at);
      worker.hits += 1;
      worker.tasks += take;
      if (config_.accuracy.enabled) {
        worker.correct +=
            stats::SampleBinomial(rng_, take, worker.true_accuracy);
      }
      now = done_at;
      // Quit the session at the horizon or by the retention coin flip.
      if (now >= config_.horizon_hours) break;
      if (!rng_.Bernoulli(
              config_.retention.ProbabilityAt(active.per_task_reward_cents))) {
        break;
      }
    }
    result_.workers.push_back(worker);
  }
  return Status::OK();
}

Result<SimulationResult> CampaignSession::TakeResult() && {
  if (!done()) {
    return Status::FailedPrecondition(
        "TakeResult before the campaign reached its horizon or finished");
  }
  SimulationResult result = std::move(result_);
  for (const auto& ev : result.events) {
    if (ev.time_hours <= config_.horizon_hours) {
      result.tasks_completed_by_horizon += ev.tasks;
    }
  }
  result.tasks_unassigned = config_.total_tasks - result.tasks_assigned;
  result.finished = result.tasks_assigned == config_.total_tasks;
  result.completion_time_hours =
      result.finished ? last_completion_ : config_.horizon_hours;
  return result;
}

}  // namespace crowdprice::market
