#include "market/session.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "stats/distributions.h"
#include "stats/poisson.h"
#include "util/macros.h"
#include "util/stringf.h"

namespace crowdprice::market {

namespace {

Status ValidateOffer(const Offer& offer) {
  if (offer.group_size < 1) {
    return Status::InvalidArgument(
        StringF("controller returned group_size %d (< 1)", offer.group_size));
  }
  if (!(offer.per_task_reward_cents >= 0.0) ||
      !std::isfinite(offer.per_task_reward_cents)) {
    return Status::InvalidArgument(
        StringF("controller returned invalid reward %g",
                offer.per_task_reward_cents));
  }
  return Status::OK();
}

// One controller consultation on the decision surface: a single-type
// DecisionRequest (marketplace wall clock + campaign-local clock) answered
// by a sheet whose lone offer is unwrapped and validated. The session is a
// single-type campaign, so a wider sheet is a controller bug.
Result<Offer> DecideOffer(PricingController& controller, double when_hours,
                          double origin_hours, int64_t remaining) {
  DecisionRequest request;
  request.now_hours = when_hours;
  request.campaign_hours = when_hours - origin_hours;
  request.remaining.push_back(remaining);
  CP_ASSIGN_OR_RETURN(OfferSheet sheet, controller.Decide(request));
  if (sheet.num_types() != 1) {
    return Status::InvalidArgument(
        StringF("single-type campaign got a %d-offer sheet",
                sheet.num_types()));
  }
  CP_RETURN_IF_ERROR(ValidateOffer(sheet.offers[0]));
  return sheet.offers[0];
}

Status ValidateStart(double start_hours, const char* what) {
  if (!(start_hours >= 0.0) || !std::isfinite(start_hours)) {
    return Status::InvalidArgument(
        StringF("%s must be finite and >= 0; got %g", what, start_hours));
  }
  return Status::OK();
}

}  // namespace

CampaignSession::CampaignSession(const SimulatorConfig& config,
                                 const arrival::PiecewiseConstantRate& rate,
                                 const choice::AcceptanceFunction& acceptance,
                                 PricingController& controller, Rng rng,
                                 double origin_hours, double clock_hours)
    : config_(config),
      rate_(&rate),
      acceptance_(&acceptance),
      controller_(&controller),
      rng_(rng),
      remaining_(config.total_tasks),
      origin_hours_(origin_hours),
      end_hours_(origin_hours + config.horizon_hours),
      clock_hours_(clock_hours),
      next_epoch_(origin_hours) {}

Result<CampaignSession> CampaignSession::Create(
    const SimulatorConfig& config, const arrival::PiecewiseConstantRate& rate,
    const choice::AcceptanceFunction& acceptance, PricingController& controller,
    Rng rng) {
  return CreateAt(config, rate, acceptance, controller, rng, 0.0);
}

Result<CampaignSession> CampaignSession::CreateAt(
    const SimulatorConfig& config, const arrival::PiecewiseConstantRate& rate,
    const choice::AcceptanceFunction& acceptance, PricingController& controller,
    Rng rng, double start_hours) {
  CP_RETURN_IF_ERROR(config.Validate());
  CP_RETURN_IF_ERROR(ValidateStart(start_hours, "start_hours"));
  if (controller.num_types() != 1) {
    return Status::InvalidArgument(
        StringF("CampaignSession plays single-type campaigns; the "
                "controller prices %d types (use RunMultiTypeSimulation)",
                controller.num_types()));
  }
  return CampaignSession(config, rate, acceptance, controller, rng,
                         start_hours, start_hours);
}

Result<CampaignSession> CampaignSession::Resume(
    const SimulatorConfig& config, const arrival::PiecewiseConstantRate& rate,
    const choice::AcceptanceFunction& acceptance, PricingController& controller,
    Rng rng, double resume_hours) {
  CP_RETURN_IF_ERROR(config.Validate());
  CP_RETURN_IF_ERROR(ValidateStart(resume_hours, "resume_hours"));
  if (resume_hours > config.horizon_hours) {
    return Status::InvalidArgument(
        StringF("resume_hours %g is past the horizon %g", resume_hours,
                config.horizon_hours));
  }
  if (controller.num_types() != 1) {
    return Status::InvalidArgument(
        StringF("CampaignSession plays single-type campaigns; the "
                "controller prices %d types (use RunMultiTypeSimulation)",
                controller.num_types()));
  }
  CampaignSession session(config, rate, acceptance, controller, rng,
                          /*origin_hours=*/0.0, resume_hours);
  // Pick up on the original 0, d, 2d, ... epoch grid at the last epoch at
  // or before the resume point (the one whose offer is in force there):
  // the first arrival consults once, instead of replaying every epoch
  // since t = 0 against the restarted controller.
  session.next_epoch_ =
      std::floor(resume_hours / config.decision_interval_hours) *
      config.decision_interval_hours;
  return session;
}

Status CampaignSession::AdvanceUntil(double until_hours) {
  // Stream NHPP arrivals one rate bucket at a time (workloads with generous
  // horizons stop as soon as the batch is assigned, without materializing
  // the remaining arrivals). A bucket is played only once `until_hours`
  // covers it entirely, so slicing never changes the draw sequence.
  const double bucket = rate_->bucket_width_hours();
  while (!done()) {
    const double next_edge =
        (std::floor(clock_hours_ / bucket + 1e-12) + 1.0) * bucket;
    const double seg_end = std::min(next_edge, end_hours_);
    if (seg_end > until_hours) break;
    if (seg_end <= clock_hours_) {
      return Status::NumericError("arrival bucket walk made no progress");
    }
    CP_RETURN_IF_ERROR(ProcessBucket(clock_hours_, seg_end));
    clock_hours_ = seg_end;
  }
  return Status::OK();
}

Status CampaignSession::Curtail(double at_hours) {
  if (!(at_hours >= clock_hours_)) {
    return Status::InvalidArgument(
        StringF("Curtail(%g) is before the session clock %g", at_hours,
                clock_hours_));
  }
  end_hours_ = std::min(end_hours_, at_hours);
  return Status::OK();
}

Status CampaignSession::ProcessBucket(double seg_start, double seg_end) {
  const double mean = rate_->At(seg_start) * (seg_end - seg_start);
  const int count = stats::SamplePoisson(rng_, mean);
  arrivals_.clear();
  arrivals_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    arrivals_.push_back(seg_start + rng_.NextDouble() * (seg_end - seg_start));
  }
  std::sort(arrivals_.begin(), arrivals_.end());

  for (double t : arrivals_) {
    if (remaining_ <= 0) break;
    ++result_.worker_arrivals;
    // Refresh the offer at every decision epoch boundary crossed so far.
    while (next_epoch_ <= t) {
      ++decides_;
      CP_ASSIGN_OR_RETURN(
          offer_,
          DecideOffer(*controller_, next_epoch_, origin_hours_, remaining_));
      offer_valid_ = true;
      next_epoch_ += config_.decision_interval_hours;
    }
    if (config_.decide_on_every_assignment || !offer_valid_) {
      ++decides_;
      CP_ASSIGN_OR_RETURN(
          offer_, DecideOffer(*controller_, t, origin_hours_, remaining_));
      offer_valid_ = true;
    }

    const double p = acceptance_->ProbabilityAt(offer_.per_task_reward_cents);
    if (!(p >= 0.0 && p <= 1.0)) {
      return Status::NumericError(
          StringF("acceptance p(%g) = %g outside [0, 1]",
                  offer_.per_task_reward_cents, p));
    }
    if (!rng_.Bernoulli(p)) continue;

    // The worker takes HITs until they quit (retention) or tasks run out.
    WorkerRecord worker;
    worker.first_accept_hours = t;
    worker.true_accuracy =
        config_.accuracy.enabled
            ? stats::SampleBeta(rng_, config_.accuracy.beta_alpha,
                                config_.accuracy.beta_beta)
            : 0.0;
    double now = t;
    Offer active = offer_;
    while (remaining_ > 0) {
      if (config_.decide_on_every_assignment) {
        ++decides_;
        CP_ASSIGN_OR_RETURN(
            active, DecideOffer(*controller_, now, origin_hours_, remaining_));
      }
      const int take =
          static_cast<int>(std::min<int64_t>(active.group_size, remaining_));
      remaining_ -= take;
      result_.tasks_assigned += take;
      const double done_at =
          now + config_.service_minutes_per_task * take / 60.0;
      const double paid = active.per_task_reward_cents * take;
      result_.total_cost_cents += paid;
      CompletionEvent ev;
      ev.time_hours = done_at;
      ev.tasks = take;
      ev.cost_cents = paid;
      ev.group_size = active.group_size;
      result_.events.push_back(ev);
      last_completion_ = std::max(last_completion_, done_at);
      worker.hits += 1;
      worker.tasks += take;
      if (config_.accuracy.enabled) {
        worker.correct +=
            stats::SampleBinomial(rng_, take, worker.true_accuracy);
      }
      now = done_at;
      // Quit the session at the horizon or by the retention coin flip.
      if (now >= end_hours_) break;
      if (!rng_.Bernoulli(
              config_.retention.ProbabilityAt(active.per_task_reward_cents))) {
        break;
      }
    }
    result_.workers.push_back(worker);
  }
  return Status::OK();
}

Result<SimulationResult> CampaignSession::TakeResult() && {
  if (!done()) {
    return Status::FailedPrecondition(
        "TakeResult before the campaign reached its horizon or finished");
  }
  SimulationResult result = std::move(result_);
  for (const auto& ev : result.events) {
    if (ev.time_hours <= end_hours_) {
      result.tasks_completed_by_horizon += ev.tasks;
    }
  }
  result.tasks_unassigned = config_.total_tasks - result.tasks_assigned;
  result.finished = result.tasks_assigned == config_.total_tasks;
  result.completion_time_hours =
      result.finished ? last_completion_ : end_hours_;
  return result;
}

}  // namespace crowdprice::market
