// CampaignSession: one simulated campaign as a resumable object.
//
// RunSimulation (market/simulator.h) plays a campaign from t = 0 to its
// horizon in a single call. The fleet simulator needs to interleave
// thousands of campaigns on one global clock, so the single-campaign loop
// lives here as a session that can be advanced in time slices:
//
//   CP_ASSIGN_OR_RETURN(CampaignSession session,
//                       CampaignSession::Create(config, rate, acceptance,
//                                               controller, rng));
//   while (!session.done()) {
//     CP_RETURN_IF_ERROR(session.AdvanceUntil(next_slice_hours));
//     ...
//   }
//   CP_ASSIGN_OR_RETURN(SimulationResult result,
//                       std::move(session).TakeResult());
//
// Determinism contract: a session advances through *whole* arrival-rate
// buckets (a bucket is processed only once the slice covers its full
// [start, end) span, with the campaign horizon capping the final bucket).
// All random draws therefore happen in exactly the same order regardless
// of how the advancement is sliced, so any monotone slice schedule whose
// final slice reaches the horizon yields results bit-identical to one
// AdvanceUntil(horizon) call -- which is what RunSimulation does. The
// fleet simulator's serial-equivalence property rests on this.

#ifndef CROWDPRICE_MARKET_SESSION_H_
#define CROWDPRICE_MARKET_SESSION_H_

#include <cstdint>
#include <vector>

#include "arrival/rate_function.h"
#include "choice/acceptance.h"
#include "market/controller.h"
#include "market/simulator.h"
#include "market/types.h"
#include "util/result.h"
#include "util/rng.h"

namespace crowdprice::market {

class CampaignSession {
 public:
  /// Validates `config` and captures the campaign's inputs. `rate`,
  /// `acceptance` and `controller` are borrowed and must outlive the
  /// session; the Rng is owned (copy it in, read it back via rng()).
  static Result<CampaignSession> Create(
      const SimulatorConfig& config,
      const arrival::PiecewiseConstantRate& rate,
      const choice::AcceptanceFunction& acceptance,
      PricingController& controller, Rng rng);

  CampaignSession(CampaignSession&&) = default;
  CampaignSession& operator=(CampaignSession&&) = default;

  /// Advances the campaign through every arrival bucket that ends at or
  /// before `until_hours` (the horizon caps the last bucket, so any
  /// `until_hours` >= the horizon plays the campaign to its end). Calls
  /// with non-increasing `until_hours` are no-ops.
  Status AdvanceUntil(double until_hours);

  /// True once the batch is fully assigned or the clock reached the
  /// horizon; AdvanceUntil becomes a no-op and TakeResult is available.
  bool done() const {
    return remaining_ <= 0 || !(clock_hours_ < config_.horizon_hours);
  }

  const SimulatorConfig& config() const { return config_; }
  int64_t remaining_tasks() const { return remaining_; }
  /// Controller consultations so far (decision epochs + per-assignment).
  uint64_t decides() const { return decides_; }
  /// The owned generator; RunSimulation copies it back to its caller.
  const Rng& rng() const { return rng_; }

  /// Finalizes and returns the campaign outcome. Requires done().
  Result<SimulationResult> TakeResult() &&;

 private:
  CampaignSession(const SimulatorConfig& config,
                  const arrival::PiecewiseConstantRate& rate,
                  const choice::AcceptanceFunction& acceptance,
                  PricingController& controller, Rng rng);

  /// Plays every arrival in [seg_start, seg_end): the body of the
  /// RunSimulation bucket loop, verbatim.
  Status ProcessBucket(double seg_start, double seg_end);

  SimulatorConfig config_;
  const arrival::PiecewiseConstantRate* rate_;
  const choice::AcceptanceFunction* acceptance_;
  PricingController* controller_;
  Rng rng_;

  // Campaign state carried across AdvanceUntil calls.
  SimulationResult result_;
  int64_t remaining_ = 0;
  double clock_hours_ = 0.0;  ///< Start of the next unprocessed bucket.
  double next_epoch_ = 0.0;
  /// The in-force offer: the lone entry of the controller's latest
  /// OfferSheet (sessions play single-type campaigns).
  Offer offer_;
  bool offer_valid_ = false;
  double last_completion_ = 0.0;
  uint64_t decides_ = 0;
  std::vector<double> arrivals_;  ///< Per-bucket scratch buffer.
};

}  // namespace crowdprice::market

#endif  // CROWDPRICE_MARKET_SESSION_H_
