// CampaignSession: one simulated campaign as a resumable object.
//
// RunSimulation (market/simulator.h) plays a campaign from its admission
// to its horizon in a single call. The fleet simulator needs to interleave
// thousands of campaigns on one global clock, so the single-campaign loop
// lives here as a session that can be advanced in time slices:
//
//   CP_ASSIGN_OR_RETURN(CampaignSession session,
//                       CampaignSession::Create(config, rate, acceptance,
//                                               controller, rng));
//   while (!session.done()) {
//     CP_RETURN_IF_ERROR(session.AdvanceUntil(next_slice_hours));
//     ...
//   }
//   CP_ASSIGN_OR_RETURN(SimulationResult result,
//                       std::move(session).TakeResult());
//
// Streaming fleets admit campaigns mid-run, so a session can also start at
// a nonzero marketplace wall clock (CreateAt): the campaign's own clock is
// zero at `start_hours`, its horizon ends at start + config.horizon_hours,
// and arrivals are drawn from the shared wall-clock rate function from the
// start point onward. All recorded times (events, workers, completion) are
// wall-clock hours.
//
// Determinism contract: a session advances through *whole* arrival-rate
// buckets (a bucket is processed only once the slice covers its full
// [start, end) span, with the campaign horizon capping the final bucket).
// All random draws therefore happen in exactly the same order regardless
// of how the advancement is sliced, so any monotone slice schedule whose
// final slice reaches the horizon yields results bit-identical to one
// AdvanceUntil(horizon) call -- which is what RunSimulation does, whatever
// the start time. The fleet simulator's serial-equivalence property rests
// on this.

#ifndef CROWDPRICE_MARKET_SESSION_H_
#define CROWDPRICE_MARKET_SESSION_H_

#include <cstdint>
#include <vector>

#include "arrival/rate_function.h"
#include "choice/acceptance.h"
#include "market/controller.h"
#include "market/simulator.h"
#include "market/types.h"
#include "util/result.h"
#include "util/rng.h"

namespace crowdprice::market {

class CampaignSession {
 public:
  /// Validates `config` and captures the campaign's inputs. `rate`,
  /// `acceptance` and `controller` are borrowed and must outlive the
  /// session; the Rng is owned (copy it in, read it back via rng()).
  /// The campaign starts at wall-clock 0.
  static Result<CampaignSession> Create(
      const SimulatorConfig& config,
      const arrival::PiecewiseConstantRate& rate,
      const choice::AcceptanceFunction& acceptance,
      PricingController& controller, Rng rng);

  /// Same, for a campaign admitted at wall-clock `start_hours` >= 0 into
  /// the shared arrival process: the campaign clock is zero at the start
  /// point, decision epochs sit at start + k * decision_interval, and the
  /// horizon ends at start + config.horizon_hours. Controllers see both
  /// clocks (DecisionRequest::now_hours is wall, campaign_hours is local).
  static Result<CampaignSession> CreateAt(
      const SimulatorConfig& config,
      const arrival::PiecewiseConstantRate& rate,
      const choice::AcceptanceFunction& acceptance,
      PricingController& controller, Rng rng, double start_hours);

  /// A session for a campaign that started at wall-clock 0 but whose
  /// simulation picks up at `resume_hours` (a restarted controller host):
  /// no arrivals before the resume point are drawn, decision epochs stay
  /// on the original 0, d, 2d, ... grid, and the horizon still ends at
  /// config.horizon_hours. With a start-time-insensitive controller the
  /// draw sequence is identical to CreateAt(..., resume_hours) -- the
  /// property tests/fleet_simulator_test.cc asserts.
  static Result<CampaignSession> Resume(
      const SimulatorConfig& config,
      const arrival::PiecewiseConstantRate& rate,
      const choice::AcceptanceFunction& acceptance,
      PricingController& controller, Rng rng, double resume_hours);

  CampaignSession(CampaignSession&&) = default;
  CampaignSession& operator=(CampaignSession&&) = default;

  /// Advances the campaign through every arrival bucket that ends at or
  /// before wall-clock `until_hours` (the horizon caps the last bucket, so
  /// any `until_hours` >= end_hours() plays the campaign to its end).
  /// Calls with non-increasing `until_hours` are no-ops.
  Status AdvanceUntil(double until_hours);

  /// Lowers the campaign's effective horizon to wall-clock `at_hours` (a
  /// mid-life retirement): requires clock() <= at_hours <= end_hours().
  /// Once the clock reaches the curtailed end the session is done and the
  /// result reflects the truncated run.
  Status Curtail(double at_hours);

  /// Points the session at a replacement controller (a hot artifact swap
  /// re-pins a live campaign mid-run). The controller is borrowed like the
  /// one passed at construction; decisions from the next consultation on
  /// come from it.
  void RebindController(PricingController& controller) {
    controller_ = &controller;
  }

  /// True once the batch is fully assigned or the clock reached the
  /// (possibly curtailed) horizon; AdvanceUntil becomes a no-op and
  /// TakeResult is available.
  bool done() const { return remaining_ <= 0 || !(clock_hours_ < end_hours_); }

  const SimulatorConfig& config() const { return config_; }
  /// Wall clock at which the campaign's own clock reads zero.
  double start_hours() const { return origin_hours_; }
  /// Wall clock at which the campaign's horizon ends (start + horizon,
  /// unless Curtail lowered it).
  double end_hours() const { return end_hours_; }
  /// Start of the next unprocessed arrival bucket (wall clock).
  double clock_hours() const { return clock_hours_; }
  int64_t remaining_tasks() const { return remaining_; }
  /// Controller consultations so far (decision epochs + per-assignment).
  uint64_t decides() const { return decides_; }
  /// The owned generator; RunSimulation copies it back to its caller.
  const Rng& rng() const { return rng_; }

  /// Finalizes and returns the campaign outcome. Requires done().
  Result<SimulationResult> TakeResult() &&;

 private:
  CampaignSession(const SimulatorConfig& config,
                  const arrival::PiecewiseConstantRate& rate,
                  const choice::AcceptanceFunction& acceptance,
                  PricingController& controller, Rng rng, double origin_hours,
                  double clock_hours);

  /// Plays every arrival in [seg_start, seg_end): the body of the
  /// RunSimulation bucket loop, verbatim.
  Status ProcessBucket(double seg_start, double seg_end);

  SimulatorConfig config_;
  const arrival::PiecewiseConstantRate* rate_;
  const choice::AcceptanceFunction* acceptance_;
  PricingController* controller_;
  Rng rng_;

  // Campaign state carried across AdvanceUntil calls.
  SimulationResult result_;
  int64_t remaining_ = 0;
  double origin_hours_ = 0.0;  ///< Wall clock of the campaign's t = 0.
  double end_hours_ = 0.0;     ///< Wall clock of the (curtailable) horizon.
  double clock_hours_ = 0.0;   ///< Start of the next unprocessed bucket.
  double next_epoch_ = 0.0;
  /// The in-force offer: the lone entry of the controller's latest
  /// OfferSheet (sessions play single-type campaigns).
  Offer offer_;
  bool offer_valid_ = false;
  double last_completion_ = 0.0;
  uint64_t decides_ = 0;
  std::vector<double> arrivals_;  ///< Per-bucket scratch buffer.
};

}  // namespace crowdprice::market

#endif  // CROWDPRICE_MARKET_SESSION_H_
