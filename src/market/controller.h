// Pricing controllers: the decision-making side of a simulated campaign.
//
// The simulator consults a controller at every decision epoch (and, when
// configured, on every worker arrival) for the offer to post. Controllers
// range from the trivial fixed offer (the Faridani baseline posts one price
// up-front) to MDP policy tables (pricing/controller.h) and the descending
// price tiers of the fixed-budget static strategy.

#ifndef CROWDPRICE_MARKET_CONTROLLER_H_
#define CROWDPRICE_MARKET_CONTROLLER_H_

#include <cstdint>
#include <vector>

#include "market/types.h"
#include "util/result.h"

namespace crowdprice::market {

/// Interface consulted by the simulator for the offer currently in force.
class PricingController {
 public:
  virtual ~PricingController() = default;

  /// Returns the offer to post from `now_hours` onward, given the number of
  /// tasks not yet assigned to any worker. `remaining_tasks` is > 0.
  virtual Result<Offer> Decide(double now_hours, int64_t remaining_tasks) = 0;
};

/// Posts one constant offer forever (static/fixed pricing).
class FixedOfferController final : public PricingController {
 public:
  explicit FixedOfferController(Offer offer) : offer_(offer) {}
  Result<Offer> Decide(double now_hours, int64_t remaining_tasks) override;

 private:
  Offer offer_;
};

/// Plays a pre-computed per-interval schedule: offer[i] is in force on
/// [i*interval, (i+1)*interval); the last entry persists beyond the end.
class ScheduleController final : public PricingController {
 public:
  /// Requires a non-empty schedule and interval > 0.
  static Result<ScheduleController> Create(std::vector<Offer> schedule,
                                           double interval_hours);
  Result<Offer> Decide(double now_hours, int64_t remaining_tasks) override;

 private:
  ScheduleController(std::vector<Offer> schedule, double interval_hours)
      : schedule_(std::move(schedule)), interval_hours_(interval_hours) {}
  std::vector<Offer> schedule_;
  double interval_hours_;
};

/// A semi-static pricing strategy (§4.2.3, Definition 2): a price sequence
/// c_1, ..., c_N fixed up-front; all remaining tasks carry price c_{k+1}
/// after k tasks have been picked up. Unlike the static strategy the
/// sequence need not be monotone -- Theorem 5 shows E[worker arrivals] is
/// order-invariant, which the tests verify by simulation. Use with
/// decide_on_every_assignment so repricing happens exactly per pickup.
class SemiStaticController final : public PricingController {
 public:
  /// One price per task, all finite and >= 0; the sequence length fixes N.
  static Result<SemiStaticController> Create(std::vector<double> prices_cents);

  Result<Offer> Decide(double now_hours, int64_t remaining_tasks) override;

 private:
  explicit SemiStaticController(std::vector<double> prices)
      : prices_(std::move(prices)) {}
  std::vector<double> prices_;
};

/// The fixed-budget static strategy (§4.1): every task gets an up-front
/// price; since workers always take the highest-priced task available, the
/// effective offer is the price of the highest non-exhausted tier. Tiers
/// are given as (price, count) and served in descending price order.
class StaticTierController final : public PricingController {
 public:
  struct Tier {
    double price_cents = 0.0;
    int64_t count = 0;
  };

  /// Requires tiers non-empty, counts > 0. Sorts descending by price.
  static Result<StaticTierController> Create(std::vector<Tier> tiers);
  Result<Offer> Decide(double now_hours, int64_t remaining_tasks) override;

 private:
  explicit StaticTierController(std::vector<Tier> tiers)
      : tiers_(std::move(tiers)) {}
  std::vector<Tier> tiers_;
  int64_t total_ = 0;
};

}  // namespace crowdprice::market

#endif  // CROWDPRICE_MARKET_CONTROLLER_H_
