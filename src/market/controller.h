// Pricing controllers: the decision-making side of a simulated campaign.
//
// The simulator consults a controller at every decision epoch (and, when
// configured, on every worker arrival) for the offers to post. A
// consultation is a DecisionRequest (campaign clock, per-type remaining
// counts) answered by an OfferSheet (one offer per task type; single-type
// policies answer 1-offer sheets). Controllers range from the trivial
// fixed offer (the Faridani baseline posts one price up-front) to MDP
// policy tables (pricing/controller.h), the descending price tiers of the
// fixed-budget static strategy, and the §6 joint multi-type policy.

#ifndef CROWDPRICE_MARKET_CONTROLLER_H_
#define CROWDPRICE_MARKET_CONTROLLER_H_

#include <cstdint>
#include <vector>

#include "market/types.h"
#include "util/result.h"

namespace crowdprice::market {

/// Interface consulted by the simulator for the offers currently in force.
class PricingController {
 public:
  virtual ~PricingController() = default;

  /// Task types this controller prices concurrently; the request's
  /// `remaining` vector must have exactly this many entries.
  virtual int num_types() const { return 1; }

  /// Returns the sheet to post from the request's time onward: one offer
  /// per task type, aligned with `request.remaining`. At least one
  /// remaining entry is > 0. (The pre-sheet Decide(now, remaining) shim
  /// completed its one-PR deprecation cycle and is gone; build a
  /// DecisionRequest::Single and read sheet.offers[0].)
  virtual Result<OfferSheet> Decide(const DecisionRequest& request) = 0;

  /// True when Decide is a pure function of immutable state and may be
  /// called concurrently from any number of threads with no external
  /// serialization. Controllers that track anything across calls
  /// (adaptive re-solving, in-flight counts) keep the default false and
  /// the serving layer serializes their decides per campaign.
  virtual bool ThreadSafeDecide() const { return false; }
};

/// Validates that `request` prices exactly one task type and returns its
/// remaining count -- the single-type controllers' shared precondition.
Result<int64_t> SingleTypeRemaining(const DecisionRequest& request);

/// Sheet-level worker choice: the probability an arriving worker picks
/// each of the concurrently-posted task types. The demand-side companion
/// of PricingController (choice::AcceptanceFunction is the 1-type case).
class SheetAcceptance {
 public:
  virtual ~SheetAcceptance() = default;

  /// Per-type pick probabilities for one arriving worker facing `sheet`.
  /// Returns one entry per offer; every entry >= 0 and the sum <= 1 (the
  /// remainder walks away).
  virtual Result<std::vector<double>> ProbabilitiesAt(
      const OfferSheet& sheet) const = 0;
};

/// Posts one constant offer forever (static/fixed pricing).
class FixedOfferController final : public PricingController {
 public:
  explicit FixedOfferController(Offer offer) : offer_(offer) {}
  Result<OfferSheet> Decide(const DecisionRequest& request) override;
  bool ThreadSafeDecide() const override { return true; }

 private:
  Offer offer_;
};

/// Plays a pre-computed per-interval schedule: offer[i] is in force on
/// [i*interval, (i+1)*interval); the last entry persists beyond the end.
class ScheduleController final : public PricingController {
 public:
  /// Requires a non-empty schedule and interval > 0.
  static Result<ScheduleController> Create(std::vector<Offer> schedule,
                                           double interval_hours);
  Result<OfferSheet> Decide(const DecisionRequest& request) override;
  bool ThreadSafeDecide() const override { return true; }

 private:
  ScheduleController(std::vector<Offer> schedule, double interval_hours)
      : schedule_(std::move(schedule)), interval_hours_(interval_hours) {}
  std::vector<Offer> schedule_;
  double interval_hours_;
};

/// A semi-static pricing strategy (§4.2.3, Definition 2): a price sequence
/// c_1, ..., c_N fixed up-front; all remaining tasks carry price c_{k+1}
/// after k tasks have been picked up. Unlike the static strategy the
/// sequence need not be monotone -- Theorem 5 shows E[worker arrivals] is
/// order-invariant, which the tests verify by simulation. Use with
/// decide_on_every_assignment so repricing happens exactly per pickup.
class SemiStaticController final : public PricingController {
 public:
  /// One price per task, all finite and >= 0; the sequence length fixes N.
  static Result<SemiStaticController> Create(std::vector<double> prices_cents);

  Result<OfferSheet> Decide(const DecisionRequest& request) override;
  bool ThreadSafeDecide() const override { return true; }

 private:
  explicit SemiStaticController(std::vector<double> prices)
      : prices_(std::move(prices)) {}
  std::vector<double> prices_;
};

/// The fixed-budget static strategy (§4.1): every task gets an up-front
/// price; since workers always take the highest-priced task available, the
/// effective offer is the price of the highest non-exhausted tier. Tiers
/// are given as (price, count) and served in descending price order.
class StaticTierController final : public PricingController {
 public:
  struct Tier {
    double price_cents = 0.0;
    int64_t count = 0;
  };

  /// Requires tiers non-empty, counts > 0. Sorts descending by price.
  static Result<StaticTierController> Create(std::vector<Tier> tiers);
  Result<OfferSheet> Decide(const DecisionRequest& request) override;
  bool ThreadSafeDecide() const override { return true; }

 private:
  explicit StaticTierController(std::vector<Tier> tiers)
      : tiers_(std::move(tiers)) {}
  std::vector<Tier> tiers_;
  int64_t total_ = 0;
};

}  // namespace crowdprice::market

#endif  // CROWDPRICE_MARKET_CONTROLLER_H_
