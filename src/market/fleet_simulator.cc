#include "market/fleet_simulator.h"

#include <algorithm>
#include <utility>

#include "market/session.h"
#include "util/macros.h"
#include "util/stringf.h"

namespace crowdprice::market {

FleetSimulator::FleetSimulator(serving::CampaignShardMap map)
    : map_(std::move(map)) {}

Result<FleetSimulator> FleetSimulator::Create(int num_shards) {
  CP_ASSIGN_OR_RETURN(serving::CampaignShardMap map,
                      serving::CampaignShardMap::Create(num_shards));
  return FleetSimulator(std::move(map));
}

Result<serving::CampaignId> FleetSimulator::Admit(
    engine::PolicyArtifact artifact, const SimulatorConfig& config,
    const choice::AcceptanceFunction& acceptance, Rng rng) {
  return AdmitShared(
      std::make_shared<const engine::PolicyArtifact>(std::move(artifact)),
      config, acceptance, rng);
}

Result<serving::CampaignId> FleetSimulator::AdmitShared(
    std::shared_ptr<const engine::PolicyArtifact> artifact,
    const SimulatorConfig& config, const choice::AcceptanceFunction& acceptance,
    Rng rng) {
  CP_RETURN_IF_ERROR(config.Validate());
  serving::CampaignLimits limits;
  limits.total_tasks = config.total_tasks;
  limits.deadline_hours = config.horizon_hours;
  CP_ASSIGN_OR_RETURN(serving::CampaignId id,
                      map_.AdmitShared(std::move(artifact), limits));
  pending_.push_back(Pending{id, config, &acceptance, rng});
  return id;
}

Result<serving::CampaignId> FleetSimulator::AdmitController(
    std::unique_ptr<PricingController> controller,
    const SimulatorConfig& config, const choice::AcceptanceFunction& acceptance,
    Rng rng) {
  CP_RETURN_IF_ERROR(config.Validate());
  serving::CampaignLimits limits;
  limits.total_tasks = config.total_tasks;
  limits.deadline_hours = config.horizon_hours;
  CP_ASSIGN_OR_RETURN(serving::CampaignId id,
                      map_.AdmitController(std::move(controller), limits));
  pending_.push_back(Pending{id, config, &acceptance, rng});
  return id;
}

Result<std::vector<FleetOutcome>> FleetSimulator::Run(
    const arrival::PiecewiseConstantRate& rate) {
  if (pending_.empty()) {
    return Status::FailedPrecondition("no campaigns admitted");
  }
  const int num_shards = map_.num_shards();

  // Each live campaign rides on its shard's list; during a slice exactly
  // one pool thread advances a given shard's campaigns, so sessions (and
  // the controllers they borrow from the map) are never shared across
  // threads.
  struct Running {
    size_t admit_index = 0;
    serving::CampaignId id = 0;
    CampaignSession session;
  };
  std::vector<std::vector<Running>> by_shard(static_cast<size_t>(num_shards));
  double max_horizon = 0.0;
  for (size_t i = 0; i < pending_.size(); ++i) {
    Pending& pending = pending_[i];
    CP_ASSIGN_OR_RETURN(market::PricingController * controller,
                        map_.BorrowController(pending.id));
    CP_ASSIGN_OR_RETURN(
        CampaignSession session,
        CampaignSession::Create(pending.config, rate, *pending.acceptance,
                                *controller, pending.rng));
    by_shard[static_cast<size_t>(map_.ShardOf(pending.id))].push_back(
        Running{i, pending.id, std::move(session)});
    max_horizon = std::max(max_horizon, pending.config.horizon_hours);
  }

  std::vector<FleetOutcome> outcomes(pending_.size());
  std::vector<Status> shard_status(static_cast<size_t>(num_shards),
                                   Status::OK());

  // The shared event clock: one arrival bucket per slice. Campaigns whose
  // horizon falls inside a slice stop exactly at their horizon (the
  // session caps its final bucket), then tick out of the serving map --
  // completed when the batch drained, deadline-expired otherwise.
  const double bucket = rate.bucket_width_hours();
  for (double t = bucket;; t += bucket) {
    const double until = std::min(t, max_horizon);
    map_.ParallelOverShards([&](int shard_index) {
      auto& running = by_shard[static_cast<size_t>(shard_index)];
      Status& status = shard_status[static_cast<size_t>(shard_index)];
      for (auto it = running.begin(); it != running.end();) {
        if (!status.ok()) return;
        const Status advanced = it->session.AdvanceUntil(until);
        if (!advanced.ok()) {
          status = advanced;
          return;
        }
        if (!it->session.done()) {
          ++it;
          continue;
        }
        map_.AddDecides(shard_index, it->session.decides());
        FleetOutcome& outcome = outcomes[it->admit_index];
        outcome.campaign_id = it->id;
        Result<serving::CampaignState> state =
            map_.Tick(it->id, it->session.config().horizon_hours,
                      it->session.remaining_tasks());
        if (!state.ok()) {
          status = state.status();
          return;
        }
        outcome.final_state = *state;
        Result<SimulationResult> result = std::move(it->session).TakeResult();
        if (!result.ok()) {
          status = result.status();
          return;
        }
        outcome.result = std::move(*result);
        it = running.erase(it);
      }
    });
    for (const Status& status : shard_status) {
      CP_RETURN_IF_ERROR(status);
    }
    size_t live = 0;
    for (const auto& running : by_shard) live += running.size();
    if (live == 0) break;
    if (until >= max_horizon) {
      return Status::Internal(
          "fleet clock passed every horizon with live sessions");
    }
  }

  pending_.clear();
  return outcomes;
}

}  // namespace crowdprice::market
