#include "market/fleet_simulator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <utility>

#include "market/session.h"
#include "util/macros.h"
#include "util/stringf.h"

namespace crowdprice::market {

namespace {

/// Wall-clock hours -> event-loop bucket-edge index, rounding up (an
/// admission or control event lands on the first edge at or after its
/// nominal time; the epsilon keeps times already on an edge there).
int64_t EdgeIndexCeil(double hours, double bucket) {
  const auto edge = static_cast<int64_t>(std::ceil(hours / bucket - 1e-9));
  return edge < 0 ? 0 : edge;
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// One campaign the event loop must launch: either pre-admitted through
/// the Admit* methods (id known, joins at edge 0) or scheduled (admitted
/// into the live map on the admission lane at its edge).
struct Launch {
  size_t index = 0;  ///< Outcome slot / schedule order.
  int64_t admit_edge = 0;
  bool preadmitted = false;
  serving::CampaignId id = 0;  ///< Valid when preadmitted.
  SimulatorConfig config;
  std::shared_ptr<const engine::PolicyArtifact> artifact;
  std::unique_ptr<PricingController> controller;
  const choice::AcceptanceFunction* acceptance = nullptr;
  Rng rng{0};
};

/// One mid-life event, flattened out of the schedule and sorted by edge.
struct Control {
  int64_t edge = 0;
  size_t order = 0;  ///< Stable tiebreak: schedule emission order.
  size_t launch = 0;
  bool retire = false;
  std::shared_ptr<const engine::PolicyArtifact> artifact;
};

/// The shared event loop behind Run and RunStreaming. Global time advances
/// one arrival bucket per slice; every shard advances its campaigns
/// concurrently on the serving pool while the admission lane admits the
/// slice's due campaigns into the live map (per-shard locking only -- no
/// global barrier between serving and admission). Mid-life control events
/// apply at the bucket-edge barrier, where no shard task is in flight. A
/// campaign that completes or expires on the same edge as one of its
/// control events wins the tie: the event is skipped.
Result<std::vector<FleetOutcome>> DriveFleet(
    serving::CampaignShardMap& map, const arrival::PiecewiseConstantRate& rate,
    std::vector<Launch> launches, std::vector<Control> controls,
    StreamingStats& stats) {
  stats = StreamingStats{};
  const int num_shards = map.num_shards();
  const double bucket = rate.bucket_width_hours();
  const size_t n = launches.size();

  // Each live campaign rides on its shard's list; during a slice exactly
  // one pool thread advances a given shard's campaigns, so sessions (and
  // the controllers they borrow from the map) are never shared across
  // threads. The borrow pins the campaign's snapshot, keeping the
  // controller (and the artifact tables it points into) alive even if a
  // swap or retirement races ahead of the session's next barrier.
  struct Running {
    size_t index = 0;
    serving::CampaignId id = 0;
    serving::BorrowedController controller;
    CampaignSession session;
  };
  std::vector<std::vector<Running>> by_shard(static_cast<size_t>(num_shards));
  std::vector<FleetOutcome> outcomes(n);
  std::vector<char> finished(n, 0);

  std::vector<size_t> launch_order(n);
  std::iota(launch_order.begin(), launch_order.end(), size_t{0});
  std::stable_sort(launch_order.begin(), launch_order.end(),
                   [&](size_t a, size_t b) {
                     return launches[a].admit_edge < launches[b].admit_edge;
                   });
  size_t next_launch = 0;

  std::sort(controls.begin(), controls.end(),
            [](const Control& a, const Control& b) {
              return a.edge != b.edge ? a.edge < b.edge : a.order < b.order;
            });
  size_t next_control = 0;

  // Loop bound: past this edge every campaign has been admitted, played to
  // its horizon and every control event has fired; live sessions beyond it
  // mean the clock walk is broken.
  int64_t last_edge = 1;
  for (const Launch& launch : launches) {
    last_edge = std::max(
        last_edge, launch.admit_edge +
                       static_cast<int64_t>(
                           std::ceil(launch.config.horizon_hours / bucket)) +
                       2);
  }
  for (const Control& control : controls) {
    last_edge = std::max(last_edge, control.edge + 1);
  }

  std::vector<Status> shard_status(static_cast<size_t>(num_shards),
                                   Status::OK());
  Status admit_status = Status::OK();
  std::vector<std::pair<int, Running>> staged;
  double admit_ms_total = 0.0;
  uint64_t admit_timed = 0;

  // The admission lane: admit every launch in launch_order[lo, hi) at the
  // wall-clock edge k. Runs concurrently with the shard passes (the map
  // calls take only the target shard's mutex); `staged` and the outcome
  // slots it writes are untouched by any shard task until the barrier.
  auto admit_range = [&](size_t lo, size_t hi, int64_t k) {
    const double admit_wall = static_cast<double>(k) * bucket;
    for (size_t oi = lo; oi < hi; ++oi) {
      Launch& launch = launches[launch_order[oi]];
      serving::CampaignId id = launch.id;
      if (!launch.preadmitted) {
        serving::CampaignLimits limits;
        limits.total_tasks = launch.config.total_tasks;
        limits.deadline_hours = launch.config.horizon_hours;
        limits.admit_hours = admit_wall;
        const auto start = std::chrono::steady_clock::now();
        Result<serving::ControlOutcome> admitted = map.Apply(
            launch.artifact != nullptr
                ? serving::ControlOp::AdmitShared(launch.artifact, limits)
                : serving::ControlOp::AdmitController(
                      std::move(launch.controller), limits));
        const double ms = MillisSince(start);
        admit_ms_total += ms;
        ++admit_timed;
        stats.admit_max_ms = std::max(stats.admit_max_ms, ms);
        if (!admitted.ok()) {
          admit_status = admitted.status();
          return;
        }
        id = admitted->id;
        ++stats.admitted;
      }
      Result<serving::BorrowedController> controller =
          map.BorrowController(id);
      if (!controller.ok()) {
        admit_status = controller.status();
        return;
      }
      Result<CampaignSession> session =
          CampaignSession::CreateAt(launch.config, rate, *launch.acceptance,
                                    **controller, launch.rng, admit_wall);
      if (!session.ok()) {
        admit_status = session.status();
        return;
      }
      FleetOutcome& outcome = outcomes[launch.index];
      outcome.schedule_index = launch.index;
      outcome.campaign_id = id;
      outcome.admit_hours = admit_wall;
      staged.emplace_back(
          map.ShardOf(id),
          Running{launch.index, id, std::move(*controller),
                  std::move(*session)});
    }
  };

  auto merge_staged = [&] {
    for (auto& [shard_index, running] : staged) {
      by_shard[static_cast<size_t>(shard_index)].push_back(std::move(running));
    }
    staged.clear();
  };

  // One shard's slice: advance every session to `until`; campaigns whose
  // horizon falls inside the slice stop exactly at their horizon (the
  // session caps its final bucket), then tick out of the serving map --
  // completed when the batch drained, deadline-expired otherwise.
  auto advance_shard = [&](int shard_index, double until) {
    auto& running = by_shard[static_cast<size_t>(shard_index)];
    Status& status = shard_status[static_cast<size_t>(shard_index)];
    for (auto it = running.begin(); it != running.end();) {
      if (!status.ok()) return;
      const Status advanced = it->session.AdvanceUntil(until);
      if (!advanced.ok()) {
        status = advanced;
        return;
      }
      if (!it->session.done()) {
        ++it;
        continue;
      }
      map.AddDecides(shard_index, it->session.decides());
      FleetOutcome& outcome = outcomes[it->index];
      Result<serving::ControlOutcome> ticked =
          map.Apply(serving::ControlOp::Tick(it->id, it->session.end_hours(),
                                             it->session.remaining_tasks()));
      if (!ticked.ok()) {
        status = ticked.status();
        return;
      }
      outcome.final_state = ticked->state;
      Result<SimulationResult> result = std::move(it->session).TakeResult();
      if (!result.ok()) {
        status = result.status();
        return;
      }
      outcome.result = std::move(*result);
      finished[it->index] = 1;
      it = running.erase(it);
    }
  };

  // Applies every control event due at edge k. Runs at the barrier (no
  // shard task in flight), so it may touch sessions and retire campaigns
  // directly; events whose campaign already finished are skipped.
  auto apply_controls = [&](int64_t k) -> Status {
    while (next_control < controls.size() && controls[next_control].edge == k) {
      const Control& control = controls[next_control++];
      if (finished[control.launch]) continue;
      const serving::CampaignId id = outcomes[control.launch].campaign_id;
      const int shard_index = map.ShardOf(id);
      auto& running = by_shard[static_cast<size_t>(shard_index)];
      const auto it =
          std::find_if(running.begin(), running.end(), [&](const Running& r) {
            return r.index == control.launch;
          });
      if (it == running.end()) {
        return Status::Internal(StringF(
            "control event at edge %lld targets campaign %llu which is "
            "neither live nor finished",
            static_cast<long long>(k), static_cast<unsigned long long>(id)));
      }
      if (control.retire) {
        CP_RETURN_IF_ERROR(
            map.Apply(serving::ControlOp::Retire(id)).status());
        CP_RETURN_IF_ERROR(
            it->session.Curtail(static_cast<double>(k) * bucket));
        map.AddDecides(shard_index, it->session.decides());
        FleetOutcome& outcome = outcomes[control.launch];
        outcome.final_state = serving::CampaignState::kRetiredExplicit;
        CP_ASSIGN_OR_RETURN(outcome.result,
                            std::move(it->session).TakeResult());
        finished[control.launch] = 1;
        running.erase(it);
        ++stats.retired_by_event;
      } else {
        CP_RETURN_IF_ERROR(
            map.Apply(serving::ControlOp::SwapArtifactShared(id,
                                                             control.artifact))
                .status());
        CP_ASSIGN_OR_RETURN(serving::BorrowedController controller,
                            map.BorrowController(id));
        it->session.RebindController(*controller);
        // Replace the pin after rebinding: the old snapshot stays alive
        // until the session has stopped pointing at its controller.
        it->controller = std::move(controller);
        ++stats.swapped;
      }
    }
    return Status::OK();
  };

  auto finish_stats = [&] {
    stats.admit_mean_ms =
        admit_timed > 0 ? admit_ms_total / static_cast<double>(admit_timed)
                        : 0.0;
  };

  // The loop proper, wrapped so `stats` is finalized on every exit --
  // error paths included.
  auto drive = [&]() -> Result<std::vector<FleetOutcome>> {
    // Edge 0: admissions due before any traffic run inline, then edge-0
    // control events.
    {
      const size_t lo = next_launch;
      while (next_launch < n &&
             launches[launch_order[next_launch]].admit_edge == 0) {
        ++next_launch;
      }
      admit_range(lo, next_launch, 0);
      CP_RETURN_IF_ERROR(admit_status);
      merge_staged();
      CP_RETURN_IF_ERROR(apply_controls(0));
    }

    for (int64_t k = 1;; ++k) {
      const double until = static_cast<double>(k) * bucket;
      const size_t lo = next_launch;
      size_t hi = lo;
      while (hi < n && launches[launch_order[hi]].admit_edge == k) ++hi;
      next_launch = hi;

      // The slice: shards tick their campaigns to `until` while the
      // admission lane admits the campaigns arriving at this edge (they
      // start playing next slice).
      map.ParallelOverShardsWith(
          [&](int shard_index) { advance_shard(shard_index, until); },
          [&] { admit_range(lo, hi, k); });
      ++stats.slices;

      CP_RETURN_IF_ERROR(admit_status);
      for (const Status& status : shard_status) {
        CP_RETURN_IF_ERROR(status);
      }
      merge_staged();
      CP_RETURN_IF_ERROR(apply_controls(k));

      size_t live = 0;
      for (const auto& running : by_shard) live += running.size();
      if (live == 0) {
        // Nothing in flight: control events can only target finished
        // campaigns now, so consume the skippable ones instead of
        // spinning empty slices out to a far-future event edge...
        while (next_control < controls.size() &&
               finished[controls[next_control].launch]) {
          ++next_control;
        }
        if (next_launch == n && next_control == controls.size()) break;
        // ...and jump the clock to the next admission/control edge
        // rather than dispatching empty slices up to it.
        int64_t next_edge = last_edge;
        if (next_launch < n) {
          next_edge = std::min(next_edge,
                               launches[launch_order[next_launch]].admit_edge);
        }
        if (next_control < controls.size()) {
          next_edge = std::min(next_edge, controls[next_control].edge);
        }
        if (next_edge > k + 1) k = next_edge - 1;
      }
      if (k >= last_edge) {
        return Status::Internal(
            "fleet clock passed every horizon with live sessions");
      }
    }
    return std::move(outcomes);
  };

  Result<std::vector<FleetOutcome>> result = drive();
  finish_stats();
  return result;
}

}  // namespace

// --------------------------------------------------------------------------
// ArrivalSchedule
// --------------------------------------------------------------------------

namespace {

// Generous ceiling on schedule times (> 1000 years of marketplace hours):
// rules out edge-index casts overflowing int64 and event loops walking
// billions of bucket edges on a typo'd timestamp.
constexpr double kMaxScheduleHours = 1e7;

Status ValidateScheduleHours(double hours, const char* what) {
  if (!(hours >= 0.0) || !(hours <= kMaxScheduleHours)) {
    return Status::InvalidArgument(
        StringF("%s must be in [0, %g]; got %g", what, kMaxScheduleHours,
                hours));
  }
  return Status::OK();
}

}  // namespace

double RandomBucketEdge(Rng& rng, double window_hours, double bucket_hours) {
  const auto edges = static_cast<int64_t>(window_hours / bucket_hours + 0.5);
  if (edges <= 0) return 0.0;
  return bucket_hours * static_cast<double>(rng.UniformInt(0, edges));
}

Result<size_t> ArrivalSchedule::AdmitShared(
    double admit_hours, std::shared_ptr<const engine::PolicyArtifact> artifact,
    const SimulatorConfig& config, const choice::AcceptanceFunction& acceptance,
    Rng rng) {
  CP_RETURN_IF_ERROR(ValidateScheduleHours(admit_hours, "admit_hours"));
  CP_RETURN_IF_ERROR(config.Validate());
  if (artifact == nullptr) {
    return Status::InvalidArgument("artifact must not be null");
  }
  Entry entry;
  entry.admit_hours = admit_hours;
  entry.config = config;
  entry.artifact = std::move(artifact);
  entry.acceptance = &acceptance;
  entry.rng = rng;
  entries_.push_back(std::move(entry));
  return entries_.size() - 1;
}

Result<size_t> ArrivalSchedule::AdmitController(
    double admit_hours, std::unique_ptr<PricingController> controller,
    const SimulatorConfig& config, const choice::AcceptanceFunction& acceptance,
    Rng rng) {
  CP_RETURN_IF_ERROR(ValidateScheduleHours(admit_hours, "admit_hours"));
  CP_RETURN_IF_ERROR(config.Validate());
  if (controller == nullptr) {
    return Status::InvalidArgument("controller must not be null");
  }
  Entry entry;
  entry.admit_hours = admit_hours;
  entry.config = config;
  entry.controller = std::move(controller);
  entry.acceptance = &acceptance;
  entry.rng = rng;
  entries_.push_back(std::move(entry));
  return entries_.size() - 1;
}

Status ArrivalSchedule::SwapArtifactAt(
    size_t index, double at_hours,
    std::shared_ptr<const engine::PolicyArtifact> artifact) {
  if (index >= entries_.size()) {
    return Status::InvalidArgument(
        StringF("schedule entry %zu does not exist", index));
  }
  if (artifact == nullptr) {
    return Status::InvalidArgument("artifact must not be null");
  }
  CP_RETURN_IF_ERROR(ValidateScheduleHours(at_hours, "event time"));
  if (at_hours < entries_[index].admit_hours) {
    return Status::InvalidArgument(
        StringF("event time %g is before entry %zu's admit time %g", at_hours,
                index, entries_[index].admit_hours));
  }
  ControlEvent event;
  event.retire = false;
  event.at_hours = at_hours;
  event.artifact = std::move(artifact);
  entries_[index].events.push_back(std::move(event));
  return Status::OK();
}

Status ArrivalSchedule::RetireAt(size_t index, double at_hours) {
  if (index >= entries_.size()) {
    return Status::InvalidArgument(
        StringF("schedule entry %zu does not exist", index));
  }
  CP_RETURN_IF_ERROR(ValidateScheduleHours(at_hours, "event time"));
  if (at_hours < entries_[index].admit_hours) {
    return Status::InvalidArgument(
        StringF("event time %g is before entry %zu's admit time %g", at_hours,
                index, entries_[index].admit_hours));
  }
  ControlEvent event;
  event.retire = true;
  event.at_hours = at_hours;
  entries_[index].events.push_back(std::move(event));
  return Status::OK();
}

// --------------------------------------------------------------------------
// FleetSimulator
// --------------------------------------------------------------------------

FleetSimulator::FleetSimulator(serving::CampaignShardMap map)
    : map_(std::move(map)) {}

Result<FleetSimulator> FleetSimulator::Create(int num_shards) {
  CP_ASSIGN_OR_RETURN(serving::CampaignShardMap map,
                      serving::CampaignShardMap::Create(num_shards));
  return FleetSimulator(std::move(map));
}

Result<serving::CampaignId> FleetSimulator::Admit(
    engine::PolicyArtifact artifact, const SimulatorConfig& config,
    const choice::AcceptanceFunction& acceptance, Rng rng) {
  return AdmitShared(
      std::make_shared<const engine::PolicyArtifact>(std::move(artifact)),
      config, acceptance, rng);
}

Result<serving::CampaignId> FleetSimulator::AdmitShared(
    std::shared_ptr<const engine::PolicyArtifact> artifact,
    const SimulatorConfig& config, const choice::AcceptanceFunction& acceptance,
    Rng rng) {
  CP_RETURN_IF_ERROR(config.Validate());
  serving::CampaignLimits limits;
  limits.total_tasks = config.total_tasks;
  limits.deadline_hours = config.horizon_hours;
  CP_ASSIGN_OR_RETURN(
      const serving::ControlOutcome admitted,
      map_.Apply(serving::ControlOp::AdmitShared(std::move(artifact), limits)));
  pending_.push_back(Pending{admitted.id, config, &acceptance, rng});
  return admitted.id;
}

Result<serving::CampaignId> FleetSimulator::AdmitController(
    std::unique_ptr<PricingController> controller,
    const SimulatorConfig& config, const choice::AcceptanceFunction& acceptance,
    Rng rng) {
  CP_RETURN_IF_ERROR(config.Validate());
  serving::CampaignLimits limits;
  limits.total_tasks = config.total_tasks;
  limits.deadline_hours = config.horizon_hours;
  CP_ASSIGN_OR_RETURN(const serving::ControlOutcome admitted,
                      map_.Apply(serving::ControlOp::AdmitController(
                          std::move(controller), limits)));
  pending_.push_back(Pending{admitted.id, config, &acceptance, rng});
  return admitted.id;
}

Result<std::vector<FleetOutcome>> FleetSimulator::Run(
    const arrival::PiecewiseConstantRate& rate) {
  return RunStreaming(rate, ArrivalSchedule());
}

Result<std::vector<FleetOutcome>> FleetSimulator::RunStreaming(
    const arrival::PiecewiseConstantRate& rate, ArrivalSchedule schedule) {
  if (pending_.empty() && schedule.empty()) {
    return Status::FailedPrecondition("no campaigns admitted");
  }
  const double bucket = rate.bucket_width_hours();

  std::vector<Launch> launches;
  launches.reserve(pending_.size() + schedule.entries_.size());
  for (Pending& pending : pending_) {
    Launch launch;
    launch.index = launches.size();
    launch.preadmitted = true;
    launch.id = pending.id;
    launch.config = pending.config;
    launch.acceptance = pending.acceptance;
    launch.rng = pending.rng;
    launches.push_back(std::move(launch));
  }
  std::vector<Control> controls;
  for (auto& entry : schedule.entries_) {
    Launch launch;
    launch.index = launches.size();
    launch.admit_edge = EdgeIndexCeil(entry.admit_hours, bucket);
    launch.config = entry.config;
    launch.artifact = std::move(entry.artifact);
    launch.controller = std::move(entry.controller);
    launch.acceptance = entry.acceptance;
    launch.rng = entry.rng;
    for (auto& event : entry.events) {
      Control control;
      control.edge = std::max(EdgeIndexCeil(event.at_hours, bucket),
                              launch.admit_edge);
      control.order = controls.size();
      control.launch = launch.index;
      control.retire = event.retire;
      control.artifact = std::move(event.artifact);
      controls.push_back(std::move(control));
    }
    launches.push_back(std::move(launch));
  }

  Result<std::vector<FleetOutcome>> outcomes =
      DriveFleet(map_, rate, std::move(launches), std::move(controls),
                 streaming_stats_);
  // The pending set is consumed either way: a failed run has already
  // retired an unknown subset of those campaigns from the shard map, so
  // keeping the entries would only replay ghosts on the next wave.
  pending_.clear();
  return outcomes;
}

}  // namespace crowdprice::market
