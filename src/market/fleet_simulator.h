// FleetSimulator: thousands of concurrent campaigns on one shared clock.
//
// RunSimulation plays one campaign start-to-finish; real marketplaces run
// many batches at once against the same worker arrival process. The fleet
// simulator admits every campaign into a serving::CampaignShardMap (so the
// serving layer's lifecycle -- admit, tick, retire on completion or
// deadline -- is exercised under load) and drives all of them with one
// event loop: global time advances one arrival-rate bucket at a time, and
// at each slice every shard advances its campaigns concurrently on the
// serving pool.
//
// Determinism: each campaign owns its Rng and its CampaignSession, and a
// session only ever plays whole arrival buckets (see market/session.h), so
// slicing the fleet's clock never changes any campaign's draw sequence.
// Per-campaign outcomes are therefore bit-identical to running
// market::RunSimulation serially with the same controller and Rng --
// whatever the shard count. That property is the correctness harness for
// this whole layer (tests/fleet_simulator_test.cc asserts it over 1000+
// campaigns).

#ifndef CROWDPRICE_MARKET_FLEET_SIMULATOR_H_
#define CROWDPRICE_MARKET_FLEET_SIMULATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "arrival/rate_function.h"
#include "choice/acceptance.h"
#include "engine/policy_artifact.h"
#include "market/controller.h"
#include "market/simulator.h"
#include "market/types.h"
#include "serving/campaign_shard_map.h"
#include "util/result.h"
#include "util/rng.h"

namespace crowdprice::market {

/// Outcome of one fleet campaign, in admission order.
struct FleetOutcome {
  serving::CampaignId campaign_id = 0;
  /// kRetiredCompleted when the batch finished, kRetiredDeadline when the
  /// deadline passed with tasks unassigned.
  serving::CampaignState final_state = serving::CampaignState::kLive;
  SimulationResult result;
};

class FleetSimulator {
 public:
  /// The fleet serves its campaigns from a CampaignShardMap with
  /// `num_shards` shards (see CampaignShardMap::Create).
  static Result<FleetSimulator> Create(int num_shards);

  FleetSimulator(FleetSimulator&&) = default;
  FleetSimulator& operator=(FleetSimulator&&) = default;

  /// Admits a campaign played by a solved policy. The acceptance function
  /// is borrowed and must outlive Run(); the Rng is the campaign's own
  /// stream (fork one per campaign for independence).
  Result<serving::CampaignId> Admit(
      engine::PolicyArtifact artifact, const SimulatorConfig& config,
      const choice::AcceptanceFunction& acceptance, Rng rng);

  /// Same, sharing one immutable artifact across many campaigns (one copy
  /// of the solved tables however large the fleet).
  Result<serving::CampaignId> AdmitShared(
      std::shared_ptr<const engine::PolicyArtifact> artifact,
      const SimulatorConfig& config,
      const choice::AcceptanceFunction& acceptance, Rng rng);

  /// Admits a campaign played by an explicit controller (baselines).
  Result<serving::CampaignId> AdmitController(
      std::unique_ptr<PricingController> controller,
      const SimulatorConfig& config,
      const choice::AcceptanceFunction& acceptance, Rng rng);

  /// Plays every admitted campaign to completion or deadline against the
  /// shared arrival process and returns outcomes in admission order. All
  /// campaigns retire from the shard map as they finish; the pending set
  /// clears, so the simulator can be reused for another wave.
  ///
  /// While Run is in flight the campaigns being simulated are driven by
  /// borrowed controllers on their shard's thread, outside the shard
  /// mutex: do not Decide/Tick/Retire those campaigns through the map
  /// concurrently (racing a stateful controller, or destroying one the
  /// loop still holds). Serving-plane calls are safe before Run, after
  /// Run, and against campaigns admitted for a later wave.
  Result<std::vector<FleetOutcome>> Run(
      const arrival::PiecewiseConstantRate& rate);

  /// The serving layer under the fleet (shard stats, live campaigns).
  const serving::CampaignShardMap& shard_map() const { return map_; }
  /// Mutable access for serving-plane calls (DecideBatch, extra admits)
  /// between fleet waves -- see the Run() concurrency contract.
  serving::CampaignShardMap& mutable_shard_map() { return map_; }

  size_t pending_campaigns() const { return pending_.size(); }

 private:
  struct Pending {
    serving::CampaignId id = 0;
    SimulatorConfig config;
    const choice::AcceptanceFunction* acceptance = nullptr;
    Rng rng{0};
  };

  explicit FleetSimulator(serving::CampaignShardMap map);

  serving::CampaignShardMap map_;
  std::vector<Pending> pending_;
};

}  // namespace crowdprice::market

#endif  // CROWDPRICE_MARKET_FLEET_SIMULATOR_H_
