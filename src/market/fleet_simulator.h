// FleetSimulator: thousands of concurrent campaigns on one shared clock.
//
// RunSimulation plays one campaign start-to-finish; real marketplaces run
// many batches at once against the same worker arrival process -- and the
// marketplace is an open system: new batches arrive while others are
// mid-flight, live batches get re-priced (hot artifact swaps) or pulled.
// The fleet simulator admits every campaign into a
// serving::CampaignShardMap (so the serving layer's lifecycle -- admit,
// tick, swap, retire on completion, deadline or event -- is exercised
// under load) and drives all of them with one event loop: global time
// advances one arrival-rate bucket at a time, and at each slice every
// shard advances its campaigns concurrently on the serving pool.
//
// Streaming admission: an ArrivalSchedule lists admission events (campaign
// spec + admit time + optional mid-life SwapArtifact / retire events).
// RunStreaming consumes it: admit times are quantized up to the next
// arrival-bucket edge, and each campaign is admitted into the live shard
// map on the event loop's admission lane -- which runs concurrently with
// the shard passes still ticking earlier campaigns, taking only the
// target shard's mutex (no global barrier). Mid-life events apply at
// bucket-edge barriers: SwapArtifact re-pins the campaign's policy and
// rebinds its session's controller; retire pulls the campaign and
// finalizes its truncated outcome.
//
// Determinism: each campaign owns its Rng and its CampaignSession, and a
// session only ever plays whole arrival buckets (see market/session.h), so
// slicing the fleet's clock never changes any campaign's draw sequence.
// Per-campaign outcomes are therefore bit-identical to running
// market::RunSimulation serially with the same controller and Rng started
// at the campaign's admit time -- whatever the shard count and whatever
// the admission interleaving. That property is the correctness harness for
// this whole layer (tests/fleet_simulator_test.cc asserts it over 1000+
// campaigns admitted at random bucket edges).

#ifndef CROWDPRICE_MARKET_FLEET_SIMULATOR_H_
#define CROWDPRICE_MARKET_FLEET_SIMULATOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "arrival/rate_function.h"
#include "choice/acceptance.h"
#include "engine/policy_artifact.h"
#include "market/controller.h"
#include "market/simulator.h"
#include "market/types.h"
#include "serving/campaign_shard_map.h"
#include "util/result.h"
#include "util/rng.h"

namespace crowdprice::market {

/// Outcome of one fleet campaign. Outcomes are returned in schedule order,
/// but a streaming fleet completes campaigns in marketplace order -- key
/// results by `campaign_id` (stable from admission to retirement), not by
/// position.
struct FleetOutcome {
  /// Position of this campaign in the consumed ArrivalSchedule (equals the
  /// admission order for Run()).
  size_t schedule_index = 0;
  serving::CampaignId campaign_id = 0;
  /// Wall-clock admission time after bucket-edge quantization (0 for
  /// campaigns admitted before the run).
  double admit_hours = 0.0;
  /// kRetiredCompleted when the batch finished, kRetiredDeadline when the
  /// deadline passed with tasks unassigned, kRetiredExplicit when a
  /// scheduled retire event pulled the campaign mid-run.
  serving::CampaignState final_state = serving::CampaignState::kLive;
  SimulationResult result;
};

/// Admission events for a streaming fleet run: which campaigns enter the
/// marketplace, when, and what happens to them mid-life. Build one, attach
/// optional SwapArtifactAt / RetireAt events to its entries, and hand it
/// to FleetSimulator::RunStreaming.
class ArrivalSchedule {
 public:
  /// Schedules a campaign playing a shared immutable artifact, admitted at
  /// wall-clock `admit_hours` (quantized up to the next arrival-bucket
  /// edge by the run). The acceptance function is borrowed and must
  /// outlive the run; the Rng is the campaign's own stream. Returns the
  /// entry's schedule index.
  Result<size_t> AdmitShared(
      double admit_hours,
      std::shared_ptr<const engine::PolicyArtifact> artifact,
      const SimulatorConfig& config,
      const choice::AcceptanceFunction& acceptance, Rng rng);

  /// Schedules a campaign played by an explicit controller (baselines).
  Result<size_t> AdmitController(
      double admit_hours, std::unique_ptr<PricingController> controller,
      const SimulatorConfig& config,
      const choice::AcceptanceFunction& acceptance, Rng rng);

  /// Schedules a hot artifact swap on entry `index` at wall-clock
  /// `at_hours` (>= the entry's admit time; quantized to a bucket edge).
  /// The swap re-pins the live campaign's policy through
  /// CampaignShardMap::SwapArtifactShared and rebinds the session's
  /// controller; a campaign that already completed skips the event.
  Status SwapArtifactAt(size_t index, double at_hours,
                        std::shared_ptr<const engine::PolicyArtifact> artifact);

  /// Schedules entry `index` to be pulled from the marketplace at
  /// wall-clock `at_hours` (>= its admit time; quantized to a bucket
  /// edge): the campaign retires explicitly and its outcome reflects the
  /// truncated run. A campaign that already completed skips the event.
  Status RetireAt(size_t index, double at_hours);

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

 private:
  friend class FleetSimulator;

  struct ControlEvent {
    bool retire = false;  ///< false: swap to `artifact`.
    double at_hours = 0.0;
    std::shared_ptr<const engine::PolicyArtifact> artifact;
  };

  struct Entry {
    double admit_hours = 0.0;
    SimulatorConfig config;
    /// Exactly one of artifact / controller is set.
    std::shared_ptr<const engine::PolicyArtifact> artifact;
    std::unique_ptr<PricingController> controller;
    const choice::AcceptanceFunction* acceptance = nullptr;
    Rng rng{0};
    std::vector<ControlEvent> events;
  };

  std::vector<Entry> entries_;
};

/// A uniform random arrival-bucket edge in [0, window_hours]: the shared
/// helper harnesses use to draw streaming admission times (0 when the
/// window is narrower than one bucket). Deterministic given the Rng.
double RandomBucketEdge(Rng& rng, double window_hours, double bucket_hours);

/// Telemetry from the last RunStreaming call: admission-lane churn and the
/// wall latency of admitting into the live map while traffic is in flight.
struct StreamingStats {
  uint64_t admitted = 0;
  uint64_t swapped = 0;           ///< Mid-life artifact swaps applied.
  uint64_t retired_by_event = 0;  ///< Mid-life retire events applied.
  uint64_t slices = 0;            ///< Event-loop bucket edges processed.
  double admit_mean_ms = 0.0;     ///< Mean admit-under-traffic latency.
  double admit_max_ms = 0.0;      ///< Worst admit-under-traffic latency.
};

class FleetSimulator {
 public:
  /// The fleet serves its campaigns from a CampaignShardMap with
  /// `num_shards` shards (see CampaignShardMap::Create).
  static Result<FleetSimulator> Create(int num_shards);

  FleetSimulator(FleetSimulator&&) = default;
  FleetSimulator& operator=(FleetSimulator&&) = default;

  /// Admits a campaign played by a solved policy. The acceptance function
  /// is borrowed and must outlive Run(); the Rng is the campaign's own
  /// stream (fork one per campaign for independence).
  Result<serving::CampaignId> Admit(
      engine::PolicyArtifact artifact, const SimulatorConfig& config,
      const choice::AcceptanceFunction& acceptance, Rng rng);

  /// Same, sharing one immutable artifact across many campaigns (one copy
  /// of the solved tables however large the fleet).
  Result<serving::CampaignId> AdmitShared(
      std::shared_ptr<const engine::PolicyArtifact> artifact,
      const SimulatorConfig& config,
      const choice::AcceptanceFunction& acceptance, Rng rng);

  /// Admits a campaign played by an explicit controller (baselines).
  Result<serving::CampaignId> AdmitController(
      std::unique_ptr<PricingController> controller,
      const SimulatorConfig& config,
      const choice::AcceptanceFunction& acceptance, Rng rng);

  /// Plays every admitted campaign to completion or deadline against the
  /// shared arrival process and returns outcomes in admission order. All
  /// campaigns retire from the shard map as they finish; the pending set
  /// clears, so the simulator can be reused for another wave.
  ///
  /// While Run is in flight the campaigns being simulated are driven by
  /// borrowed controllers on their shard's thread, outside the shard
  /// mutex: do not Decide/Tick/Retire those campaigns through the map
  /// concurrently (racing a stateful controller, or destroying one the
  /// loop still holds). Serving-plane calls are safe before Run, after
  /// Run, and against campaigns admitted for a later wave.
  Result<std::vector<FleetOutcome>> Run(
      const arrival::PiecewiseConstantRate& rate);

  /// Plays an open marketplace: consumes `schedule`, admitting each
  /// campaign into the live shard map at its (bucket-edge-quantized) admit
  /// time while earlier campaigns are still being ticked on the serving
  /// pool, applying mid-life swap/retire events at bucket-edge barriers,
  /// and returns outcomes in schedule order once every campaign has
  /// completed, expired or been retired. Campaigns admitted before the
  /// call (the Admit* methods) join the run at wall-clock 0, ahead of the
  /// schedule's entries in outcome order. The Run() concurrency contract
  /// applies.
  Result<std::vector<FleetOutcome>> RunStreaming(
      const arrival::PiecewiseConstantRate& rate, ArrivalSchedule schedule);

  /// Telemetry from the last Run/RunStreaming call.
  const StreamingStats& streaming_stats() const { return streaming_stats_; }

  /// The serving layer under the fleet (shard stats, live campaigns).
  const serving::CampaignShardMap& shard_map() const { return map_; }
  /// Mutable access for serving-plane calls (DecideBatch, extra admits)
  /// between fleet waves -- see the Run() concurrency contract.
  serving::CampaignShardMap& mutable_shard_map() { return map_; }

  size_t pending_campaigns() const { return pending_.size(); }

 private:
  struct Pending {
    serving::CampaignId id = 0;
    SimulatorConfig config;
    const choice::AcceptanceFunction* acceptance = nullptr;
    Rng rng{0};
  };

  explicit FleetSimulator(serving::CampaignShardMap map);

  serving::CampaignShardMap map_;
  std::vector<Pending> pending_;
  StreamingStats streaming_stats_;
};

}  // namespace crowdprice::market

#endif  // CROWDPRICE_MARKET_FLEET_SIMULATOR_H_
