// Plain data types shared by the marketplace simulator.

#ifndef CROWDPRICE_MARKET_TYPES_H_
#define CROWDPRICE_MARKET_TYPES_H_

#include <cstdint>
#include <vector>

#include "util/result.h"

namespace crowdprice::market {

/// The offer in force at some moment: what a worker who arrives sees.
///
/// In the plain experiments each HIT is a single task and the knob is its
/// reward. In the live-experiment replica (§5.4) the HIT price is fixed at
/// 2 cents and the knob is how many tasks are bundled per HIT, so the
/// per-task reward is implicit (2 / group_size cents).
struct Offer {
  /// Reward per task, cents (fractional allowed for bundled HITs).
  double per_task_reward_cents = 0.0;
  /// Tasks bundled into one HIT; a worker who accepts completes up to this
  /// many tasks (fewer if the batch is nearly done).
  int group_size = 1;
};

/// One consultation of a pricing controller: everything a policy needs to
/// decide what to post right now. A campaign prices one or more task types
/// concurrently (the paper's §6 extension); single-type campaigns are the
/// one-entry case.
struct DecisionRequest {
  /// Marketplace wall-clock time of the lookup (the fleet's shared clock).
  double now_hours = 0.0;
  /// Time on the campaign's own clock, hours since it started -- what
  /// plan-backed controllers map to their interval index. Campaigns that
  /// start at t = 0 (the simulators' convention) keep both clocks equal.
  double campaign_hours = 0.0;
  /// Remaining unassigned tasks, one entry per task type. At least one
  /// entry must be > 0 for a decision to exist.
  std::vector<int64_t> remaining;

  /// The single-type request the legacy Decide(now, remaining) surface
  /// expressed: both clocks at `now_hours`, one task type.
  static DecisionRequest Single(double now_hours, int64_t remaining_tasks) {
    DecisionRequest request;
    request.now_hours = now_hours;
    request.campaign_hours = now_hours;
    request.remaining.push_back(remaining_tasks);
    return request;
  }

  int num_types() const { return static_cast<int>(remaining.size()); }

  int64_t total_remaining() const {
    int64_t total = 0;
    for (int64_t n : remaining) total += n;
    return total;
  }
};

/// The offers a decision puts in force: one per task type, aligned
/// index-for-index with DecisionRequest::remaining. Single-type policies
/// answer a 1-offer sheet.
struct OfferSheet {
  std::vector<Offer> offers;

  static OfferSheet Single(Offer offer) {
    OfferSheet sheet;
    sheet.offers.push_back(offer);
    return sheet;
  }

  int num_types() const { return static_cast<int>(offers.size()); }
};

/// One HIT completion.
struct CompletionEvent {
  double time_hours = 0.0;  ///< When the worker finished the HIT.
  int tasks = 0;            ///< Tasks completed in this HIT.
  double cost_cents = 0.0;  ///< Reward paid out for this HIT.
  int group_size = 1;       ///< Offer group size at assignment.
};

/// Aggregate record of one worker who accepted at least one HIT.
struct WorkerRecord {
  double first_accept_hours = 0.0;
  int hits = 0;
  int tasks = 0;
  int correct = 0;          ///< Correct answers (0 if accuracy disabled).
  double true_accuracy = 0.0;  ///< The worker's latent accuracy draw.
};

/// Outcome of one simulated campaign.
struct SimulationResult {
  double total_cost_cents = 0.0;
  int64_t tasks_assigned = 0;
  /// Tasks completed no later than the horizon.
  int64_t tasks_completed_by_horizon = 0;
  /// Tasks never assigned by the horizon.
  int64_t tasks_unassigned = 0;
  /// Time the last task completed; horizon if the batch did not finish.
  double completion_time_hours = 0.0;
  bool finished = false;
  int64_t worker_arrivals = 0;
  std::vector<CompletionEvent> events;
  std::vector<WorkerRecord> workers;

  /// Tasks completed in each `bucket_hours`-wide slice of [0, span). Events
  /// beyond span are ignored. Requires bucket_hours > 0, span > 0.
  Result<std::vector<int64_t>> CompletionsPerBucket(double bucket_hours,
                                                    double span_hours) const {
    if (!(bucket_hours > 0.0) || !(span_hours > 0.0)) {
      return Status::InvalidArgument("bucket and span must be > 0");
    }
    const auto buckets =
        static_cast<size_t>(span_hours / bucket_hours + 0.999999);
    std::vector<int64_t> out(buckets, 0);
    for (const auto& ev : events) {
      if (ev.time_hours >= span_hours || ev.time_hours < 0.0) continue;
      out[static_cast<size_t>(ev.time_hours / bucket_hours)] += ev.tasks;
    }
    return out;
  }
};

}  // namespace crowdprice::market

#endif  // CROWDPRICE_MARKET_TYPES_H_
