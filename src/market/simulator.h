// Event-driven crowdsourcing marketplace simulator.
//
// Implements the generative model the paper assumes (§2) and the behaviours
// its live experiments observe (§5.4):
//   * workers arrive by an NHPP with rate lambda(t);
//   * an arriving worker accepts the posted offer with probability
//     p(per-task reward) given by the true acceptance function;
//   * on acceptance the worker takes one HIT (group_size tasks, fewer at the
//     tail), finishes it after service_minutes_per_task per task, and is
//     paid reward * tasks;
//   * optionally, a worker who finishes a HIT takes another with a
//     price-dependent retention probability (the §5.4.3 observation that
//     higher pay keeps workers on the task type, Fig. 15);
//   * optionally, each worker has a latent Beta-distributed accuracy and
//     answers each task correctly with that probability (Figs. 13-14).
//
// The controller is consulted at fixed decision epochs and (optionally) on
// every state change, so both interval-based MDP policies and the
// tier-exhaustion semantics of static budget pricing are exact.

#ifndef CROWDPRICE_MARKET_SIMULATOR_H_
#define CROWDPRICE_MARKET_SIMULATOR_H_

#include <cstdint>

#include "arrival/rate_function.h"
#include "choice/acceptance.h"
#include "market/controller.h"
#include "market/types.h"
#include "util/macros.h"
#include "util/result.h"
#include "util/rng.h"

namespace crowdprice::market {

/// Price-dependent probability that a worker, having just completed a HIT,
/// immediately takes another one: rho(c) = max_rate * c / (c + half_price).
/// max_rate = 0 disables retention (every arrival is a single pickup, the
/// paper's base model).
struct RetentionModel {
  double max_rate = 0.0;
  double half_price_cents = 1.0;

  double ProbabilityAt(double per_task_reward_cents) const {
    if (max_rate <= 0.0 || per_task_reward_cents <= 0.0) return 0.0;
    return max_rate * per_task_reward_cents /
           (per_task_reward_cents + half_price_cents);
  }
};

/// Latent per-worker answer accuracy ~ Beta(alpha, beta). enabled = false
/// records no answers.
struct AccuracyModel {
  bool enabled = false;
  double beta_alpha = 30.0;  ///< Mean ~0.91 with beta_beta = 3.
  double beta_beta = 3.0;
};

struct SimulatorConfig {
  int64_t total_tasks = 0;
  double horizon_hours = 0.0;
  /// Controller consultation period. Must divide the horizon reasonably;
  /// the simulator consults at t = 0, d, 2d, ...
  double decision_interval_hours = 1.0;
  /// Also re-consult the controller after every assignment (needed for
  /// tier-based static pricing where the offer changes mid-interval).
  bool decide_on_every_assignment = false;
  /// Minutes of worker time per task; service delays completion timestamps.
  double service_minutes_per_task = 2.0;
  RetentionModel retention;
  AccuracyModel accuracy;

  Status Validate() const;
};

/// Runs one campaign. The rate and acceptance function describe the *true*
/// marketplace; any mis-estimation experiment plans with one model and
/// simulates with another. Deterministic given the Rng stream.
///
/// `start_hours` is the marketplace wall-clock time the campaign is
/// admitted (default 0): arrivals are drawn from the shared rate function
/// from that point on, the horizon ends at start + config.horizon_hours,
/// and all reported times are wall-clock. A streaming fleet campaign
/// admitted at t0 is bit-identical to RunSimulation(..., t0).
Result<SimulationResult> RunSimulation(
    const SimulatorConfig& config, const arrival::PiecewiseConstantRate& rate,
    const choice::AcceptanceFunction& acceptance, PricingController& controller,
    Rng& rng, double start_hours = 0.0);

/// Convenience: runs `replicates` campaigns with independent Rng forks and
/// a fresh controller from `controller_factory` each time.
template <typename ControllerFactory>
Result<std::vector<SimulationResult>> RunReplicates(
    const SimulatorConfig& config, const arrival::PiecewiseConstantRate& rate,
    const choice::AcceptanceFunction& acceptance,
    ControllerFactory&& controller_factory, int replicates, Rng& rng) {
  if (replicates < 1) {
    return Status::InvalidArgument("replicates must be >= 1");
  }
  std::vector<SimulationResult> results;
  results.reserve(static_cast<size_t>(replicates));
  for (int i = 0; i < replicates; ++i) {
    Rng child = rng.Fork();
    auto controller = controller_factory();
    CP_ASSIGN_OR_RETURN(
        SimulationResult res,
        RunSimulation(config, rate, acceptance, *controller, child));
    results.push_back(std::move(res));
  }
  return results;
}

}  // namespace crowdprice::market

#endif  // CROWDPRICE_MARKET_SIMULATOR_H_
