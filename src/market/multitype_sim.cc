#include "market/multitype_sim.h"

#include <algorithm>
#include <cmath>

#include "stats/poisson.h"
#include "util/macros.h"
#include "util/stringf.h"

namespace crowdprice::market {

namespace {

Status ValidateSheet(const OfferSheet& sheet, size_t num_types) {
  if (sheet.offers.size() != num_types) {
    return Status::InvalidArgument(
        StringF("controller answered %zu offers for a %zu-type campaign",
                sheet.offers.size(), num_types));
  }
  for (const Offer& offer : sheet.offers) {
    if (offer.group_size < 1) {
      return Status::InvalidArgument(StringF(
          "controller returned group_size %d (< 1)", offer.group_size));
    }
    if (!(offer.per_task_reward_cents >= 0.0) ||
        !std::isfinite(offer.per_task_reward_cents)) {
      return Status::InvalidArgument(
          StringF("controller returned invalid reward %g",
                  offer.per_task_reward_cents));
    }
  }
  return Status::OK();
}

Status ValidateProbabilities(const std::vector<double>& probs,
                             size_t num_types) {
  if (probs.size() != num_types) {
    return Status::NumericError(
        StringF("acceptance returned %zu probabilities for %zu types",
                probs.size(), num_types));
  }
  double sum = 0.0;
  for (double p : probs) {
    if (!(p >= 0.0) || !std::isfinite(p)) {
      return Status::NumericError(
          StringF("acceptance probability %g outside [0, 1]", p));
    }
    sum += p;
  }
  if (sum > 1.0 + 1e-9) {
    return Status::NumericError(
        StringF("acceptance probabilities sum to %g (> 1)", sum));
  }
  return Status::OK();
}

}  // namespace

Status MultiTypeSimConfig::Validate() const {
  if (tasks_per_type.empty()) {
    return Status::InvalidArgument("tasks_per_type must not be empty");
  }
  int64_t total = 0;
  for (int64_t n : tasks_per_type) {
    if (n < 0) {
      return Status::InvalidArgument(StringF(
          "tasks_per_type entry %lld < 0", static_cast<long long>(n)));
    }
    total += n;
  }
  if (total < 1) {
    return Status::InvalidArgument("need at least one task across types");
  }
  if (!(horizon_hours > 0.0) || !std::isfinite(horizon_hours)) {
    return Status::InvalidArgument(
        StringF("horizon_hours must be > 0; got %g", horizon_hours));
  }
  if (!(decision_interval_hours > 0.0)) {
    return Status::InvalidArgument(
        StringF("decision_interval_hours must be > 0; got %g",
                decision_interval_hours));
  }
  if (!(service_minutes_per_task >= 0.0)) {
    return Status::InvalidArgument("service_minutes_per_task must be >= 0");
  }
  return Status::OK();
}

Result<MultiTypeSimResult> RunMultiTypeSimulation(
    const MultiTypeSimConfig& config,
    const arrival::PiecewiseConstantRate& rate,
    const SheetAcceptance& acceptance, PricingController& controller,
    Rng& rng) {
  CP_RETURN_IF_ERROR(config.Validate());
  const size_t num_types = config.tasks_per_type.size();
  if (controller.num_types() != static_cast<int>(num_types)) {
    return Status::InvalidArgument(
        StringF("controller prices %d types; campaign has %zu",
                controller.num_types(), num_types));
  }

  std::vector<int64_t> remaining = config.tasks_per_type;
  MultiTypeSimResult result;
  result.types.assign(num_types, TypeOutcome{});

  auto total_remaining = [&remaining]() {
    int64_t total = 0;
    for (int64_t n : remaining) total += n;
    return total;
  };
  auto make_request = [&](double when) {
    DecisionRequest request;
    request.now_hours = when;
    request.campaign_hours = when;
    request.remaining = remaining;
    return request;
  };

  OfferSheet sheet;
  bool sheet_valid = false;
  double next_epoch = 0.0;
  double last_completion = 0.0;
  std::vector<double> arrivals;

  // Stream NHPP arrivals one rate bucket at a time, like CampaignSession;
  // the sheet refreshes only at decision epochs, matching the joint DP's
  // fixed-prices-per-interval model.
  const double bucket = rate.bucket_width_hours();
  double clock = 0.0;
  while (total_remaining() > 0 && clock < config.horizon_hours) {
    const double next_edge =
        (std::floor(clock / bucket + 1e-12) + 1.0) * bucket;
    const double seg_end = std::min(next_edge, config.horizon_hours);
    if (seg_end <= clock) {
      return Status::NumericError("arrival bucket walk made no progress");
    }
    const double mean = rate.At(clock) * (seg_end - clock);
    const int count = stats::SamplePoisson(rng, mean);
    arrivals.clear();
    arrivals.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
      arrivals.push_back(clock + rng.NextDouble() * (seg_end - clock));
    }
    std::sort(arrivals.begin(), arrivals.end());

    for (double t : arrivals) {
      if (total_remaining() <= 0) break;
      ++result.worker_arrivals;
      while (next_epoch <= t) {
        CP_ASSIGN_OR_RETURN(sheet, controller.Decide(make_request(next_epoch)));
        CP_RETURN_IF_ERROR(ValidateSheet(sheet, num_types));
        sheet_valid = true;
        next_epoch += config.decision_interval_hours;
      }
      if (!sheet_valid) {
        CP_ASSIGN_OR_RETURN(sheet, controller.Decide(make_request(t)));
        CP_RETURN_IF_ERROR(ValidateSheet(sheet, num_types));
        sheet_valid = true;
      }

      CP_ASSIGN_OR_RETURN(std::vector<double> probs,
                          acceptance.ProbabilitiesAt(sheet));
      CP_RETURN_IF_ERROR(ValidateProbabilities(probs, num_types));
      // One uniform draw walks the cumulative choice distribution.
      const double u = rng.NextDouble();
      double cum = 0.0;
      size_t picked = num_types;  // walks away unless a type wins
      for (size_t i = 0; i < num_types; ++i) {
        cum += probs[i];
        if (u < cum) {
          picked = i;
          break;
        }
      }
      if (picked == num_types) continue;
      // A worker who picks an already-drained type finds no HIT and
      // leaves -- completions beyond the backlog are lost, exactly the
      // tail the DP lumps at n (CollapseTail).
      const Offer& offer = sheet.offers[picked];
      const int take = static_cast<int>(
          std::min<int64_t>(offer.group_size, remaining[picked]));
      if (take == 0) continue;
      remaining[picked] -= take;
      const double paid = offer.per_task_reward_cents * take;
      TypeOutcome& type = result.types[picked];
      type.tasks_assigned += take;
      type.cost_cents += paid;
      result.total_cost_cents += paid;
      const double done_at = t + config.service_minutes_per_task * take / 60.0;
      last_completion = std::max(last_completion, done_at);
    }
    clock = seg_end;
  }

  result.finished = total_remaining() == 0;
  result.completion_time_hours =
      result.finished ? last_completion : config.horizon_hours;
  for (size_t i = 0; i < num_types; ++i) {
    result.types[i].tasks_unassigned = remaining[i];
  }
  return result;
}

}  // namespace crowdprice::market
