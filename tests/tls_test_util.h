// Hermetic TLS fixtures for the transport tests: a throwaway CA and
// CA-signed leaf identities minted in-process with the OpenSSL X509 API
// (no shelling out, no checked-in key material) and written as PEM
// files under a fresh mkdtemp directory. An "expired" leaf is just one
// whose validity window ended in the past; a "wrong CA" is a second
// TestCa. Only compiled when the build has OpenSSL -- tests guard on
// net::TlsSupported() first.

#ifndef CROWDPRICE_TESTS_TLS_TEST_UTIL_H_
#define CROWDPRICE_TESTS_TLS_TEST_UTIL_H_

#if CROWDPRICE_HAVE_OPENSSL

#include <openssl/evp.h>
#include <openssl/pem.h>
#include <openssl/x509.h>
#include <openssl/x509v3.h>
#include <stdlib.h>

#include <cstdio>
#include <string>

namespace crowdprice::tls_test {

/// A leaf identity: where the PEM cert and key landed.
struct TestIdentity {
  std::string cert_file;
  std::string key_file;
};

/// One throwaway certificate authority. The constructor mints the CA
/// keypair and self-signed certificate; MintLeaf signs leaves with it.
/// Files live under a fresh temp directory for the process's lifetime.
class TestCa {
 public:
  TestCa() : dir_(MakeTempDir()) {
    key_ = EVP_EC_gen("P-256");
    cert_ = MakeCert("crowdprice-test-ca", key_, /*issuer_cert=*/nullptr,
                     /*issuer_key=*/nullptr, /*is_ca=*/true,
                     /*not_before_secs=*/-3600, /*not_after_secs=*/36000);
    ca_file_ = dir_ + "/ca.pem";
    WriteCert(ca_file_, cert_);
  }

  ~TestCa() {
    X509_free(cert_);
    EVP_PKEY_free(key_);
  }

  TestCa(const TestCa&) = delete;
  TestCa& operator=(const TestCa&) = delete;

  const std::string& ca_file() const { return ca_file_; }

  /// Mints a CA-signed leaf valid over [now + not_before_secs, now +
  /// not_after_secs]; a window entirely in the past makes an expired
  /// certificate.
  TestIdentity MintLeaf(const std::string& name, long not_before_secs = -3600,
                        long not_after_secs = 36000) {
    EVP_PKEY* key = EVP_EC_gen("P-256");
    X509* cert = MakeCert(name, key, cert_, key_, /*is_ca=*/false,
                          not_before_secs, not_after_secs);
    TestIdentity identity;
    identity.cert_file = dir_ + "/" + name + ".pem";
    identity.key_file = dir_ + "/" + name + ".key";
    WriteCert(identity.cert_file, cert);
    WriteKey(identity.key_file, key);
    X509_free(cert);
    EVP_PKEY_free(key);
    return identity;
  }

 private:
  static std::string MakeTempDir() {
    char tmpl[] = "/tmp/crowdprice_tls_XXXXXX";
    const char* dir = mkdtemp(tmpl);
    return dir == nullptr ? "/tmp" : dir;
  }

  X509* MakeCert(const std::string& cn, EVP_PKEY* subject_key,
                 X509* issuer_cert, EVP_PKEY* issuer_key, bool is_ca,
                 long not_before_secs, long not_after_secs) {
    X509* cert = X509_new();
    X509_set_version(cert, 2);  // v3, zero-based
    ASN1_INTEGER_set(X509_get_serialNumber(cert), ++serial_);
    X509_gmtime_adj(X509_getm_notBefore(cert), not_before_secs);
    X509_gmtime_adj(X509_getm_notAfter(cert), not_after_secs);
    X509_set_pubkey(cert, subject_key);
    X509_NAME* subject = X509_get_subject_name(cert);
    X509_NAME_add_entry_by_txt(
        subject, "CN", MBSTRING_ASC,
        reinterpret_cast<const unsigned char*>(cn.c_str()), -1, -1, 0);
    X509_set_issuer_name(cert, issuer_cert != nullptr
                                   ? X509_get_subject_name(issuer_cert)
                                   : subject);
    if (is_ca) {
      X509V3_CTX ctx;
      X509V3_set_ctx(&ctx, cert, cert, nullptr, nullptr, 0);
      X509_EXTENSION* ext = X509V3_EXT_conf_nid(nullptr, &ctx,
                                                NID_basic_constraints,
                                                "critical,CA:TRUE");
      if (ext != nullptr) {
        X509_add_ext(cert, ext, -1);
        X509_EXTENSION_free(ext);
      }
    }
    X509_sign(cert, issuer_key != nullptr ? issuer_key : subject_key,
              EVP_sha256());
    return cert;
  }

  static void WriteCert(const std::string& path, X509* cert) {
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) return;
    PEM_write_X509(file, cert);
    std::fclose(file);
  }

  static void WriteKey(const std::string& path, EVP_PKEY* key) {
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) return;
    PEM_write_PrivateKey(file, key, nullptr, nullptr, 0, nullptr, nullptr);
    std::fclose(file);
  }

  std::string dir_;
  std::string ca_file_;
  EVP_PKEY* key_ = nullptr;
  X509* cert_ = nullptr;
  long serial_ = 1;
};

}  // namespace crowdprice::tls_test

#endif  // CROWDPRICE_HAVE_OPENSSL

#endif  // CROWDPRICE_TESTS_TLS_TEST_UTIL_H_
