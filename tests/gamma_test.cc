#include "stats/gamma.h"

#include <cmath>

#include <gtest/gtest.h>

namespace crowdprice::stats {
namespace {

TEST(LogFactorialTest, SmallValues) {
  EXPECT_DOUBLE_EQ(LogFactorial(0), 0.0);
  EXPECT_DOUBLE_EQ(LogFactorial(1), 0.0);
  EXPECT_NEAR(LogFactorial(2), std::log(2.0), 1e-14);
  EXPECT_NEAR(LogFactorial(5), std::log(120.0), 1e-12);
  EXPECT_NEAR(LogFactorial(10), std::log(3628800.0), 1e-10);
}

TEST(LogFactorialTest, TableAndLgammaAgreeAtBoundary) {
  // The implementation switches from table to lgamma at k = 256.
  for (int k : {254, 255, 256, 257, 300}) {
    EXPECT_NEAR(LogFactorial(k), std::lgamma(static_cast<double>(k) + 1.0), 1e-9)
        << "k = " << k;
  }
}

TEST(LogFactorialTest, NegativeIsMinusInfinity) {
  EXPECT_TRUE(std::isinf(LogFactorial(-1)));
  EXPECT_LT(LogFactorial(-1), 0.0);
}

TEST(RegularizedGammaTest, InvalidArguments) {
  EXPECT_TRUE(RegularizedGammaP(0.0, 1.0).status().IsInvalidArgument());
  EXPECT_TRUE(RegularizedGammaP(-1.0, 1.0).status().IsInvalidArgument());
  EXPECT_TRUE(RegularizedGammaP(1.0, -1.0).status().IsInvalidArgument());
  EXPECT_TRUE(RegularizedGammaQ(0.0, 1.0).status().IsInvalidArgument());
}

TEST(RegularizedGammaTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(RegularizedGammaP(2.5, 0.0).value(), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedGammaQ(2.5, 0.0).value(), 1.0);
}

TEST(RegularizedGammaTest, ComplementaryEverywhere) {
  for (double a : {0.5, 1.0, 3.0, 10.0, 100.0}) {
    for (double x : {0.1, 0.9, 1.0, 2.5, 9.0, 50.0, 200.0}) {
      auto p = RegularizedGammaP(a, x);
      auto q = RegularizedGammaQ(a, x);
      ASSERT_TRUE(p.ok());
      ASSERT_TRUE(q.ok());
      EXPECT_NEAR(p.value() + q.value(), 1.0, 1e-12)
          << "a = " << a << ", x = " << x;
    }
  }
}

TEST(RegularizedGammaTest, ExponentialSpecialCase) {
  // P(1, x) = 1 - e^-x.
  for (double x : {0.1, 0.5, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x).value(), 1.0 - std::exp(-x), 1e-12);
  }
}

TEST(RegularizedGammaTest, ErfSpecialCase) {
  // P(1/2, x) = erf(sqrt(x)).
  for (double x : {0.25, 1.0, 4.0}) {
    EXPECT_NEAR(RegularizedGammaP(0.5, x).value(), std::erf(std::sqrt(x)), 1e-10);
  }
}

TEST(RegularizedGammaTest, MonotoneInX) {
  double prev = -1.0;
  for (double x = 0.0; x <= 30.0; x += 0.5) {
    const double p = RegularizedGammaP(5.0, x).value();
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(RegularizedGammaTest, MedianNearAMinusOneThird) {
  // For large a, the median of Gamma(a) is ~ a - 1/3, so P(a, a - 1/3) ~ 0.5.
  EXPECT_NEAR(RegularizedGammaP(100.0, 100.0 - 1.0 / 3.0).value(), 0.5, 0.01);
}

TEST(RegularizedGammaTest, ConvergesForLargeANearX) {
  // Regression: near x ~ a the series/fraction term ratios approach 1 and
  // need O(sqrt(a)) iterations; a fixed cap of 500 failed for a ~ 5000
  // (hit by Poisson tail computations on busy marketplace intervals).
  for (double a : {5230.0, 19567.0, 120000.0}) {
    auto p = RegularizedGammaP(a, a + 0.83);
    ASSERT_TRUE(p.ok()) << "a = " << a << ": " << p.status();
    // Near the mean, P is close to 1/2 for large a.
    EXPECT_NEAR(p.value(), 0.5, 0.02) << "a = " << a;
    auto q = RegularizedGammaQ(a, a - 0.83);
    ASSERT_TRUE(q.ok()) << "a = " << a << ": " << q.status();
    EXPECT_NEAR(q.value(), 0.5, 0.02) << "a = " << a;
  }
}

TEST(RegularizedGammaTest, LargeAFarTails) {
  // Deep tails at large a remain accurate (Poisson sf/cdf rely on them).
  auto q = RegularizedGammaQ(10000.0, 10000.0 + 6.0 * 100.0);  // +6 sigma
  ASSERT_TRUE(q.ok());
  EXPECT_LT(q.value(), 1e-7);
  EXPECT_GT(q.value(), 1e-12);
  auto p = RegularizedGammaP(10000.0, 10000.0 - 6.0 * 100.0);
  ASSERT_TRUE(p.ok());
  EXPECT_LT(p.value(), 1e-7);
}

}  // namespace
}  // namespace crowdprice::stats
