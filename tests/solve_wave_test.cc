// SolveWave tests: batched solving over the SolverPool farm is
// bit-identical to sequential Engine::Solve (Serialize() equality), for
// any pool size; mixed-kind waves keep spec order with per-slot errors;
// coinciding rate profiles share pmf blocks through the wave's cache; and
// evaluate=true precomputes the same nominal evaluation Evaluate() would.

#include "engine/solve_wave.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "choice/acceptance.h"
#include "engine/engine.h"
#include "kernel/pmf_cache.h"
#include "pricing/policy_eval.h"

#include "test_util.h"

namespace crowdprice::engine {
namespace {

const choice::LogitAcceptance& PaperAcceptance() {
  static const choice::LogitAcceptance acceptance =
      choice::LogitAcceptance::Paper2014();
  return acceptance;
}

DeadlineDpSpec DeadlineSpec(int num_tasks, double lambda,
                            double penalty = 180.0) {
  DeadlineDpSpec spec;
  spec.problem.num_tasks = num_tasks;
  spec.problem.num_intervals = 6;
  spec.problem.penalty_cents = penalty;
  spec.interval_lambdas.assign(6, lambda);
  spec.actions = pricing::ActionSet::FromPriceGrid(30, PaperAcceptance()).value();
  return spec;
}

// A fleet-shaped wave: many campaigns stamped from few rate profiles (the
// sharing opportunity SolveWave exists for), plus non-deadline kinds.
std::vector<PolicySpec> MixedWave() {
  std::vector<PolicySpec> specs;
  for (int i = 0; i < 6; ++i) {
    // Two distinct profiles, three campaigns each; tasks vary per campaign.
    specs.push_back(DeadlineSpec(15 + i, i % 2 == 0 ? 1400.0 : 2100.0));
  }
  FixedPriceSpec fixed;
  fixed.num_tasks = 20;
  fixed.interval_lambdas.assign(6, 1500.0);
  fixed.acceptance = &PaperAcceptance();
  fixed.max_price_cents = 40;
  specs.push_back(fixed);
  BudgetStaticSpec budget;
  budget.num_tasks = 40;
  budget.budget_cents = 600.0;
  budget.acceptance = &PaperAcceptance();
  budget.max_price_cents = 40;
  specs.push_back(budget);
  return specs;
}

TEST(SolveWaveTest, BitIdenticalToSequentialSolveForAnyPoolSize) {
  std::vector<PolicySpec> specs = MixedWave();
  std::vector<std::string> sequential;
  for (const PolicySpec& spec : specs) {
    auto artifact = Engine::Solve(spec);
    ASSERT_TRUE(artifact.ok()) << artifact.status();
    sequential.push_back(artifact->Serialize().value());
  }

  for (int threads : {1, 2, 3}) {
    SolverPool pool(threads);
    kernel::PmfShareCache cache;
    SolveWaveOptions options;
    options.pool = &pool;
    options.share_cache = &cache;
    auto results = SolveWave(specs, options);
    ASSERT_EQ(results.size(), specs.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok())
          << "pool=" << threads << " slot " << i << ": "
          << results[i].status();
      EXPECT_EQ(results[i]->Serialize().value(), sequential[i])
          << "pool=" << threads << " slot " << i;
    }
  }
}

TEST(SolveWaveTest, CoincidingProfilesSharePmfBlocks) {
  std::vector<PolicySpec> specs;
  for (int i = 0; i < 4; ++i) {
    specs.push_back(DeadlineSpec(20 + i, 1700.0));  // one shared profile
  }
  SolverPool pool(2);
  kernel::PmfShareCache cache;
  SolveWaveOptions options;
  options.pool = &pool;
  options.share_cache = &cache;
  auto results = SolveWave(specs, options);
  for (const auto& r : results) ASSERT_TRUE(r.ok()) << r.status();
  const kernel::PmfArena::Stats stats = cache.stats();
  EXPECT_GT(stats.blocks_built, 0);
  // Four campaigns on one rate profile: every solve after the first adopts
  // the first one's blocks instead of rebuilding them.
  EXPECT_GT(stats.blocks_shared, 0);
  EXPECT_GT(cache.resident_bytes(), 0u);
}

TEST(SolveWaveTest, PerSlotErrorsNeverPoisonTheWave) {
  std::vector<PolicySpec> specs;
  specs.push_back(DeadlineSpec(15, 1400.0));
  DeadlineDpSpec bad = DeadlineSpec(15, 1400.0);
  bad.actions.reset();  // Solve rejects a spec without actions
  specs.push_back(bad);
  specs.push_back(DeadlineSpec(18, 2100.0));

  SolverPool pool(2);
  auto results = SolveWave(specs);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok()) << results[0].status();
  EXPECT_TRUE(results[1].status().IsInvalidArgument());
  EXPECT_TRUE(results[2].ok()) << results[2].status();
}

TEST(SolveWaveTest, EvaluateFlagPrecomputesNominalEvaluation) {
  std::vector<PolicySpec> specs;
  specs.push_back(DeadlineSpec(15, 1400.0));
  specs.push_back(DeadlineSpec(22, 2100.0));

  SolverPool pool(2);
  kernel::PmfShareCache cache;
  SolveWaveOptions options;
  options.pool = &pool;
  options.share_cache = &cache;
  options.evaluate = true;
  auto results = SolveWave(specs, options);
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status();
    auto cached = results[i]->deadline_evaluation();
    ASSERT_TRUE(cached.ok()) << cached.status();
    // The precomputed evaluation is the same nominal forward pass a
    // sequential Evaluate() call runs.
    auto sequential = Engine::Solve(specs[i]);
    ASSERT_TRUE(sequential.ok());
    auto eval = sequential->Evaluate();
    ASSERT_TRUE(eval.ok()) << eval.status();
    EXPECT_DOUBLE_EQ((*cached)->expected_objective, eval->expected_objective);
    EXPECT_DOUBLE_EQ((*cached)->expected_cost_cents, eval->expected_cost_cents);
    EXPECT_DOUBLE_EQ((*cached)->expected_remaining, eval->expected_remaining);
  }
}

TEST(SolveWaveTest, AdaptiveSpecsPassThroughUntouched) {
  AdaptiveSpec adaptive;
  adaptive.problem.num_tasks = 15;
  adaptive.problem.num_intervals = 4;
  adaptive.problem.penalty_cents = 120.0;
  adaptive.believed_lambdas.assign(4, 300.0);
  adaptive.actions = pricing::ActionSet::FromPriceGrid(25, PaperAcceptance()).value();
  adaptive.horizon_hours = 8.0;
  std::vector<PolicySpec> specs;
  specs.push_back(adaptive);

  SolverPool pool(1);
  SolveWaveOptions options;
  options.pool = &pool;
  auto results = SolveWave(specs, options);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].ok()) << results[0].status();
  EXPECT_EQ(results[0]->kind(), PolicyKind::kAdaptive);
  auto controller = results[0]->MakeAdaptiveController();
  ASSERT_TRUE(controller.ok()) << controller.status();
  auto offer = test_util::SingleOffer(*controller, 0.0, 15);
  ASSERT_TRUE(offer.ok()) << offer.status();
}

TEST(SolveWaveTest, PoolCountersBalanceAfterWaves) {
  SolverPool pool(2);
  std::vector<PolicySpec> specs;
  for (int i = 0; i < 5; ++i) specs.push_back(DeadlineSpec(12 + i, 1600.0));
  SolveWaveOptions options;
  options.pool = &pool;
  options.share_cache = nullptr;  // sharing off is also a supported mode
  auto results = SolveWave(specs, options);
  for (const auto& r : results) ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(pool.submitted(), 5);
  EXPECT_EQ(pool.completed(), 5);
}

}  // namespace
}  // namespace crowdprice::engine
