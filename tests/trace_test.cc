#include "arrival/trace.h"

#include <cmath>

#include <gtest/gtest.h>

#include "arrival/estimator.h"
#include "util/rng.h"

namespace crowdprice::arrival {
namespace {

SyntheticTraceConfig SmallConfig() {
  SyntheticTraceConfig config;
  config.num_weeks = 1;
  config.bucket_minutes = 60;
  config.base_rate_per_hour = 1000.0;
  return config;
}

TEST(TraceTest, RebucketSums) {
  ArrivalTrace trace;
  trace.bucket_width_hours = 1.0;
  trace.counts = {1, 2, 3, 4, 5};
  auto coarse = trace.Rebucket(2).value();
  EXPECT_DOUBLE_EQ(coarse.bucket_width_hours, 2.0);
  ASSERT_EQ(coarse.counts.size(), 3u);
  EXPECT_EQ(coarse.counts[0], 3);
  EXPECT_EQ(coarse.counts[1], 7);
  EXPECT_EQ(coarse.counts[2], 5);  // partial tail
  EXPECT_EQ(coarse.total(), trace.total());
  EXPECT_TRUE(trace.Rebucket(0).status().IsInvalidArgument());
}

TEST(SyntheticTraceTest, ConfigValidation) {
  SyntheticTraceConfig bad = SmallConfig();
  bad.num_weeks = 0;
  EXPECT_TRUE(SyntheticTraceGenerator::TrueRate(bad).status().IsInvalidArgument());
  bad = SmallConfig();
  bad.base_rate_per_hour = 0.0;
  EXPECT_TRUE(SyntheticTraceGenerator::TrueRate(bad).status().IsInvalidArgument());
  bad = SmallConfig();
  bad.diurnal_amplitude = 1.5;
  EXPECT_TRUE(SyntheticTraceGenerator::TrueRate(bad).status().IsInvalidArgument());
  bad = SmallConfig();
  bad.bucket_minutes = 0;
  EXPECT_TRUE(SyntheticTraceGenerator::TrueRate(bad).status().IsInvalidArgument());
}

TEST(SyntheticTraceTest, TrueRateSpansConfiguredWeeks) {
  SyntheticTraceConfig config = SmallConfig();
  config.num_weeks = 2;
  auto rate = SyntheticTraceGenerator::TrueRate(config).value();
  EXPECT_EQ(rate.rates().size(), 2u * 7u * 24u);
  EXPECT_NEAR(rate.span_hours(), 2.0 * 7.0 * 24.0, 1e-9);
}

TEST(SyntheticTraceTest, WeekendFactorLowersWeekends) {
  SyntheticTraceConfig config = SmallConfig();
  config.diurnal_amplitude = 0.0;
  config.weekly_wobble = 0.0;
  config.weekend_factor = 0.5;
  auto rate = SyntheticTraceGenerator::TrueRate(config).value();
  // Hour 12 of day 0 (weekday) vs day 5 (weekend).
  EXPECT_NEAR(rate.At(12.0) * 0.5, rate.At(5.0 * 24.0 + 12.0), 1e-9);
}

TEST(SyntheticTraceTest, DiurnalPeakAtConfiguredHour) {
  SyntheticTraceConfig config = SmallConfig();
  config.weekly_wobble = 0.0;
  config.diurnal_peak_hour = 14.0;
  auto rate = SyntheticTraceGenerator::TrueRate(config).value();
  // Rate at the peak hour should exceed the rate 12h away.
  EXPECT_GT(rate.At(14.0), rate.At(2.0));
}

TEST(SyntheticTraceTest, SpecialDayScalesThatDayOnly) {
  SyntheticTraceConfig config = SmallConfig();
  config.num_weeks = 1;
  config.special_day = 2;
  config.special_day_factor = 0.5;
  SyntheticTraceConfig base = config;
  base.special_day = -1;
  auto with = SyntheticTraceGenerator::TrueRate(config).value();
  auto without = SyntheticTraceGenerator::TrueRate(base).value();
  EXPECT_NEAR(with.At(2.0 * 24.0 + 5.0), 0.5 * without.At(2.0 * 24.0 + 5.0), 1e-9);
  EXPECT_NEAR(with.At(1.0 * 24.0 + 5.0), without.At(1.0 * 24.0 + 5.0), 1e-9);
}

TEST(SyntheticTraceTest, GeneratedCountsMatchRate) {
  SyntheticTraceConfig config = SmallConfig();
  Rng rng(10);
  auto rate = SyntheticTraceGenerator::TrueRate(config).value();
  auto trace = SyntheticTraceGenerator::Generate(config, rng).value();
  ASSERT_EQ(trace.counts.size(), rate.rates().size());
  // Total counts ~ integral of the rate (Poisson, sd = sqrt(mean)).
  const double expected = rate.Integrate(0.0, rate.span_hours()).value();
  EXPECT_NEAR(static_cast<double>(trace.total()), expected,
              6.0 * std::sqrt(expected));
}

TEST(SyntheticTraceTest, WeeklyPeriodicityVisibleInTrace) {
  // Correlation between week 1 and week 2 bucket counts should be strong.
  SyntheticTraceConfig config;
  config.num_weeks = 2;
  config.bucket_minutes = 60;
  config.base_rate_per_hour = 2000.0;
  Rng rng(11);
  auto trace = SyntheticTraceGenerator::Generate(config, rng).value();
  const size_t week = 7 * 24;
  double num = 0.0, da = 0.0, db = 0.0, ma = 0.0, mb = 0.0;
  for (size_t i = 0; i < week; ++i) {
    ma += static_cast<double>(trace.counts[i]);
    mb += static_cast<double>(trace.counts[i + week]);
  }
  ma /= week;
  mb /= week;
  for (size_t i = 0; i < week; ++i) {
    const double a = static_cast<double>(trace.counts[i]) - ma;
    const double b = static_cast<double>(trace.counts[i + week]) - mb;
    num += a * b;
    da += a * a;
    db += b * b;
  }
  EXPECT_GT(num / std::sqrt(da * db), 0.9);
}

}  // namespace
}  // namespace crowdprice::arrival
