#include "stats/convex_hull.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace crowdprice::stats {
namespace {

TEST(LowerConvexHullTest, EmptyErrors) {
  EXPECT_TRUE(LowerConvexHull({}).status().IsInvalidArgument());
}

TEST(LowerConvexHullTest, NonFiniteErrors) {
  EXPECT_TRUE(LowerConvexHull({{0.0, std::nan("")}}).status().IsInvalidArgument());
  EXPECT_TRUE(LowerConvexHull({{INFINITY, 0.0}}).status().IsInvalidArgument());
}

TEST(LowerConvexHullTest, SinglePoint) {
  auto hull = LowerConvexHull({{1.0, 2.0}});
  ASSERT_TRUE(hull.ok());
  ASSERT_EQ(hull->size(), 1u);
  EXPECT_DOUBLE_EQ((*hull)[0].x, 1.0);
}

TEST(LowerConvexHullTest, TwoPoints) {
  auto hull = LowerConvexHull({{2.0, 1.0}, {0.0, 5.0}});
  ASSERT_TRUE(hull.ok());
  ASSERT_EQ(hull->size(), 2u);
  EXPECT_DOUBLE_EQ((*hull)[0].x, 0.0);
  EXPECT_DOUBLE_EQ((*hull)[1].x, 2.0);
}

TEST(LowerConvexHullTest, DropsInteriorPoint) {
  // (1, 10) lies above the chord from (0,0) to (2,0).
  auto hull = LowerConvexHull({{0.0, 0.0}, {1.0, 10.0}, {2.0, 0.0}});
  ASSERT_TRUE(hull.ok());
  ASSERT_EQ(hull->size(), 2u);
}

TEST(LowerConvexHullTest, KeepsPointBelowChord) {
  auto hull = LowerConvexHull({{0.0, 0.0}, {1.0, -5.0}, {2.0, 0.0}});
  ASSERT_TRUE(hull.ok());
  ASSERT_EQ(hull->size(), 3u);
  EXPECT_DOUBLE_EQ((*hull)[1].y, -5.0);
}

TEST(LowerConvexHullTest, CollinearInteriorDropped) {
  auto hull = LowerConvexHull({{0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}});
  ASSERT_TRUE(hull.ok());
  ASSERT_EQ(hull->size(), 2u);
}

TEST(LowerConvexHullTest, DuplicateXKeepsLowestY) {
  auto hull = LowerConvexHull({{1.0, 5.0}, {1.0, 2.0}, {0.0, 0.0}, {2.0, 0.0}});
  ASSERT_TRUE(hull.ok());
  for (const auto& p : *hull) {
    if (p.x == 1.0) {
      FAIL() << "interior duplicate-x point should have been dropped";
    }
  }
}

TEST(LowerConvexHullTest, ConvexDecreasingCurveKeptEntirely) {
  // 1/p(c) for increasing p is convex decreasing here: all points on hull.
  std::vector<Point2> pts;
  for (int c = 0; c <= 10; ++c) {
    pts.push_back({static_cast<double>(c), std::exp(-0.3 * c) * 100.0});
  }
  auto hull = LowerConvexHull(pts);
  ASSERT_TRUE(hull.ok());
  EXPECT_EQ(hull->size(), pts.size());
}

TEST(LowerConvexHullTest, IndicesMatchPoints) {
  std::vector<Point2> pts{{3.0, 1.0}, {0.0, 4.0}, {1.0, 0.5}, {2.0, 3.0}};
  auto idx = LowerConvexHullIndices(pts);
  auto hull = LowerConvexHull(pts);
  ASSERT_TRUE(idx.ok());
  ASSERT_TRUE(hull.ok());
  ASSERT_EQ(idx->size(), hull->size());
  for (size_t i = 0; i < idx->size(); ++i) {
    EXPECT_DOUBLE_EQ(pts[(*idx)[i]].x, (*hull)[i].x);
    EXPECT_DOUBLE_EQ(pts[(*idx)[i]].y, (*hull)[i].y);
  }
}

// Property: every input point lies on or above the hull's piecewise-linear
// interpolation, and hull vertices are increasing in x.
TEST(LowerConvexHullTest, RandomPointsPropertyCheck) {
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Point2> pts;
    const int n = static_cast<int>(rng.UniformInt(3, 60));
    for (int i = 0; i < n; ++i) {
      pts.push_back({rng.NextDouble() * 100.0, rng.NextDouble() * 100.0});
    }
    auto hull_r = LowerConvexHull(pts);
    ASSERT_TRUE(hull_r.ok());
    const auto& hull = *hull_r;
    for (size_t i = 1; i < hull.size(); ++i) {
      ASSERT_GT(hull[i].x, hull[i - 1].x);
    }
    auto hull_y = [&](double x) {
      if (x <= hull.front().x) return hull.front().y;
      if (x >= hull.back().x) return hull.back().y;
      for (size_t i = 1; i < hull.size(); ++i) {
        if (x <= hull[i].x) {
          const double f = (x - hull[i - 1].x) / (hull[i].x - hull[i - 1].x);
          return hull[i - 1].y + f * (hull[i].y - hull[i - 1].y);
        }
      }
      return hull.back().y;
    };
    for (const auto& p : pts) {
      if (p.x < hull.front().x || p.x > hull.back().x) continue;
      ASSERT_GE(p.y, hull_y(p.x) - 1e-9);
    }
  }
}

}  // namespace
}  // namespace crowdprice::stats
