// PricingClient resilience: the transport layer must degrade to clean
// Status errors -- never a hang, never UB -- when the socket misbehaves.
// A trickle proxy forwards traffic a few bytes per syscall over tiny
// kernel buffers, forcing short reads and throttled writes on every
// frame; a mid-response cut simulates a server dying with a batch in
// flight; a dead port is Unavailable at Connect; and Reconnect() rides
// one client object across a server restart on the same port.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/select.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "choice/acceptance.h"
#include "engine/engine.h"
#include "net/client.h"
#include "net/server.h"
#include "serving/campaign_shard_map.h"

namespace crowdprice::net {
namespace {

engine::PolicyArtifact SmallDeadlineArtifact() {
  engine::DeadlineDpSpec spec;
  spec.problem.num_tasks = 20;
  spec.problem.num_intervals = 8;
  spec.problem.penalty_cents = 150.0;
  spec.interval_lambdas.assign(8, 60.0);
  spec.actions = pricing::ActionSet::FromPriceGrid(
                     30, choice::LogitAcceptance::Paper2014())
                     .value();
  return engine::Engine::Solve(spec).value();
}

serving::CampaignLimits SmallLimits() {
  serving::CampaignLimits limits;
  limits.total_tasks = 20;
  limits.deadline_hours = 8.0;
  return limits;
}

/// Reserves a TCP port by binding an ephemeral socket and closing it.
/// The port is very likely still free moments later in a test container.
uint16_t ReserveLoopbackPort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

/// A single-connection TCP proxy that forwards at most `chunk` bytes per
/// syscall in each direction over deliberately tiny kernel buffers, so
/// the client's SendAll/RecvAll loops see short reads and throttled
/// writes on every frame. With `cut_client_after >= 0` the proxy closes
/// both sides after forwarding that many response bytes to the client --
/// a server dying mid-batch, as observed from the client's socket.
class TrickleProxy {
 public:
  TrickleProxy(uint16_t backend_port, int chunk, long cut_client_after = -1,
               int response_delay_ms = 0)
      : backend_port_(backend_port),
        chunk_(chunk),
        cut_client_after_(cut_client_after),
        response_delay_ms_(response_delay_ms) {}

  ~TrickleProxy() { Stop(); }

  bool Start() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return false;
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    // Tiny buffers (the kernel clamps to its floor) keep the client's
    // writes from completing in one gulp even for large frames.
    const int small = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_RCVBUF, &small, sizeof(small));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 1) != 0) {
      ::close(listen_fd_);
      return false;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    pump_ = std::thread([this] { Pump(); });
    return true;
  }

  void Stop() {
    stop_.store(true);
    if (listen_fd_ >= 0) {
      ::shutdown(listen_fd_, SHUT_RDWR);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    if (pump_.joinable()) pump_.join();
  }

  uint16_t port() const { return port_; }

 private:
  static bool SendAll(int fd, const char* data, size_t size) {
    size_t sent = 0;
    while (sent < size) {
      const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  void Pump() {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) return;
    const int backend = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(backend_port_);
    if (backend < 0 ||
        ::connect(backend, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(client);
      if (backend >= 0) ::close(backend);
      return;
    }

    long to_client = 0;
    std::vector<char> buffer(static_cast<size_t>(chunk_));
    while (!stop_.load()) {
      fd_set readable;
      FD_ZERO(&readable);
      FD_SET(client, &readable);
      FD_SET(backend, &readable);
      timeval tv{};
      tv.tv_usec = 100 * 1000;  // Re-check the stop flag every 100ms.
      const int ready =
          ::select(std::max(client, backend) + 1, &readable, nullptr,
                   nullptr, &tv);
      if (ready < 0) break;
      if (ready == 0) continue;
      if (FD_ISSET(client, &readable)) {
        const ssize_t n = ::recv(client, buffer.data(), buffer.size(), 0);
        if (n <= 0 || !SendAll(backend, buffer.data(),
                               static_cast<size_t>(n))) {
          break;
        }
      }
      if (FD_ISSET(backend, &readable)) {
        ssize_t n = ::recv(backend, buffer.data(), buffer.size(), 0);
        if (n <= 0) break;
        if (cut_client_after_ >= 0 && to_client + n > cut_client_after_) {
          // Forward the final allowed bytes, then die mid-frame.
          SendAll(client, buffer.data(),
                  static_cast<size_t>(cut_client_after_ - to_client));
          break;
        }
        if (!SendAll(client, buffer.data(), static_cast<size_t>(n))) break;
        to_client += n;
        if (response_delay_ms_ > 0) {
          // A slow-but-alive server: every response chunk arrives after
          // a pause shorter than the client's idle deadline.
          std::this_thread::sleep_for(
              std::chrono::milliseconds(response_delay_ms_));
        }
      }
    }
    ::close(client);
    ::close(backend);
  }

  uint16_t backend_port_;
  int chunk_;
  long cut_client_after_;
  int response_delay_ms_;
  std::atomic<bool> stop_{false};
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread pump_;
};

TEST(ClientResilienceTest, LargeBatchSurvivesThrottledSocket) {
  auto map = serving::CampaignShardMap::Create(2);
  ASSERT_TRUE(map.ok());
  ServerOptions options;
  options.port = 0;
  options.num_workers = 2;
  auto server = PricingServer::Create(&map.value(), options);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server->Start().ok());

  // Every byte of every frame -- the admit's artifact payload included --
  // crosses the proxy at most three bytes per syscall.
  TrickleProxy proxy(server->port(), /*chunk=*/3);
  ASSERT_TRUE(proxy.Start());
  auto client = PricingClient::Connect("127.0.0.1", proxy.port());
  ASSERT_TRUE(client.ok());

  const auto artifact =
      std::make_shared<const engine::PolicyArtifact>(SmallDeadlineArtifact());
  const auto id = client->AdmitShared(artifact, SmallLimits());
  ASSERT_TRUE(id.ok()) << id.status();

  std::vector<serving::DecideRequest> batch;
  for (int i = 0; i < 96; ++i) {
    batch.push_back(
        serving::DecideRequest::Single(*id, 0.25 * (i % 8), 1 + i % 20));
  }
  const auto responses = client->DecideBatch(batch);
  ASSERT_TRUE(responses.ok()) << responses.status();
  ASSERT_EQ(responses->size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE((*responses)[i].status.ok()) << (*responses)[i].status;
    const auto direct = map->Decide(*id, batch[i].request);
    ASSERT_TRUE(direct.ok());
    ASSERT_EQ((*responses)[i].sheet.offers.size(), direct->offers.size());
    for (size_t o = 0; o < direct->offers.size(); ++o) {
      EXPECT_EQ((*responses)[i].sheet.offers[o].per_task_reward_cents,
                direct->offers[o].per_task_reward_cents);
    }
  }
  proxy.Stop();
  ASSERT_TRUE(server->Stop().ok());
}

TEST(ClientResilienceTest, ServerGoneMidBatchIsUnavailableNotAHang) {
  auto map = serving::CampaignShardMap::Create(2);
  ASSERT_TRUE(map.ok());
  ServerOptions options;
  options.port = 0;
  options.num_workers = 2;
  auto server = PricingServer::Create(&map.value(), options);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server->Start().ok());

  // Admit over a direct connection; the campaign is live server-side.
  auto direct = PricingClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(direct.ok());
  const auto artifact =
      std::make_shared<const engine::PolicyArtifact>(SmallDeadlineArtifact());
  const auto id = direct->AdmitShared(artifact, SmallLimits());
  ASSERT_TRUE(id.ok());

  // The proxy dies 20 bytes into the response: a full header promising a
  // payload that never arrives.
  TrickleProxy proxy(server->port(), /*chunk=*/5, /*cut_client_after=*/20);
  ASSERT_TRUE(proxy.Start());
  auto client = PricingClient::Connect("127.0.0.1", proxy.port());
  ASSERT_TRUE(client.ok());

  std::vector<serving::DecideRequest> batch;
  for (int i = 0; i < 32; ++i) {
    batch.push_back(serving::DecideRequest::Single(*id, 1.0, 5));
  }
  const auto start = std::chrono::steady_clock::now();
  const auto responses = client->DecideBatch(batch);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(responses.ok());
  EXPECT_TRUE(responses.status().IsUnavailable()) << responses.status();
  // "No hang": the truncation is detected the moment the socket closes.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            8);

  // The connection is dead but the object is healthy: further calls are
  // clean errors too.
  EXPECT_FALSE(client->Ping().ok());
  proxy.Stop();
  ASSERT_TRUE(server->Stop().ok());
}

TEST(ClientResilienceTest, ConnectionRefusedIsUnavailable) {
  const uint16_t dead_port = ReserveLoopbackPort();
  const auto client = PricingClient::Connect("127.0.0.1", dead_port);
  ASSERT_FALSE(client.ok());
  EXPECT_TRUE(client.status().IsUnavailable()) << client.status();
}

TEST(ClientResilienceTest, BlackholedConnectIsUnavailableAtTheDeadline) {
  // A listener whose accept queue is full silently drops further SYNs
  // (Linux default), so the dial gets no answer at all -- a local
  // blackhole. (An unrouted remote address is no good here: sandboxed
  // environments may intercept it.) Before the non-blocking connect,
  // this dial blocked for the kernel's SYN-retry horizon (minutes);
  // now only connect_timeout_ms ends it.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 0), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  // Fill the accept queue with connections nobody will ever accept.
  std::vector<int> fillers;
  for (int i = 0; i < 8; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    ASSERT_GE(fd, 0);
    ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    fillers.push_back(fd);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  ClientOptions options;
  options.connect_timeout_ms = 250;
  const auto start = std::chrono::steady_clock::now();
  const auto client = PricingClient::Connect(
      "127.0.0.1", ntohs(addr.sin_port), options);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(client.ok());
  EXPECT_TRUE(client.status().IsUnavailable()) << client.status();
  // Generous bound: the point is "the deadline, not the SYN horizon".
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            10);
  for (const int fd : fillers) ::close(fd);
  ::close(listener);
}

/// Accepts one connection, reads and discards everything, never writes
/// a byte, and keeps the socket open -- a wedged server, as a probe
/// sees it.
class WedgedServer {
 public:
  ~WedgedServer() { Stop(); }

  bool Start() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 1) != 0) {
      ::close(listen_fd_);
      return false;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    drain_ = std::thread([this] {
      const int conn = ::accept(listen_fd_, nullptr, nullptr);
      if (conn < 0) return;
      char sink[4096];
      while (::recv(conn, sink, sizeof(sink), 0) > 0) {
      }
      ::close(conn);
    });
    return true;
  }

  void Stop() {
    if (listen_fd_ >= 0) {
      ::shutdown(listen_fd_, SHUT_RDWR);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    if (drain_.joinable()) drain_.join();
  }

  uint16_t port() const { return port_; }

 private:
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread drain_;
};

TEST(ClientResilienceTest, WedgedServerHitsTheIdleDeadlineNotForever) {
  // Regression: the recv loop had no deadline, so a server that
  // accepted a probe and then never answered wedged the caller (the
  // router's probe thread) indefinitely.
  WedgedServer wedged;
  ASSERT_TRUE(wedged.Start());
  ClientOptions options;
  options.io_timeout_ms = 300;
  auto client = PricingClient::Connect("127.0.0.1", wedged.port(), options);
  ASSERT_TRUE(client.ok()) << client.status();
  const auto start = std::chrono::steady_clock::now();
  const Status pong = client->Ping();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(pong.ok());
  EXPECT_TRUE(pong.IsUnavailable()) << pong;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            10);
}

TEST(ClientResilienceTest, TricklingButAliveIsNotATimeout) {
  // The flip side of the idle deadline: a server whose response arrives
  // one byte per pause -- each pause shorter than io_timeout_ms, the
  // whole response far longer -- must succeed. The deadline is idle
  // time, not call time.
  auto map = serving::CampaignShardMap::Create(2);
  ASSERT_TRUE(map.ok());
  ServerOptions options;
  options.port = 0;
  options.num_workers = 2;
  auto server = PricingServer::Create(&map.value(), options);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server->Start().ok());

  TrickleProxy proxy(server->port(), /*chunk=*/1, /*cut_client_after=*/-1,
                     /*response_delay_ms=*/60);
  ASSERT_TRUE(proxy.Start());
  ClientOptions client_options;
  client_options.io_timeout_ms = 500;
  auto client =
      PricingClient::Connect("127.0.0.1", proxy.port(), client_options);
  ASSERT_TRUE(client.ok()) << client.status();
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(client->Ping().ok());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // The pong (header + payload) really did trickle: the call outlived
  // several idle deadlines' worth of wall clock.
  EXPECT_GT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            500);
  proxy.Stop();
  ASSERT_TRUE(server->Stop().ok());
}

TEST(ClientResilienceTest, StopUnderLoadNeverMissesItsWakeup) {
  // Regression for the ignored eventfd write: under sustained load,
  // Stop()'s wake could in principle be dropped, leaving Stop to ride
  // poll timeouts. Stop must return promptly -- bounded by the drain
  // timeout plus scheduling slack -- across repeated start/stop cycles
  // with traffic in flight.
  auto map = serving::CampaignShardMap::Create(2);
  ASSERT_TRUE(map.ok());
  ServerOptions options;
  options.port = 0;
  options.num_workers = 2;
  options.drain_timeout_ms = 2000;
  auto server = PricingServer::Create(&map.value(), options);
  ASSERT_TRUE(server.ok());

  for (int cycle = 0; cycle < 3; ++cycle) {
    ASSERT_TRUE(server->Start().ok());
    std::atomic<bool> stop{false};
    std::vector<std::thread> load;
    for (int t = 0; t < 4; ++t) {
      load.emplace_back([&stop, port = server->port()] {
        ClientOptions client_options;
        client_options.connect_timeout_ms = 2000;
        client_options.io_timeout_ms = 2000;
        auto client = PricingClient::Connect("127.0.0.1", port,
                                             client_options);
        while (!stop.load(std::memory_order_acquire)) {
          if (!client.ok() || !client->Ping().ok()) break;
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const auto start = std::chrono::steady_clock::now();
    ASSERT_TRUE(server->Stop().ok());
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                  .count(),
              options.drain_timeout_ms + 8000)
        << "cycle " << cycle;
    stop.store(true, std::memory_order_release);
    for (std::thread& thread : load) thread.join();
  }
}

TEST(ClientResilienceTest, ReconnectRidesOutAServerRestart) {
  auto map = serving::CampaignShardMap::Create(2);
  ASSERT_TRUE(map.ok());
  ServerOptions options;
  options.port = ReserveLoopbackPort();  // Fixed, so a restart reuses it.
  options.num_workers = 2;
  auto server = PricingServer::Create(&map.value(), options);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server->Start().ok());

  auto client = PricingClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  const auto artifact =
      std::make_shared<const engine::PolicyArtifact>(SmallDeadlineArtifact());
  const auto id = client->AdmitShared(artifact, SmallLimits());
  ASSERT_TRUE(id.ok());

  // The server goes away: in-flight calls fail Unavailable, Reconnect
  // fails Unavailable (refused), and both may be retried.
  ASSERT_TRUE(server->Stop().ok());
  EXPECT_TRUE(client->Ping().IsUnavailable());
  EXPECT_TRUE(client->Reconnect().IsUnavailable());
  EXPECT_FALSE(client->connected());

  // The server returns on the same port (the map kept every campaign);
  // one Reconnect makes the same client object whole again.
  ASSERT_TRUE(server->Start().ok());
  ASSERT_TRUE(client->Reconnect().ok());
  EXPECT_TRUE(client->connected());
  EXPECT_TRUE(client->Ping().ok());
  const auto sheet =
      client->Decide(*id, market::DecisionRequest::Single(1.0, 5));
  ASSERT_TRUE(sheet.ok()) << sheet.status();
  EXPECT_FALSE(sheet->offers.empty());

  // An explicit Close is also recoverable -- Reconnect is idempotent
  // over how the connection was lost.
  client->Close();
  EXPECT_FALSE(client->connected());
  EXPECT_TRUE(client->Ping().IsFailedPrecondition());
  ASSERT_TRUE(client->Reconnect().ok());
  EXPECT_TRUE(client->Ping().ok());
  ASSERT_TRUE(server->Stop().ok());
}

}  // namespace
}  // namespace crowdprice::net
