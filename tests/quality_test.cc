#include "pricing/quality.h"

#include <cmath>

#include <gtest/gtest.h>

#include "choice/acceptance.h"
#include "pricing/deadline_dp.h"
#include "util/rng.h"

namespace crowdprice::pricing {
namespace {

TEST(PosteriorProbabilityTest, Validation) {
  EXPECT_TRUE(PosteriorProbability(0.0, 0.8, 1, 1).status().IsInvalidArgument());
  EXPECT_TRUE(PosteriorProbability(1.0, 0.8, 1, 1).status().IsInvalidArgument());
  EXPECT_TRUE(PosteriorProbability(0.5, 0.5, 1, 1).status().IsInvalidArgument());
  EXPECT_TRUE(PosteriorProbability(0.5, 1.0, 1, 1).status().IsInvalidArgument());
  EXPECT_TRUE(PosteriorProbability(0.5, 0.8, -1, 0).status().IsInvalidArgument());
}

TEST(PosteriorProbabilityTest, SingleAnswer) {
  // Uniform prior, one Yes from a 0.6-accurate worker => posterior 0.6.
  EXPECT_NEAR(PosteriorProbability(0.5, 0.6, 0, 1).value(), 0.6, 1e-12);
  EXPECT_NEAR(PosteriorProbability(0.5, 0.6, 1, 0).value(), 0.4, 1e-12);
}

TEST(PosteriorProbabilityTest, SymmetryAndCancellation) {
  // Balanced evidence returns the prior.
  EXPECT_NEAR(PosteriorProbability(0.3, 0.8, 2, 2).value(), 0.3, 1e-12);
  // Swapping yes/no flips around the uniform prior.
  const double p = PosteriorProbability(0.5, 0.75, 1, 4).value();
  const double q = PosteriorProbability(0.5, 0.75, 4, 1).value();
  EXPECT_NEAR(p + q, 1.0, 1e-12);
}

TEST(PosteriorProbabilityTest, ManyAnswersSaturate) {
  EXPECT_GT(PosteriorProbability(0.5, 0.8, 0, 20).value(), 1.0 - 1e-9);
  EXPECT_LT(PosteriorProbability(0.5, 0.8, 20, 0).value(), 1e-9);
}

TEST(MajorityVoteTest, Validation) {
  EXPECT_TRUE(QualityStrategy::MajorityVote(0).status().IsInvalidArgument());
  EXPECT_TRUE(QualityStrategy::MajorityVote(4).status().IsInvalidArgument());
  EXPECT_TRUE(QualityStrategy::MajorityVote(-3).status().IsInvalidArgument());
  EXPECT_TRUE(QualityStrategy::MajorityVote(3).ok());
}

TEST(MajorityVoteTest, DecisionsBestOfThree) {
  auto s = QualityStrategy::MajorityVote(3).value();
  EXPECT_EQ(s.DecisionAt(0, 0).value(), QcDecision::kContinue);
  EXPECT_EQ(s.DecisionAt(1, 0).value(), QcDecision::kContinue);
  EXPECT_EQ(s.DecisionAt(1, 1).value(), QcDecision::kContinue);
  EXPECT_EQ(s.DecisionAt(0, 2).value(), QcDecision::kPass);
  EXPECT_EQ(s.DecisionAt(2, 0).value(), QcDecision::kFail);
  EXPECT_EQ(s.DecisionAt(1, 2).value(), QcDecision::kPass);
  EXPECT_EQ(s.DecisionAt(2, 1).value(), QcDecision::kFail);
  EXPECT_TRUE(s.DecisionAt(2, 2).status().IsOutOfRange());
  EXPECT_TRUE(s.DecisionAt(-1, 0).status().IsOutOfRange());
}

TEST(MajorityVoteTest, WorstCaseCounts) {
  auto s = QualityStrategy::MajorityVote(3).value();
  EXPECT_EQ(s.WorstCaseAdditionalQuestions(0, 0).value(), 3);
  EXPECT_EQ(s.WorstCaseAdditionalQuestions(1, 0).value(), 2);
  EXPECT_EQ(s.WorstCaseAdditionalQuestions(1, 1).value(), 1);
  EXPECT_EQ(s.WorstCaseAdditionalQuestions(0, 2).value(), 0);
  auto s5 = QualityStrategy::MajorityVote(5).value();
  EXPECT_EQ(s5.WorstCaseAdditionalQuestions(0, 0).value(), 5);
  EXPECT_EQ(s5.WorstCaseAdditionalQuestions(2, 2).value(), 1);
}

TEST(MajorityVoteTest, ExpectedQuestionsBestOfThree) {
  auto s = QualityStrategy::MajorityVote(3).value();
  // Deterministic yes: (0,0)->(0,1)->(0,2): 2 questions.
  EXPECT_NEAR(s.ExpectedQuestions(1.0).value(), 2.0, 1e-12);
  EXPECT_NEAR(s.ExpectedQuestions(0.0).value(), 2.0, 1e-12);
  // Fair coin: stop at 2 with prob 1/2, else 3 => 2.5.
  EXPECT_NEAR(s.ExpectedQuestions(0.5).value(), 2.5, 1e-12);
  EXPECT_TRUE(s.ExpectedQuestions(1.5).status().IsInvalidArgument());
}

TEST(PosteriorThresholdTest, Validation) {
  EXPECT_TRUE(QualityStrategy::PosteriorThreshold(0, 0.5, 0.8, 0.9, 0.1)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(QualityStrategy::PosteriorThreshold(5, 0.5, 0.8, 0.1, 0.9)
                  .status()
                  .IsInvalidArgument());
}

TEST(PosteriorThresholdTest, TerminatesAtCapAndThresholds) {
  auto s = QualityStrategy::PosteriorThreshold(6, 0.5, 0.8, 0.95, 0.05).value();
  // Everything at the cap is terminal.
  for (int x = 0; x <= 6; ++x) {
    EXPECT_NE(s.DecisionAt(x, 6 - x).value(), QcDecision::kContinue);
  }
  // Strong early evidence terminates before the cap: 3 yes, 0 no has
  // posterior 0.8^3 / (0.8^3 + 0.2^3) ~ 0.985 > 0.95.
  EXPECT_EQ(s.DecisionAt(0, 3).value(), QcDecision::kPass);
  EXPECT_EQ(s.DecisionAt(3, 0).value(), QcDecision::kFail);
  EXPECT_EQ(s.DecisionAt(0, 0).value(), QcDecision::kContinue);
  EXPECT_EQ(s.WorstCaseAdditionalQuestions(0, 3).value(), 0);
  EXPECT_GT(s.WorstCaseAdditionalQuestions(0, 0).value(), 0);
}

class MajorityVoteSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(MajorityVoteSweepTest, StructuralInvariants) {
  const int k = GetParam();
  auto s = QualityStrategy::MajorityVote(k).value();
  const int majority = (k + 1) / 2;
  // Worst case from the origin is the full budget; expected questions can
  // never exceed it and is at least the majority threshold.
  EXPECT_EQ(s.WorstCaseAdditionalQuestions(0, 0).value(), k);
  for (double p : {0.0, 0.3, 0.5, 0.8, 1.0}) {
    const double eq = s.ExpectedQuestions(p).value();
    EXPECT_GE(eq, static_cast<double>(majority)) << "p = " << p;
    EXPECT_LE(eq, static_cast<double>(k)) << "p = " << p;
  }
  // Deterministic answers stop at exactly the majority count.
  EXPECT_NEAR(s.ExpectedQuestions(1.0).value(), majority, 1e-12);
  // The fair coin maximizes dithering: expected questions peak at p = 0.5.
  EXPECT_GE(s.ExpectedQuestions(0.5).value(),
            s.ExpectedQuestions(0.9).value() - 1e-12);
  // Every terminal decision is reachable and consistent: y >= majority is
  // always a Pass, x >= majority always a Fail.
  for (int x = 0; x <= k; ++x) {
    for (int y = 0; x + y <= k; ++y) {
      const QcDecision d = s.DecisionAt(x, y).value();
      if (y >= majority) {
        EXPECT_EQ(d, QcDecision::kPass) << x << "," << y;
      } else if (x >= majority) {
        EXPECT_EQ(d, QcDecision::kFail) << x << "," << y;
      } else {
        EXPECT_EQ(d, QcDecision::kContinue) << x << "," << y;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(OddBudgets, MajorityVoteSweepTest,
                         ::testing::Values(1, 3, 5, 7, 9));

TEST(PosteriorIntervalCompressionTest, Validation) {
  auto s = QualityStrategy::MajorityVote(3).value();
  EXPECT_TRUE(PosteriorIntervalCompression::Create(s, 0.5, 0.8, 0.0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(PosteriorIntervalCompression::Create(s, 0.5, 0.8, 1.5)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(PosteriorIntervalCompression::Create(s, 0.5, 0.8, 0.1).ok());
}

TEST(PosteriorIntervalCompressionTest, BucketsFollowPosteriors) {
  auto s = QualityStrategy::MajorityVote(5).value();
  auto comp = PosteriorIntervalCompression::Create(s, 0.5, 0.8, 0.1).value();
  // Posterior depends only on yes - no; equal-difference points share a
  // bucket.
  EXPECT_EQ(comp.BucketOf(0, 1).value(), comp.BucketOf(1, 2).value());
  EXPECT_EQ(comp.BucketOf(1, 0).value(), comp.BucketOf(2, 1).value());
  // Strongly-positive evidence maps near the top bucket.
  EXPECT_GT(comp.BucketOf(0, 5).value(), comp.BucketOf(0, 0).value());
  EXPECT_LT(comp.BucketOf(5, 0).value(), comp.BucketOf(0, 0).value());
  EXPECT_TRUE(comp.BucketOf(6, 0).status().IsOutOfRange());
}

TEST(PosteriorIntervalCompressionTest, CompressesStateSpace) {
  // A 21-question strategy has 253 points but only ~43 distinct posterior
  // values (differences -21..21); coarse intervals compress far below that.
  auto s =
      QualityStrategy::PosteriorThreshold(21, 0.5, 0.75, 0.95, 0.05).value();
  auto comp = PosteriorIntervalCompression::Create(s, 0.5, 0.75, 0.05).value();
  EXPECT_EQ(comp.num_points(), 253);
  EXPECT_LE(comp.distinct_buckets(), 20);
  EXPECT_GE(comp.distinct_buckets(), 3);
}

TEST(PosteriorIntervalCompressionTest, ConvergesToExactDecisionsBelowCap) {
  // The §6 asymptotic claim: as a -> 0 the interval representation's
  // decisions match the exact posterior-threshold strategy at every
  // below-cap point.
  auto s = QualityStrategy::PosteriorThreshold(9, 0.4, 0.8, 0.9, 0.08).value();
  int mismatches_coarse = 0;
  for (double a : {0.25, 0.01}) {
    auto comp = PosteriorIntervalCompression::Create(s, 0.4, 0.8, a).value();
    int mismatches = 0;
    for (int sum = 0; sum < 9; ++sum) {
      for (int x = 0; x <= sum; ++x) {
        const int y = sum - x;
        if (comp.CompressedDecisionAt(x, y).value() !=
            s.DecisionAt(x, y).value()) {
          ++mismatches;
        }
      }
    }
    if (a == 0.25) {
      mismatches_coarse = mismatches;
    } else {
      EXPECT_EQ(mismatches, 0) << "fine intervals must be exact";
      EXPECT_LE(mismatches, mismatches_coarse);
    }
  }
}

TEST(SimulateQualityPricingTest, PlanSizeMismatchRejected) {
  auto acc = choice::LogitAcceptance::Paper2014();
  auto actions = ActionSet::FromPriceGrid(30, acc).value();
  auto strategy = QualityStrategy::MajorityVote(3).value();
  DeadlineProblem p;
  p.num_tasks = 10;  // should be num_items * wc(0,0) = 5 * 3 = 15
  p.num_intervals = 4;
  p.penalty_cents = 100.0;
  auto lambdas = std::vector<double>(4, 100.0);
  auto plan = SolveSimpleDp(p, lambdas, actions).value();
  std::vector<double> probs;
  for (const auto& a : plan.actions().actions()) probs.push_back(a.acceptance);
  Rng rng(1);
  auto result = SimulateQualityPricing(plan, strategy, 5, 0.5, 0.85, lambdas,
                                       probs, rng);
  EXPECT_TRUE(result.status().IsFailedPrecondition());
}

TEST(SimulateQualityPricingTest, DecidesItemsWithGenerousSupply) {
  auto acc = choice::LogitAcceptance::Paper2014();
  auto actions = ActionSet::FromPriceGrid(30, acc).value();
  auto strategy = QualityStrategy::MajorityVote(3).value();
  const int items = 20;
  DeadlineProblem p;
  p.num_tasks = items * 3;
  p.num_intervals = 8;
  p.penalty_cents = 400.0;
  // Enough workers to finish, but scarce enough that the zero price cannot
  // (p(0) ~ 7.4e-4 gives ~2 answers/interval, far below the ~60 needed), so
  // the policy must pay.
  auto lambdas = std::vector<double>(8, 3000.0);
  auto plan = SolveImprovedDp(p, lambdas, actions).value();
  std::vector<double> probs;
  for (const auto& a : plan.actions().actions()) probs.push_back(a.acceptance);
  Rng rng(2);
  auto result = SimulateQualityPricing(plan, strategy, items, 0.5, 0.9, lambdas,
                                       probs, rng)
                    .value();
  EXPECT_EQ(result.items_decided + result.items_undecided, items);
  EXPECT_GT(result.items_decided, items * 3 / 4);
  // 0.9-accurate workers with best-of-3: per-item correctness ~ 0.972.
  EXPECT_GT(static_cast<double>(result.correct_decisions) /
                std::max(1, result.items_decided),
            0.85);
  // Majority-of-3 consumes 2 or 3 answers per decided item.
  EXPECT_GE(result.answers_collected, result.items_decided * 2);
  EXPECT_GT(result.cost_cents, 0.0);
}

TEST(SimulateQualityPricingTest, StarvedMarketLeavesUndecided) {
  auto acc = choice::LogitAcceptance::Paper2014();
  auto actions = ActionSet::FromPriceGrid(30, acc).value();
  auto strategy = QualityStrategy::MajorityVote(3).value();
  const int items = 20;
  DeadlineProblem p;
  p.num_tasks = items * 3;
  p.num_intervals = 4;
  p.penalty_cents = 50.0;
  auto lambdas = std::vector<double>(4, 10.0);  // almost no workers
  auto plan = SolveSimpleDp(p, lambdas, actions).value();
  std::vector<double> probs;
  for (const auto& a : plan.actions().actions()) probs.push_back(a.acceptance);
  Rng rng(3);
  auto result = SimulateQualityPricing(plan, strategy, items, 0.5, 0.9, lambdas,
                                       probs, rng)
                    .value();
  EXPECT_GT(result.items_undecided, items / 2);
}

}  // namespace
}  // namespace crowdprice::pricing
