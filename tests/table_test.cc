#include "util/table.h"

#include <sstream>

#include <gtest/gtest.h>

#include "util/stringf.h"

namespace crowdprice {
namespace {

TEST(StringFTest, BasicFormatting) {
  EXPECT_EQ(StringF("n = %d", 42), "n = 42");
  EXPECT_EQ(StringF("%.2f%%", 33.333), "33.33%");
  EXPECT_EQ(StringF("%s-%s", "a", "b"), "a-b");
  EXPECT_EQ(StringF("empty"), "empty");
}

TEST(StringFTest, LongOutput) {
  const std::string big(500, 'x');
  EXPECT_EQ(StringF("%s!", big.c_str()).size(), 501u);
}

TEST(TableTest, RowArityChecked) {
  Table t({"a", "b"});
  EXPECT_TRUE(t.AddRow({"1", "2"}).ok());
  EXPECT_TRUE(t.AddRow({"1"}).IsInvalidArgument());
  EXPECT_TRUE(t.AddRow({"1", "2", "3"}).IsInvalidArgument());
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.num_columns(), 2u);
}

TEST(TableTest, NumericRows) {
  Table t({"x", "y"});
  ASSERT_TRUE(t.AddNumericRow({1.23456, 2.0}, 2).ok());
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("1.23"), std::string::npos);
  EXPECT_NE(os.str().find("2.00"), std::string::npos);
}

TEST(TableTest, PrintAligns) {
  Table t({"name", "value"});
  ASSERT_TRUE(t.AddRow({"tiny", "1"}).ok());
  ASSERT_TRUE(t.AddRow({"a-much-longer-name", "2"}).ok());
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
}

TEST(TableTest, CsvEscaping) {
  Table t({"a", "b"});
  ASSERT_TRUE(t.AddRow({"plain", "with,comma"}).ok());
  ASSERT_TRUE(t.AddRow({"with\"quote", "with\nnewline"}).ok());
  std::ostringstream os;
  t.WriteCsv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"with\"\"quote\""), std::string::npos);
  EXPECT_NE(out.find("\"with\nnewline\""), std::string::npos);
}

TEST(TableTest, CsvHeaderFirst) {
  Table t({"col1", "col2"});
  ASSERT_TRUE(t.AddRow({"x", "y"}).ok());
  std::ostringstream os;
  t.WriteCsv(os);
  EXPECT_EQ(os.str().substr(0, 10), "col1,col2\n");
}

}  // namespace
}  // namespace crowdprice
