#include "pricing/multitype.h"

#include <cmath>

#include <gtest/gtest.h>

#include "choice/acceptance.h"
#include "pricing/deadline_dp.h"

namespace crowdprice::pricing {
namespace {

JointLogitAcceptance SymmetricAcceptance() {
  return JointLogitAcceptance::Create(10.0, 1.0, 10.0, 1.0, 200.0).value();
}

MultiTypeProblem SmallProblem() {
  MultiTypeProblem p;
  p.num_tasks_1 = 6;
  p.num_tasks_2 = 6;
  p.num_intervals = 4;
  p.penalty_1_cents = 150.0;
  p.penalty_2_cents = 150.0;
  p.max_price_cents = 24;
  p.price_stride = 4;
  return p;
}

std::vector<double> Lambdas(int nt, double v) {
  return std::vector<double>(static_cast<size_t>(nt), v);
}

TEST(JointLogitAcceptanceTest, Validation) {
  EXPECT_TRUE(JointLogitAcceptance::Create(0.0, 0.0, 1.0, 0.0, 1.0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(JointLogitAcceptance::Create(1.0, 0.0, -1.0, 0.0, 1.0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(JointLogitAcceptance::Create(1.0, 0.0, 1.0, 0.0, 0.0)
                  .status()
                  .IsInvalidArgument());
}

TEST(JointLogitAcceptanceTest, ProbabilitiesWellFormed) {
  auto acc = SymmetricAcceptance();
  for (double c1 : {0.0, 10.0, 30.0}) {
    for (double c2 : {0.0, 10.0, 30.0}) {
      auto [p1, p2] = acc.ProbabilitiesAt(c1, c2);
      EXPECT_GT(p1, 0.0);
      EXPECT_GT(p2, 0.0);
      EXPECT_LT(p1 + p2, 1.0);
      if (c1 == c2) {
        EXPECT_NEAR(p1, p2, 1e-12);
      }
    }
  }
}

TEST(JointLogitAcceptanceTest, SubstitutionEffect) {
  // Raising our type-1 price draws workers away from type 2.
  auto acc = SymmetricAcceptance();
  auto [p1_lo, p2_lo] = acc.ProbabilitiesAt(10.0, 10.0);
  auto [p1_hi, p2_hi] = acc.ProbabilitiesAt(20.0, 10.0);
  EXPECT_GT(p1_hi, p1_lo);
  EXPECT_LT(p2_hi, p2_lo);
}

TEST(JointLogitAcceptanceTest, MatchesClosedForm) {
  auto acc = JointLogitAcceptance::Create(10.0, 0.5, 20.0, -0.5, 100.0).value();
  const double c1 = 15.0, c2 = 8.0;
  const double e1 = std::exp(c1 / 10.0 - 0.5);
  const double e2 = std::exp(c2 / 20.0 + 0.5);
  auto [p1, p2] = acc.ProbabilitiesAt(c1, c2);
  EXPECT_NEAR(p1, e1 / (e1 + e2 + 100.0), 1e-12);
  EXPECT_NEAR(p2, e2 / (e1 + e2 + 100.0), 1e-12);
}

TEST(MultiTypeProblemTest, Validation) {
  MultiTypeProblem p = SmallProblem();
  p.num_tasks_1 = 0;
  p.num_tasks_2 = 0;
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
  p = SmallProblem();
  p.price_stride = 0;
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
  p = SmallProblem();
  p.max_price_cents = 4096;
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
  EXPECT_TRUE(SmallProblem().Validate().ok());
}

TEST(SolveMultiTypeTest, LambdaCountMismatchRejected) {
  EXPECT_TRUE(SolveMultiType(SmallProblem(), Lambdas(3, 30.0),
                             SymmetricAcceptance())
                  .status()
                  .IsInvalidArgument());
}

TEST(SolveMultiTypeTest, MoreWorkersNeverCostMore) {
  auto sparse =
      SolveMultiType(SmallProblem(), Lambdas(4, 20.0), SymmetricAcceptance())
          .value();
  auto busy =
      SolveMultiType(SmallProblem(), Lambdas(4, 80.0), SymmetricAcceptance())
          .value();
  EXPECT_LE(busy.TotalObjective(), sparse.TotalObjective() + 1e-9);
}

TEST(SolveMultiTypeTest, TerminalPenalties) {
  auto plan =
      SolveMultiType(SmallProblem(), Lambdas(4, 30.0), SymmetricAcceptance())
          .value();
  EXPECT_DOUBLE_EQ(plan.OptAt(3, 2, 4).value(), 3 * 150.0 + 2 * 150.0);
  EXPECT_DOUBLE_EQ(plan.OptAt(0, 0, 4).value(), 0.0);
}

TEST(SolveMultiTypeTest, ZeroLambdaGivesPurePenalty) {
  auto plan =
      SolveMultiType(SmallProblem(), Lambdas(4, 0.0), SymmetricAcceptance())
          .value();
  EXPECT_NEAR(plan.OptAt(4, 5, 0).value(), 4 * 150.0 + 5 * 150.0, 1e-9);
}

TEST(SolveMultiTypeTest, SymmetricProblemHasSymmetricSolution) {
  auto plan =
      SolveMultiType(SmallProblem(), Lambdas(4, 40.0), SymmetricAcceptance())
          .value();
  for (int n1 = 0; n1 <= 6; ++n1) {
    for (int n2 = 0; n2 <= 6; ++n2) {
      ASSERT_NEAR(plan.OptAt(n1, n2, 0).value(), plan.OptAt(n2, n1, 0).value(),
                  1e-9)
          << n1 << "," << n2;
      if (n1 + n2 > 0) {
        auto [c1, c2] = plan.PricesAt(n1, n2, 0).value();
        auto [d1, d2] = plan.PricesAt(n2, n1, 0).value();
        EXPECT_EQ(c1, d2);
        EXPECT_EQ(c2, d1);
      }
    }
  }
}

TEST(SolveMultiTypeTest, OptMonotoneInEachType) {
  auto plan =
      SolveMultiType(SmallProblem(), Lambdas(4, 40.0), SymmetricAcceptance())
          .value();
  for (int n1 = 1; n1 <= 6; ++n1) {
    for (int n2 = 0; n2 <= 6; ++n2) {
      EXPECT_LE(plan.OptAt(n1 - 1, n2, 0).value(),
                plan.OptAt(n1, n2, 0).value() + 1e-9);
    }
  }
}

TEST(SolveMultiTypeTest, DegenerateSecondTypeMatchesSingleTypeDp) {
  // With n2 = 0 the optimizer should keep c2 at the minimum (any type-2
  // utility only steals workers), reducing to a single-type problem with
  // competition M' = M + exp(-b2).
  MultiTypeProblem p = SmallProblem();
  p.num_tasks_2 = 0;
  p.price_stride = 1;
  p.max_price_cents = 20;
  auto joint = SymmetricAcceptance();
  auto plan = SolveMultiType(p, Lambdas(4, 40.0), joint).value();

  DeadlineProblem single;
  single.num_tasks = p.num_tasks_1;
  single.num_intervals = p.num_intervals;
  single.penalty_cents = p.penalty_1_cents;
  const double m_eff = 200.0 + std::exp(-1.0 * 10.0 / 10.0 * 0.0 - 1.0);
  // z2 at c2 = 0 is -b2 = -1, so e^{z2} = e^{-1}.
  auto acc = choice::LogitAcceptance::Create(10.0, 1.0, m_eff).value();
  auto actions = ActionSet::FromPriceGrid(20, acc).value();
  auto single_plan = SolveSimpleDp(single, Lambdas(4, 40.0), actions).value();
  for (int n = 1; n <= p.num_tasks_1; ++n) {
    EXPECT_NEAR(plan.OptAt(n, 0, 0).value(), single_plan.OptAt(n, 0).value(),
                0.02 * single_plan.OptAt(n, 0).value() + 0.5)
        << "n = " << n;
  }
}

TEST(MultiTypePlanTest, AccessorValidation) {
  auto plan =
      SolveMultiType(SmallProblem(), Lambdas(4, 30.0), SymmetricAcceptance())
          .value();
  EXPECT_TRUE(plan.OptAt(7, 0, 0).status().IsOutOfRange());
  EXPECT_TRUE(plan.OptAt(0, 0, 5).status().IsOutOfRange());
  EXPECT_TRUE(plan.PricesAt(0, 0, 0).status().IsInvalidArgument());
  EXPECT_TRUE(plan.PricesAt(1, 0, 4).status().IsOutOfRange());
  EXPECT_TRUE(plan.PricesAt(1, 1, 0).ok());
}

TEST(SolveMultiTypeTest, PricesOnStrideGrid) {
  auto plan =
      SolveMultiType(SmallProblem(), Lambdas(4, 40.0), SymmetricAcceptance())
          .value();
  for (int n1 = 0; n1 <= 6; ++n1) {
    for (int n2 = 0; n2 <= 6; ++n2) {
      if (n1 + n2 == 0) continue;
      auto [c1, c2] = plan.PricesAt(n1, n2, 1).value();
      EXPECT_EQ(c1 % 4, 0);
      EXPECT_EQ(c2 % 4, 0);
      EXPECT_LE(c1, 24);
      EXPECT_LE(c2, 24);
    }
  }
}

}  // namespace
}  // namespace crowdprice::pricing
