#include "choice/calibration.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace crowdprice::choice {
namespace {

TEST(SnapshotGeneratorTest, Validation) {
  Rng rng(1);
  SnapshotConfig config;
  config.num_groups = 1;
  EXPECT_TRUE(GenerateMarketplaceSnapshot(config, rng).status().IsInvalidArgument());
  config = SnapshotConfig{};
  config.type_bias.clear();
  EXPECT_TRUE(GenerateMarketplaceSnapshot(config, rng).status().IsInvalidArgument());
  config = SnapshotConfig{};
  config.wage_min = 0.0;
  EXPECT_TRUE(GenerateMarketplaceSnapshot(config, rng).status().IsInvalidArgument());
}

TEST(SnapshotGeneratorTest, ProducesConfiguredGroups) {
  Rng rng(2);
  SnapshotConfig config;
  config.num_groups = 100;
  auto snapshot = GenerateMarketplaceSnapshot(config, rng).value();
  ASSERT_EQ(snapshot.size(), 100u);
  int types[2] = {0, 0};
  for (const auto& obs : snapshot) {
    ASSERT_GE(obs.task_type, 0);
    ASSERT_LE(obs.task_type, 1);
    ASSERT_GE(obs.wage_per_second, config.wage_min);
    ASSERT_LE(obs.wage_per_second, config.wage_max);
    ASSERT_GT(obs.workload_per_hour, 0.0);
    ++types[obs.task_type];
  }
  EXPECT_EQ(types[0], 50);
  EXPECT_EQ(types[1], 50);
}

TEST(WorkloadRegressionTest, EmptyErrors) {
  EXPECT_TRUE(WorkloadRegression({}).status().IsInvalidArgument());
}

TEST(WorkloadRegressionTest, NonPositiveWorkloadErrors) {
  TaskGroupObservation obs;
  obs.workload_per_hour = 0.0;
  EXPECT_TRUE(WorkloadRegression({obs, obs}).status().IsInvalidArgument());
}

TEST(WorkloadRegressionTest, RecoversTable2Structure) {
  // The paper's Table 2: shared linear coefficient (~748 / ~809), distinct
  // biases (3.66 categorization vs 6.28 data collection).
  Rng rng(3);
  SnapshotConfig config;
  config.num_groups = 100;
  config.linear_coefficient = 780.0;
  config.type_bias = {3.66, 6.28};
  config.noise_sd = 0.35;
  auto snapshot = GenerateMarketplaceSnapshot(config, rng).value();
  auto rows = WorkloadRegression(snapshot).value();
  ASSERT_EQ(rows.size(), 2u);
  for (const auto& row : rows) {
    EXPECT_NEAR(row.fit.slope, 780.0, 120.0) << "type " << row.task_type;
    EXPECT_NEAR(row.fit.intercept,
                config.type_bias[static_cast<size_t>(row.task_type)], 0.35)
        << "type " << row.task_type;
  }
  // The two types' linear coefficients should be statistically similar and
  // the data-collection bias clearly higher (workers prefer those tasks).
  EXPECT_GT(rows[1].fit.intercept, rows[0].fit.intercept + 1.0);
}

TEST(DeriveLogitTest, Validation) {
  EXPECT_TRUE(DeriveLogitFromWorkloadRegression(0.0, 6.28, 120.0, 6000.0, 2000.0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(DeriveLogitFromWorkloadRegression(809.0, 6.28, 0.0, 6000.0, 2000.0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(DeriveLogitFromWorkloadRegression(809.0, 6.28, 120.0, 0.0, 2000.0)
                  .status()
                  .IsInvalidArgument());
}

TEST(DeriveLogitTest, ReproducesEq13FromPaperNumbers) {
  // alpha = 809, bias = 6.28, 120-second tasks, ~6000 completions/hour
  // marketplace-wide, M = 2000  ==>  Eq. 13: s ~ 15, b ~ -0.39.
  auto f =
      DeriveLogitFromWorkloadRegression(809.0, 6.28, 120.0, 6000.0, 2000.0).value();
  EXPECT_NEAR(f.s(), 14.83, 0.05);
  EXPECT_NEAR(f.b(), -0.393, 0.01);
  EXPECT_DOUBLE_EQ(f.m(), 2000.0);
  // Value check against Eq. 13 at c = 15 cents.
  const double z = 15.0 / 15.0 + 0.39;
  EXPECT_NEAR(f.ProbabilityAt(15.0), std::exp(z) / (std::exp(z) + 2000.0), 2e-4);
}

TEST(DeriveLogitTest, EndToEndFromSyntheticSnapshot) {
  // Full §5.1.2 pipeline: snapshot -> regression -> Eq. 3 parameters.
  Rng rng(4);
  SnapshotConfig config;
  config.linear_coefficient = 809.0;
  config.type_bias = {3.66, 6.28};
  auto snapshot = GenerateMarketplaceSnapshot(config, rng).value();
  auto rows = WorkloadRegression(snapshot).value();
  const auto& dc = rows[1];  // data collection
  auto f = DeriveLogitFromWorkloadRegression(dc.fit.slope, dc.fit.intercept,
                                             120.0, 6000.0, 2000.0)
               .value();
  // Recovered parameters should be near the ideal Eq. 13 values.
  EXPECT_NEAR(f.s(), 14.83, 2.5);
  EXPECT_NEAR(f.b(), -0.39, 0.45);
}

}  // namespace
}  // namespace crowdprice::choice
