// rcu::Domain tests: grace periods hold retired objects while readers
// are inside guards, reclaim frees them once readers drain, guards nest,
// and a publish/retire stress with concurrent readers stays clean (the
// TSan CI job runs the threaded stress).

#include "serving/rcu.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace crowdprice::serving::rcu {
namespace {

struct Tracked {
  explicit Tracked(std::atomic<int>* counter) : freed(counter) {}
  std::atomic<int>* freed;
};

void FreeTracked(void* object) {
  auto* tracked = static_cast<Tracked*>(object);
  tracked->freed->fetch_add(1, std::memory_order_relaxed);
  delete tracked;
}

TEST(RcuDomainTest, RetireWithNoReadersReclaimsImmediately) {
  Domain domain;
  std::atomic<int> freed{0};
  domain.Retire(new Tracked(&freed), FreeTracked);
  domain.Retire(new Tracked(&freed), FreeTracked);
  // The second Retire's opportunistic pass already freed the first; one
  // explicit pass clears the rest.
  domain.TryReclaim();
  EXPECT_EQ(freed.load(), 2);
  EXPECT_EQ(domain.retired_count(), 2u);
  EXPECT_EQ(domain.reclaimed_count(), 2u);
}

TEST(RcuDomainTest, ActiveReaderBlocksReclaimUntilExit) {
  Domain domain;
  std::atomic<int> freed{0};

  std::mutex mu;
  std::condition_variable cv;
  int stage = 0;  // 0: starting, 1: guard entered, 2: release requested

  std::thread reader([&] {
    ReadGuard guard(domain);
    {
      std::lock_guard<std::mutex> lock(mu);
      stage = 1;
    }
    cv.notify_all();
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return stage == 2; });
  });

  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return stage == 1; });
  }
  // Retired while the reader's guard is live: must not be freed yet.
  domain.Retire(new Tracked(&freed), FreeTracked);
  domain.TryReclaim();
  EXPECT_EQ(freed.load(), 0);

  {
    std::lock_guard<std::mutex> lock(mu);
    stage = 2;
  }
  cv.notify_all();
  reader.join();

  domain.Drain();
  EXPECT_EQ(freed.load(), 1);
  EXPECT_EQ(domain.reclaimed_count(), domain.retired_count());
}

TEST(RcuDomainTest, NestedGuardsHoldUntilOutermostExit) {
  Domain domain;
  std::atomic<int> freed{0};
  std::thread worker([&] {
    ReadGuard outer(domain);
    {
      ReadGuard inner(domain);
      domain.Retire(new Tracked(&freed), FreeTracked);
      domain.TryReclaim();
      EXPECT_EQ(freed.load(), 0);
    }
    // Inner exit is not enough -- the outermost guard still pins.
    domain.TryReclaim();
    EXPECT_EQ(freed.load(), 0);
  });
  worker.join();
  domain.TryReclaim();
  EXPECT_EQ(freed.load(), 1);
}

TEST(RcuDomainTest, LateReaderDoesNotBlockEarlierRetirement) {
  Domain domain;
  std::atomic<int> freed{0};
  domain.Retire(new Tracked(&freed), FreeTracked);
  // This guard entered after the retirement, so it cannot hold a
  // reference to the object and must not delay its reclamation.
  ReadGuard guard(domain);
  domain.TryReclaim();
  EXPECT_EQ(freed.load(), 1);
}

// Writers publish a fresh value and retire the old one while readers
// chase the pointer; every read must see a fully-alive object (the
// payload check fails loudly -- and TSan flags the heap race -- if a
// reader ever observes freed memory).
TEST(RcuDomainTest, PublishRetireStressWithConcurrentReaders) {
  constexpr int kReaders = 4;
  constexpr int kPublishes = 2000;
  constexpr uint64_t kAlive = 0xfeedfacecafebeefULL;

  struct Payload {
    explicit Payload(uint64_t v) : value(v), tag(kAlive) {}
    ~Payload() { tag = 0; }
    uint64_t value;
    uint64_t tag;
  };

  Domain domain;
  std::atomic<Payload*> published{new Payload(0)};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};

  std::atomic<uint64_t> tag_violations{0};
  std::atomic<uint64_t> order_violations{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      uint64_t last_seen = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ReadGuard guard(domain);
        Payload* payload = published.load(std::memory_order_seq_cst);
        if (payload->tag != kAlive) {
          tag_violations.fetch_add(1, std::memory_order_relaxed);
        }
        // Values publish in increasing order; a reader may lag but never
        // observe the sequence run backwards.
        if (payload->value < last_seen) {
          order_violations.fetch_add(1, std::memory_order_relaxed);
        }
        last_seen = payload->value;
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int i = 1; i <= kPublishes; ++i) {
    Payload* next = new Payload(static_cast<uint64_t>(i));
    Payload* old = published.exchange(next, std::memory_order_seq_cst);
    domain.Retire(old,
                  [](void* object) { delete static_cast<Payload*>(object); });
    // On a loaded (or single-core) host the publish loop can lap the
    // readers entirely; yield a little so retirements overlap live guards.
    if (i % 64 == 0) std::this_thread::yield();
  }
  // Keep serving the final value until every reader has demonstrably
  // overlapped the churn, so the test means something on any scheduler.
  while (reads.load(std::memory_order_relaxed) <
         static_cast<uint64_t>(kReaders)) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(tag_violations.load(), 0u);
  EXPECT_EQ(order_violations.load(), 0u);

  delete published.load(std::memory_order_relaxed);
  domain.Drain();
  EXPECT_EQ(domain.retired_count(), static_cast<uint64_t>(kPublishes));
  EXPECT_EQ(domain.reclaimed_count(), domain.retired_count());
  EXPECT_GT(reads.load(), 0u);
}

}  // namespace
}  // namespace crowdprice::serving::rcu
