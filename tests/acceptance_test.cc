#include "choice/acceptance.h"

#include <cmath>

#include <gtest/gtest.h>

namespace crowdprice::choice {
namespace {

TEST(LogitAcceptanceTest, CreateValidation) {
  EXPECT_TRUE(LogitAcceptance::Create(0.0, 0.0, 1.0).status().IsInvalidArgument());
  EXPECT_TRUE(LogitAcceptance::Create(-1.0, 0.0, 1.0).status().IsInvalidArgument());
  EXPECT_TRUE(LogitAcceptance::Create(1.0, 0.0, 0.0).status().IsInvalidArgument());
  EXPECT_TRUE(LogitAcceptance::Create(1.0, std::nan(""), 1.0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(LogitAcceptance::Create(15.0, -0.39, 2000.0).ok());
}

TEST(LogitAcceptanceTest, MatchesClosedForm) {
  auto f = LogitAcceptance::Create(10.0, 2.0, 100.0).value();
  for (double c : {0.0, 5.0, 20.0, 60.0}) {
    const double z = c / 10.0 - 2.0;
    const double expected = std::exp(z) / (std::exp(z) + 100.0);
    EXPECT_NEAR(f.ProbabilityAt(c), expected, 1e-12) << "c = " << c;
  }
}

TEST(LogitAcceptanceTest, Paper2014MatchesEq13) {
  // Eq. 13: p(c) = exp(c/15 + 0.39) / (exp(c/15 + 0.39) + 2000).
  auto f = LogitAcceptance::Paper2014();
  for (double c : {0.0, 12.0, 16.0, 50.0}) {
    const double z = c / 15.0 + 0.39;
    const double expected = std::exp(z) / (std::exp(z) + 2000.0);
    EXPECT_NEAR(f.ProbabilityAt(c), expected, 1e-12) << "c = " << c;
  }
  // Sanity: the paper's c0 ~ 12 for N=200 over ~122k arrivals => p ~ 0.00164.
  EXPECT_NEAR(f.ProbabilityAt(12.0), 0.00164, 0.0002);
}

TEST(LogitAcceptanceTest, StrictlyIncreasingAndBounded) {
  auto f = LogitAcceptance::Paper2014();
  double prev = -1.0;
  for (double c = 0.0; c <= 500.0; c += 1.0) {
    const double p = f.ProbabilityAt(c);
    ASSERT_GT(p, prev);
    ASSERT_GT(p, 0.0);
    ASSERT_LT(p, 1.0);
    prev = p;
  }
}

TEST(LogitAcceptanceTest, ExtremeTailsStable) {
  auto f = LogitAcceptance::Create(1.0, 0.0, 10.0).value();
  EXPECT_NEAR(f.ProbabilityAt(1000.0), 1.0, 1e-12);
  EXPECT_GE(f.ProbabilityAt(-1000.0), 0.0);
  EXPECT_LT(f.ProbabilityAt(-1000.0), 1e-12);
}

TEST(LogitAcceptanceTest, MinRewardForProbability) {
  auto f = LogitAcceptance::Paper2014();
  auto c = f.MinRewardForProbability(0.0016, 100);
  ASSERT_TRUE(c.ok());
  EXPECT_GE(f.ProbabilityAt(static_cast<double>(c.value())), 0.0016);
  if (c.value() > 0) {
    EXPECT_LT(f.ProbabilityAt(static_cast<double>(c.value() - 1)), 0.0016);
  }
}

TEST(LogitAcceptanceTest, MinRewardUnreachable) {
  auto f = LogitAcceptance::Paper2014();
  EXPECT_TRUE(f.MinRewardForProbability(0.99, 20).status().IsOutOfRange());
  EXPECT_TRUE(f.MinRewardForProbability(0.0, 20).status().IsInvalidArgument());
  EXPECT_TRUE(f.MinRewardForProbability(1.5, 20).status().IsInvalidArgument());
}

TEST(TabulatedAcceptanceTest, Validation) {
  EXPECT_TRUE(TabulatedAcceptance::Create({}, {}).status().IsInvalidArgument());
  EXPECT_TRUE(
      TabulatedAcceptance::Create({1.0}, {0.5, 0.6}).status().IsInvalidArgument());
  EXPECT_TRUE(TabulatedAcceptance::Create({1.0, 1.0}, {0.1, 0.2})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(TabulatedAcceptance::Create({2.0, 1.0}, {0.1, 0.2})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(TabulatedAcceptance::Create({1.0, 2.0}, {0.2, 0.1})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(TabulatedAcceptance::Create({1.0, 2.0}, {0.1, 1.2})
                  .status()
                  .IsInvalidArgument());
}

TEST(TabulatedAcceptanceTest, InterpolatesAndClamps) {
  auto f = TabulatedAcceptance::Create({10.0, 20.0, 40.0}, {0.1, 0.3, 0.5}).value();
  EXPECT_DOUBLE_EQ(f.ProbabilityAt(5.0), 0.1);    // clamp low
  EXPECT_DOUBLE_EQ(f.ProbabilityAt(10.0), 0.1);
  EXPECT_DOUBLE_EQ(f.ProbabilityAt(15.0), 0.2);   // midpoint
  EXPECT_DOUBLE_EQ(f.ProbabilityAt(30.0), 0.4);
  EXPECT_DOUBLE_EQ(f.ProbabilityAt(40.0), 0.5);
  EXPECT_DOUBLE_EQ(f.ProbabilityAt(99.0), 0.5);   // clamp high
}

TEST(TabulatedAcceptanceTest, SinglePointIsConstant) {
  auto f = TabulatedAcceptance::Create({5.0}, {0.25}).value();
  EXPECT_DOUBLE_EQ(f.ProbabilityAt(0.0), 0.25);
  EXPECT_DOUBLE_EQ(f.ProbabilityAt(100.0), 0.25);
}

}  // namespace
}  // namespace crowdprice::choice
