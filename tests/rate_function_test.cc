#include "arrival/rate_function.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/descriptive.h"
#include "util/rng.h"

namespace crowdprice::arrival {
namespace {

TEST(RateFunctionTest, CreateValidation) {
  EXPECT_TRUE(PiecewiseConstantRate::Create({}, 1.0).status().IsInvalidArgument());
  EXPECT_TRUE(
      PiecewiseConstantRate::Create({1.0}, 0.0).status().IsInvalidArgument());
  EXPECT_TRUE(
      PiecewiseConstantRate::Create({1.0}, -1.0).status().IsInvalidArgument());
  EXPECT_TRUE(
      PiecewiseConstantRate::Create({-1.0}, 1.0).status().IsInvalidArgument());
  EXPECT_TRUE(PiecewiseConstantRate::Create({std::nan("")}, 1.0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(PiecewiseConstantRate::Create({1.0, 2.0}, 0.5).ok());
}

TEST(RateFunctionTest, AtLooksUpBuckets) {
  auto rate = PiecewiseConstantRate::Create({10.0, 20.0, 30.0}, 1.0).value();
  EXPECT_DOUBLE_EQ(rate.At(0.0), 10.0);
  EXPECT_DOUBLE_EQ(rate.At(0.99), 10.0);
  EXPECT_DOUBLE_EQ(rate.At(1.0), 20.0);
  EXPECT_DOUBLE_EQ(rate.At(2.5), 30.0);
}

TEST(RateFunctionTest, PeriodicExtension) {
  auto rate = PiecewiseConstantRate::Create({10.0, 20.0}, 1.0).value();
  EXPECT_DOUBLE_EQ(rate.At(2.0), 10.0);
  EXPECT_DOUBLE_EQ(rate.At(3.5), 20.0);
  EXPECT_DOUBLE_EQ(rate.At(100.25), 10.0);
}

TEST(RateFunctionTest, IntegrateWithinOneBucket) {
  auto rate = PiecewiseConstantRate::Create({10.0, 20.0}, 1.0).value();
  EXPECT_NEAR(rate.Integrate(0.25, 0.75).value(), 5.0, 1e-12);
}

TEST(RateFunctionTest, IntegrateAcrossBuckets) {
  auto rate = PiecewiseConstantRate::Create({10.0, 20.0}, 1.0).value();
  EXPECT_NEAR(rate.Integrate(0.5, 1.5).value(), 5.0 + 10.0, 1e-12);
  EXPECT_NEAR(rate.Integrate(0.0, 2.0).value(), 30.0, 1e-12);
}

TEST(RateFunctionTest, IntegrateAcrossPeriods) {
  auto rate = PiecewiseConstantRate::Create({10.0, 20.0}, 1.0).value();
  EXPECT_NEAR(rate.Integrate(0.0, 6.0).value(), 90.0, 1e-10);
  EXPECT_NEAR(rate.Integrate(1.5, 2.5).value(), 10.0 + 5.0, 1e-10);
}

TEST(RateFunctionTest, IntegrateValidation) {
  auto rate = PiecewiseConstantRate::Constant(5.0, 1.0).value();
  EXPECT_TRUE(rate.Integrate(-1.0, 1.0).status().IsInvalidArgument());
  EXPECT_TRUE(rate.Integrate(2.0, 1.0).status().IsInvalidArgument());
  EXPECT_NEAR(rate.Integrate(1.0, 1.0).value(), 0.0, 1e-12);
}

TEST(RateFunctionTest, IntervalMeansSumToTotal) {
  auto rate =
      PiecewiseConstantRate::Create({100.0, 200.0, 50.0, 400.0}, 0.5).value();
  auto means = rate.IntervalMeans(2.0, 8).value();
  ASSERT_EQ(means.size(), 8u);
  double sum = 0.0;
  for (double m : means) sum += m;
  EXPECT_NEAR(sum, rate.Integrate(0.0, 2.0).value(), 1e-9);
}

TEST(RateFunctionTest, IntervalMeansMisalignedBoundaries) {
  // 3 intervals over a horizon that does not align with bucket edges.
  auto rate = PiecewiseConstantRate::Create({60.0, 120.0}, 1.0).value();
  auto means = rate.IntervalMeans(1.5, 3).value();
  ASSERT_EQ(means.size(), 3u);
  EXPECT_NEAR(means[0], 30.0, 1e-9);              // [0, 0.5): rate 60
  EXPECT_NEAR(means[1], 30.0, 1e-9);              // [0.5, 1.0): rate 60
  EXPECT_NEAR(means[2], 60.0, 1e-9);              // [1.0, 1.5): rate 120
}

TEST(RateFunctionTest, MeanRate) {
  auto rate = PiecewiseConstantRate::Create({10.0, 30.0}, 2.0).value();
  EXPECT_DOUBLE_EQ(rate.MeanRate(), 20.0);
}

TEST(RateFunctionTest, WindowExtractsSlice) {
  auto rate = PiecewiseConstantRate::Create({1.0, 2.0, 3.0, 4.0}, 1.0).value();
  auto window = rate.Window(1.0, 2.0).value();
  ASSERT_EQ(window.rates().size(), 2u);
  EXPECT_DOUBLE_EQ(window.rates()[0], 2.0);
  EXPECT_DOUBLE_EQ(window.rates()[1], 3.0);
  EXPECT_DOUBLE_EQ(window.At(0.0), 2.0);
}

TEST(RateFunctionTest, WindowWrapsPeriodically) {
  auto rate = PiecewiseConstantRate::Create({1.0, 2.0}, 1.0).value();
  auto window = rate.Window(1.0, 2.0).value();
  ASSERT_EQ(window.rates().size(), 2u);
  EXPECT_DOUBLE_EQ(window.rates()[0], 2.0);
  EXPECT_DOUBLE_EQ(window.rates()[1], 1.0);
}

TEST(RateFunctionTest, ScaledMultiplies) {
  auto rate = PiecewiseConstantRate::Create({10.0, 20.0}, 1.0).value();
  auto scaled = rate.Scaled(0.5).value();
  EXPECT_DOUBLE_EQ(scaled.At(0.0), 5.0);
  EXPECT_DOUBLE_EQ(scaled.At(1.0), 10.0);
  EXPECT_TRUE(rate.Scaled(-1.0).status().IsInvalidArgument());
}

TEST(SampleArrivalTimesTest, Validation) {
  auto rate = PiecewiseConstantRate::Constant(10.0, 1.0).value();
  Rng rng(1);
  EXPECT_TRUE(SampleArrivalTimes(rate, -1.0, 1.0, rng).status().IsInvalidArgument());
  EXPECT_TRUE(SampleArrivalTimes(rate, 2.0, 1.0, rng).status().IsInvalidArgument());
}

TEST(SampleArrivalTimesTest, EmptyWindow) {
  auto rate = PiecewiseConstantRate::Constant(10.0, 1.0).value();
  Rng rng(2);
  auto times = SampleArrivalTimes(rate, 1.0, 1.0, rng).value();
  EXPECT_TRUE(times.empty());
}

TEST(SampleArrivalTimesTest, CountMatchesIntegral) {
  auto rate = PiecewiseConstantRate::Create({100.0, 300.0}, 1.0).value();
  Rng rng(3);
  stats::RunningStats counts;
  for (int rep = 0; rep < 300; ++rep) {
    auto times = SampleArrivalTimes(rate, 0.0, 2.0, rng).value();
    counts.Add(static_cast<double>(times.size()));
  }
  EXPECT_NEAR(counts.mean(), 400.0, 4.0 * counts.stderr_mean() + 1.0);
}

TEST(SampleArrivalTimesTest, TimesSortedAndInRange) {
  auto rate = PiecewiseConstantRate::Create({50.0, 150.0, 20.0}, 0.5).value();
  Rng rng(4);
  auto times = SampleArrivalTimes(rate, 0.25, 1.25, rng).value();
  for (size_t i = 0; i < times.size(); ++i) {
    ASSERT_GE(times[i], 0.25);
    ASSERT_LT(times[i], 1.25);
    if (i > 0) {
      ASSERT_GE(times[i], times[i - 1]);
    }
  }
}

TEST(SampleArrivalTimesTest, NonHomogeneousDensity) {
  // Second half has 3x the rate; roughly 3x the arrivals land there.
  auto rate = PiecewiseConstantRate::Create({100.0, 300.0}, 1.0).value();
  Rng rng(5);
  int first = 0, second = 0;
  for (int rep = 0; rep < 200; ++rep) {
    const std::vector<double> times =
        SampleArrivalTimes(rate, 0.0, 2.0, rng).value();
    for (double t : times) {
      (t < 1.0 ? first : second) += 1;
    }
  }
  EXPECT_NEAR(static_cast<double>(second) / first, 3.0, 0.2);
}

}  // namespace
}  // namespace crowdprice::arrival
