#include "util/status.h"

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/wire.h"
#include "util/macros.h"
#include "util/result.h"

namespace crowdprice {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad n");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad n");
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_FALSE(s.IsNotFound());
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_TRUE(Status::InvalidArgument("").IsInvalidArgument());
  EXPECT_TRUE(Status::OutOfRange("").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("").IsFailedPrecondition());
  EXPECT_TRUE(Status::NotFound("").IsNotFound());
  EXPECT_TRUE(Status::Internal("").IsInternal());
  EXPECT_TRUE(Status::Unimplemented("").IsUnimplemented());
  EXPECT_TRUE(Status::NumericError("").IsNumericError());
  EXPECT_TRUE(Status::Unavailable("").IsUnavailable());
  EXPECT_TRUE(Status::Unauthenticated("").IsUnauthenticated());
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("xyz").ToString(), "NotFound: xyz");
}

TEST(StatusTest, CopyPreservesState) {
  Status a = Status::Internal("boom");
  Status b = a;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(a, b);
  EXPECT_EQ(b.message(), "boom");
}

TEST(StatusTest, AssignmentOverwrites) {
  Status a = Status::Internal("boom");
  Status b;
  b = a;
  EXPECT_TRUE(b.IsInternal());
  a = Status::OK();
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.IsInternal());  // deep copy, not aliasing
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_NE(Status::NotFound("x"), Status::NotFound("y"));
  EXPECT_NE(Status::NotFound("x"), Status::Internal("x"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, StreamOperatorUsesToString) {
  std::ostringstream os;
  os << Status::OutOfRange("n=5");
  EXPECT_EQ(os.str(), "OutOfRange: n=5");
}

TEST(StatusTest, MoveLeavesSourceReusable) {
  Status a = Status::Internal("boom");
  Status b = std::move(a);
  EXPECT_TRUE(b.IsInternal());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> ok = 7;
  Result<int> err = Status::NotFound("nope");
  EXPECT_EQ(ok.value_or(-1), 7);
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(ResultTest, ConstructingFromOkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

namespace macro_helpers {

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  CP_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

Result<int> Double(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return 2 * x;
}

Result<int> Quadruple(int x) {
  CP_ASSIGN_OR_RETURN(int doubled, Double(x));
  CP_ASSIGN_OR_RETURN(int quadrupled, Double(doubled));
  return quadrupled;
}

}  // namespace macro_helpers

// --- Wire encoding guards -------------------------------------------------
// src/net carries statuses as `int(code) <escaped message>`; both halves
// of that encoding are covered here: the integer -> enum guard, and the
// round trip of every code with quirky message bytes.

TEST(StatusCodeFromIntTest, AcceptsEveryDefinedCode) {
  for (int value = 0; value <= 9; ++value) {
    StatusCode code = StatusCode::kOk;
    ASSERT_TRUE(StatusCodeFromInt(value, &code)) << "code " << value;
    EXPECT_EQ(static_cast<int>(code), value);
  }
}

TEST(StatusCodeFromIntTest, RejectsUnknownIntegers) {
  StatusCode code = StatusCode::kNotFound;
  EXPECT_FALSE(StatusCodeFromInt(-1, &code));
  EXPECT_FALSE(StatusCodeFromInt(10, &code));
  EXPECT_FALSE(StatusCodeFromInt(99, &code));
  // A rejected lookup leaves the out-param untouched.
  EXPECT_EQ(code, StatusCode::kNotFound);
}

TEST(StatusWireTest, EveryCodeAndMessageSurvivesTheFragmentRoundTrip) {
  const std::vector<std::string> messages = {
      "",
      "plain",
      "two words  three spaces",
      "embedded\nnewline",
      "carriage\rreturn",
      "back\\slash and \\n literal",
      "trailing space ",
  };
  for (int value = 0; value <= 9; ++value) {
    StatusCode code = StatusCode::kOk;
    ASSERT_TRUE(StatusCodeFromInt(value, &code));
    for (const std::string& message : messages) {
      const Status original = code == StatusCode::kOk
                                  ? Status::OK()
                                  : Status(code, message);
      Status decoded;
      const Status parsed = net::DecodeStatusFragment(
          net::EncodeStatusFragment(original), &decoded);
      ASSERT_TRUE(parsed.ok()) << parsed.ToString();
      EXPECT_EQ(decoded.code(), original.code());
      EXPECT_EQ(decoded.message(), original.message());
    }
  }
}

TEST(StatusWireTest, MalformedFragmentsAreParseErrors) {
  Status decoded;
  EXPECT_FALSE(net::DecodeStatusFragment("", &decoded).ok());
  EXPECT_FALSE(net::DecodeStatusFragment("notanint boom", &decoded).ok());
  EXPECT_FALSE(net::DecodeStatusFragment("42 unknown code", &decoded).ok());
  // A dangling escape at the end of the message is rejected.
  EXPECT_FALSE(net::DecodeStatusFragment("4 bad\\", &decoded).ok());
}

TEST(MacroTest, ReturnIfErrorPassesThrough) {
  EXPECT_TRUE(macro_helpers::Chain(1).ok());
  EXPECT_TRUE(macro_helpers::Chain(-1).IsInvalidArgument());
}

TEST(MacroTest, AssignOrReturnChains) {
  Result<int> r = macro_helpers::Quadruple(3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 12);
  EXPECT_TRUE(macro_helpers::Quadruple(-3).status().IsInvalidArgument());
}

}  // namespace
}  // namespace crowdprice
