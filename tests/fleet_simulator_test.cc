// FleetSimulator tests: the determinism harness. Per-campaign outcomes of
// the sharded, time-sliced fleet must be bit-identical to running
// market::RunSimulation serially with the same controllers and Rng
// streams, at every shard count -- plus lifecycle accounting on the
// serving layer underneath.

#include "market/fleet_simulator.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "choice/acceptance.h"
#include "engine/engine.h"
#include "market/controller.h"
#include "market/simulator.h"
#include "util/rng.h"

namespace crowdprice::market {
namespace {

// Acceptance that is simply min(1, c / 100): cheap and price-sensitive.
class LinearAcceptance final : public choice::AcceptanceFunction {
 public:
  double ProbabilityAt(double reward_cents) const override {
    return std::clamp(reward_cents / 100.0, 0.0, 1.0);
  }
};

const choice::LogitAcceptance& PaperAcceptance() {
  static const choice::LogitAcceptance acceptance =
      choice::LogitAcceptance::Paper2014();
  return acceptance;
}

engine::PolicyArtifact SmallDeadlineArtifact() {
  engine::DeadlineDpSpec spec;
  spec.problem.num_tasks = 20;
  spec.problem.num_intervals = 8;
  spec.problem.penalty_cents = 150.0;
  spec.interval_lambdas.assign(8, 60.0);
  spec.actions = pricing::ActionSet::FromPriceGrid(30, PaperAcceptance()).value();
  return engine::Engine::Solve(spec).value();
}

// One campaign's blueprint; the test materializes it twice (fleet and
// serial reference) with identical Rng forks.
struct Blueprint {
  SimulatorConfig config;
  bool use_artifact = false;
  double fixed_price_cents = 0.0;
};

std::vector<Blueprint> MakeFleetBlueprints(int count) {
  std::vector<Blueprint> blueprints;
  blueprints.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    Blueprint bp;
    bp.config.total_tasks = 8 + i % 17;
    bp.config.horizon_hours = 4.0 + (i % 3) * 2.0;  // 4, 6 or 8 hours
    bp.config.decision_interval_hours = 1.0;
    bp.config.service_minutes_per_task = (i % 4 == 0) ? 2.0 : 0.0;
    if (i % 5 == 0) bp.config.retention.max_rate = 0.3;
    if (i % 7 == 0) {
      bp.config.accuracy.enabled = true;
    }
    bp.use_artifact = (i % 4 == 1);
    bp.fixed_price_cents = 12.0 + i % 20;
    blueprints.push_back(bp);
  }
  return blueprints;
}

void ExpectBitIdentical(const SimulationResult& got,
                        const SimulationResult& want, int index) {
  EXPECT_EQ(got.total_cost_cents, want.total_cost_cents) << "campaign " << index;
  EXPECT_EQ(got.tasks_assigned, want.tasks_assigned) << "campaign " << index;
  EXPECT_EQ(got.tasks_completed_by_horizon, want.tasks_completed_by_horizon);
  EXPECT_EQ(got.tasks_unassigned, want.tasks_unassigned);
  EXPECT_EQ(got.completion_time_hours, want.completion_time_hours);
  EXPECT_EQ(got.finished, want.finished);
  EXPECT_EQ(got.worker_arrivals, want.worker_arrivals);
  ASSERT_EQ(got.events.size(), want.events.size()) << "campaign " << index;
  for (size_t e = 0; e < got.events.size(); ++e) {
    EXPECT_EQ(got.events[e].time_hours, want.events[e].time_hours);
    EXPECT_EQ(got.events[e].tasks, want.events[e].tasks);
    EXPECT_EQ(got.events[e].cost_cents, want.events[e].cost_cents);
    EXPECT_EQ(got.events[e].group_size, want.events[e].group_size);
  }
  ASSERT_EQ(got.workers.size(), want.workers.size()) << "campaign " << index;
  for (size_t w = 0; w < got.workers.size(); ++w) {
    EXPECT_EQ(got.workers[w].first_accept_hours,
              want.workers[w].first_accept_hours);
    EXPECT_EQ(got.workers[w].hits, want.workers[w].hits);
    EXPECT_EQ(got.workers[w].tasks, want.workers[w].tasks);
    EXPECT_EQ(got.workers[w].correct, want.workers[w].correct);
    EXPECT_EQ(got.workers[w].true_accuracy, want.workers[w].true_accuracy);
  }
}

TEST(FleetSimulatorTest, RunWithoutCampaignsFails) {
  FleetSimulator fleet = FleetSimulator::Create(4).value();
  auto rate = arrival::PiecewiseConstantRate::Constant(50.0, 8.0).value();
  EXPECT_TRUE(fleet.Run(rate).status().IsFailedPrecondition());
}

TEST(FleetSimulatorTest, OutcomesMatchSerialAndLifecycleRetiresEveryCampaign) {
  // A bursty shared arrival stream with 30-minute buckets, so the event
  // loop takes many slices and campaign horizons land mid-stream.
  std::vector<double> buckets;
  for (int i = 0; i < 16; ++i) buckets.push_back(i % 2 == 0 ? 90.0 : 30.0);
  const auto rate =
      arrival::PiecewiseConstantRate::Create(buckets, 0.5).value();
  LinearAcceptance acceptance;
  const engine::PolicyArtifact solved = SmallDeadlineArtifact();
  const std::vector<Blueprint> blueprints = MakeFleetBlueprints(64);

  // Serial reference: same controllers, same Rng fork order.
  std::vector<SimulationResult> want;
  {
    Rng master(2026);
    for (const Blueprint& bp : blueprints) {
      Rng child = master.Fork();
      std::unique_ptr<PricingController> controller;
      engine::PolicyArtifact copy = solved;
      if (bp.use_artifact) {
        controller = copy.MakeController(bp.config.horizon_hours).value();
      } else {
        controller = std::make_unique<FixedOfferController>(
            Offer{bp.fixed_price_cents, 1});
      }
      want.push_back(
          RunSimulation(bp.config, rate, acceptance, *controller, child)
              .value());
    }
  }

  const auto shared = std::make_shared<const engine::PolicyArtifact>(solved);
  for (int num_shards : {1, 4, 16}) {
    FleetSimulator fleet = FleetSimulator::Create(num_shards).value();
    Rng master(2026);
    int artifact_index = 0;
    for (const Blueprint& bp : blueprints) {
      Rng child = master.Fork();
      if (bp.use_artifact) {
        // Alternate the owned-copy and shared-artifact admission paths;
        // both must be bit-identical to the serial reference.
        if (artifact_index++ % 2 == 0) {
          engine::PolicyArtifact copy = solved;
          ASSERT_TRUE(
              fleet.Admit(std::move(copy), bp.config, acceptance, child).ok());
        } else {
          ASSERT_TRUE(
              fleet.AdmitShared(shared, bp.config, acceptance, child).ok());
        }
      } else {
        ASSERT_TRUE(fleet
                        .AdmitController(
                            std::make_unique<FixedOfferController>(
                                Offer{bp.fixed_price_cents, 1}),
                            bp.config, acceptance, child)
                        .ok());
      }
    }
    ASSERT_EQ(fleet.shard_map().live_campaigns(), blueprints.size());

    const std::vector<FleetOutcome> outcomes = fleet.Run(rate).value();
    ASSERT_EQ(outcomes.size(), blueprints.size());
    for (size_t i = 0; i < outcomes.size(); ++i) {
      ExpectBitIdentical(outcomes[i].result, want[i], static_cast<int>(i));
      // The lifecycle state agrees with the outcome.
      EXPECT_EQ(outcomes[i].final_state,
                outcomes[i].result.finished
                    ? serving::CampaignState::kRetiredCompleted
                    : serving::CampaignState::kRetiredDeadline)
          << "campaign " << i;
    }

    // Every campaign retired from the serving layer.
    EXPECT_EQ(fleet.shard_map().live_campaigns(), 0u);
    const serving::ShardStats total = fleet.shard_map().TotalStats();
    EXPECT_EQ(total.admitted, blueprints.size());
    EXPECT_EQ(total.retired_completed + total.retired_deadline,
              blueprints.size());
    EXPECT_GT(total.decides, 0u);
  }
}

// The acceptance-criteria stress: >= 1000 concurrent campaigns,
// bit-identical to serial at every tested shard count. Campaigns are kept
// tiny so the serial reference stays fast; the TSan CI job runs this test
// to certify the sharded advancement is race-free.
TEST(FleetSimulatorStressTest, ThousandCampaignsBitIdenticalAcrossShardCounts) {
  const auto rate =
      arrival::PiecewiseConstantRate::Create({40.0, 20.0, 60.0, 30.0}, 1.0)
          .value();
  LinearAcceptance acceptance;
  constexpr int kCampaigns = 1100;

  std::vector<SimulatorConfig> configs;
  for (int i = 0; i < kCampaigns; ++i) {
    SimulatorConfig config;
    config.total_tasks = 3 + i % 8;
    config.horizon_hours = 2.0 + (i % 4);  // 2..5 hours
    config.decision_interval_hours = 1.0;
    config.service_minutes_per_task = 0.0;
    configs.push_back(config);
  }
  auto price_of = [](int i) { return 8.0 + i % 23; };

  std::vector<SimulationResult> want;
  {
    Rng master(77);
    for (int i = 0; i < kCampaigns; ++i) {
      Rng child = master.Fork();
      FixedOfferController controller(Offer{price_of(i), 1});
      want.push_back(
          RunSimulation(configs[static_cast<size_t>(i)], rate, acceptance,
                        controller, child)
              .value());
    }
  }

  for (int num_shards : {1, 8, 64}) {
    FleetSimulator fleet = FleetSimulator::Create(num_shards).value();
    Rng master(77);
    for (int i = 0; i < kCampaigns; ++i) {
      Rng child = master.Fork();
      ASSERT_TRUE(fleet
                      .AdmitController(std::make_unique<FixedOfferController>(
                                           Offer{price_of(i), 1}),
                                       configs[static_cast<size_t>(i)],
                                       acceptance, child)
                      .ok());
    }
    const std::vector<FleetOutcome> outcomes = fleet.Run(rate).value();
    ASSERT_EQ(outcomes.size(), static_cast<size_t>(kCampaigns));
    for (int i = 0; i < kCampaigns; ++i) {
      ExpectBitIdentical(outcomes[static_cast<size_t>(i)].result,
                         want[static_cast<size_t>(i)], i);
    }
    EXPECT_EQ(fleet.shard_map().live_campaigns(), 0u);
  }
}

}  // namespace
}  // namespace crowdprice::market
