// FleetSimulator tests: the determinism harness. Per-campaign outcomes of
// the sharded, time-sliced fleet must be bit-identical to running
// market::RunSimulation serially with the same controllers and Rng
// streams started at each campaign's admit time, at every shard count and
// every admission interleaving -- plus lifecycle accounting on the serving
// layer underneath and the session-level start/resume equivalence the
// streaming loop rests on.
//
// The streaming harness draws its campaign mix from CROWDPRICE_TEST_SEED
// when set (the CI matrix runs it under several seeds); the determinism
// property must hold for every seed.

#include "market/fleet_simulator.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "choice/acceptance.h"
#include "engine/engine.h"
#include "market/controller.h"
#include "market/session.h"
#include "market/simulator.h"
#include "pricing/fixed_price.h"
#include "util/rng.h"

namespace crowdprice::market {
namespace {

// Acceptance that is simply min(1, c / 100): cheap and price-sensitive.
class LinearAcceptance final : public choice::AcceptanceFunction {
 public:
  double ProbabilityAt(double reward_cents) const override {
    return std::clamp(reward_cents / 100.0, 0.0, 1.0);
  }
};

const choice::LogitAcceptance& PaperAcceptance() {
  static const choice::LogitAcceptance acceptance =
      choice::LogitAcceptance::Paper2014();
  return acceptance;
}

engine::PolicyArtifact SmallDeadlineArtifact() {
  engine::DeadlineDpSpec spec;
  spec.problem.num_tasks = 20;
  spec.problem.num_intervals = 8;
  spec.problem.penalty_cents = 150.0;
  spec.interval_lambdas.assign(8, 60.0);
  spec.actions = pricing::ActionSet::FromPriceGrid(30, PaperAcceptance()).value();
  return engine::Engine::Solve(spec).value();
}

// One campaign's blueprint; the test materializes it twice (fleet and
// serial reference) with identical Rng forks.
struct Blueprint {
  SimulatorConfig config;
  bool use_artifact = false;
  double fixed_price_cents = 0.0;
};

std::vector<Blueprint> MakeFleetBlueprints(int count) {
  std::vector<Blueprint> blueprints;
  blueprints.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    Blueprint bp;
    bp.config.total_tasks = 8 + i % 17;
    bp.config.horizon_hours = 4.0 + (i % 3) * 2.0;  // 4, 6 or 8 hours
    bp.config.decision_interval_hours = 1.0;
    bp.config.service_minutes_per_task = (i % 4 == 0) ? 2.0 : 0.0;
    if (i % 5 == 0) bp.config.retention.max_rate = 0.3;
    if (i % 7 == 0) {
      bp.config.accuracy.enabled = true;
    }
    bp.use_artifact = (i % 4 == 1);
    bp.fixed_price_cents = 12.0 + i % 20;
    blueprints.push_back(bp);
  }
  return blueprints;
}

void ExpectBitIdentical(const SimulationResult& got,
                        const SimulationResult& want, int index) {
  EXPECT_EQ(got.total_cost_cents, want.total_cost_cents) << "campaign " << index;
  EXPECT_EQ(got.tasks_assigned, want.tasks_assigned) << "campaign " << index;
  EXPECT_EQ(got.tasks_completed_by_horizon, want.tasks_completed_by_horizon);
  EXPECT_EQ(got.tasks_unassigned, want.tasks_unassigned);
  EXPECT_EQ(got.completion_time_hours, want.completion_time_hours);
  EXPECT_EQ(got.finished, want.finished);
  EXPECT_EQ(got.worker_arrivals, want.worker_arrivals);
  ASSERT_EQ(got.events.size(), want.events.size()) << "campaign " << index;
  for (size_t e = 0; e < got.events.size(); ++e) {
    EXPECT_EQ(got.events[e].time_hours, want.events[e].time_hours);
    EXPECT_EQ(got.events[e].tasks, want.events[e].tasks);
    EXPECT_EQ(got.events[e].cost_cents, want.events[e].cost_cents);
    EXPECT_EQ(got.events[e].group_size, want.events[e].group_size);
  }
  ASSERT_EQ(got.workers.size(), want.workers.size()) << "campaign " << index;
  for (size_t w = 0; w < got.workers.size(); ++w) {
    EXPECT_EQ(got.workers[w].first_accept_hours,
              want.workers[w].first_accept_hours);
    EXPECT_EQ(got.workers[w].hits, want.workers[w].hits);
    EXPECT_EQ(got.workers[w].tasks, want.workers[w].tasks);
    EXPECT_EQ(got.workers[w].correct, want.workers[w].correct);
    EXPECT_EQ(got.workers[w].true_accuracy, want.workers[w].true_accuracy);
  }
}

TEST(FleetSimulatorTest, RunWithoutCampaignsFails) {
  FleetSimulator fleet = FleetSimulator::Create(4).value();
  auto rate = arrival::PiecewiseConstantRate::Constant(50.0, 8.0).value();
  EXPECT_TRUE(fleet.Run(rate).status().IsFailedPrecondition());
}

TEST(FleetSimulatorTest, OutcomesMatchSerialAndLifecycleRetiresEveryCampaign) {
  // A bursty shared arrival stream with 30-minute buckets, so the event
  // loop takes many slices and campaign horizons land mid-stream.
  std::vector<double> buckets;
  for (int i = 0; i < 16; ++i) buckets.push_back(i % 2 == 0 ? 90.0 : 30.0);
  const auto rate =
      arrival::PiecewiseConstantRate::Create(buckets, 0.5).value();
  LinearAcceptance acceptance;
  const engine::PolicyArtifact solved = SmallDeadlineArtifact();
  const std::vector<Blueprint> blueprints = MakeFleetBlueprints(64);

  // Serial reference: same controllers, same Rng fork order.
  std::vector<SimulationResult> want;
  {
    Rng master(2026);
    for (const Blueprint& bp : blueprints) {
      Rng child = master.Fork();
      std::unique_ptr<PricingController> controller;
      engine::PolicyArtifact copy = solved;
      if (bp.use_artifact) {
        controller = copy.MakeController(bp.config.horizon_hours).value();
      } else {
        controller = std::make_unique<FixedOfferController>(
            Offer{bp.fixed_price_cents, 1});
      }
      want.push_back(
          RunSimulation(bp.config, rate, acceptance, *controller, child)
              .value());
    }
  }

  const auto shared = std::make_shared<const engine::PolicyArtifact>(solved);
  for (int num_shards : {1, 4, 16}) {
    FleetSimulator fleet = FleetSimulator::Create(num_shards).value();
    Rng master(2026);
    int artifact_index = 0;
    for (const Blueprint& bp : blueprints) {
      Rng child = master.Fork();
      if (bp.use_artifact) {
        // Alternate the owned-copy and shared-artifact admission paths;
        // both must be bit-identical to the serial reference.
        if (artifact_index++ % 2 == 0) {
          engine::PolicyArtifact copy = solved;
          ASSERT_TRUE(
              fleet.Admit(std::move(copy), bp.config, acceptance, child).ok());
        } else {
          ASSERT_TRUE(
              fleet.AdmitShared(shared, bp.config, acceptance, child).ok());
        }
      } else {
        ASSERT_TRUE(fleet
                        .AdmitController(
                            std::make_unique<FixedOfferController>(
                                Offer{bp.fixed_price_cents, 1}),
                            bp.config, acceptance, child)
                        .ok());
      }
    }
    ASSERT_EQ(fleet.shard_map().live_campaigns(), blueprints.size());

    const std::vector<FleetOutcome> outcomes = fleet.Run(rate).value();
    ASSERT_EQ(outcomes.size(), blueprints.size());
    for (size_t i = 0; i < outcomes.size(); ++i) {
      ExpectBitIdentical(outcomes[i].result, want[i], static_cast<int>(i));
      // The lifecycle state agrees with the outcome.
      EXPECT_EQ(outcomes[i].final_state,
                outcomes[i].result.finished
                    ? serving::CampaignState::kRetiredCompleted
                    : serving::CampaignState::kRetiredDeadline)
          << "campaign " << i;
    }

    // Every campaign retired from the serving layer.
    EXPECT_EQ(fleet.shard_map().live_campaigns(), 0u);
    const serving::ShardStats total = fleet.shard_map().TotalStats();
    EXPECT_EQ(total.admitted, blueprints.size());
    EXPECT_EQ(total.retired_completed + total.retired_deadline,
              blueprints.size());
    EXPECT_GT(total.decides, 0u);
  }
}

// The acceptance-criteria stress: >= 1000 concurrent campaigns,
// bit-identical to serial at every tested shard count. Campaigns are kept
// tiny so the serial reference stays fast; the TSan CI job runs this test
// to certify the sharded advancement is race-free.
TEST(FleetSimulatorStressTest, ThousandCampaignsBitIdenticalAcrossShardCounts) {
  const auto rate =
      arrival::PiecewiseConstantRate::Create({40.0, 20.0, 60.0, 30.0}, 1.0)
          .value();
  LinearAcceptance acceptance;
  constexpr int kCampaigns = 1100;

  std::vector<SimulatorConfig> configs;
  for (int i = 0; i < kCampaigns; ++i) {
    SimulatorConfig config;
    config.total_tasks = 3 + i % 8;
    config.horizon_hours = 2.0 + (i % 4);  // 2..5 hours
    config.decision_interval_hours = 1.0;
    config.service_minutes_per_task = 0.0;
    configs.push_back(config);
  }
  auto price_of = [](int i) { return 8.0 + i % 23; };

  std::vector<SimulationResult> want;
  {
    Rng master(77);
    for (int i = 0; i < kCampaigns; ++i) {
      Rng child = master.Fork();
      FixedOfferController controller(Offer{price_of(i), 1});
      want.push_back(
          RunSimulation(configs[static_cast<size_t>(i)], rate, acceptance,
                        controller, child)
              .value());
    }
  }

  for (int num_shards : {1, 8, 64}) {
    FleetSimulator fleet = FleetSimulator::Create(num_shards).value();
    Rng master(77);
    for (int i = 0; i < kCampaigns; ++i) {
      Rng child = master.Fork();
      ASSERT_TRUE(fleet
                      .AdmitController(std::make_unique<FixedOfferController>(
                                           Offer{price_of(i), 1}),
                                       configs[static_cast<size_t>(i)],
                                       acceptance, child)
                      .ok());
    }
    const std::vector<FleetOutcome> outcomes = fleet.Run(rate).value();
    ASSERT_EQ(outcomes.size(), static_cast<size_t>(kCampaigns));
    for (int i = 0; i < kCampaigns; ++i) {
      ExpectBitIdentical(outcomes[static_cast<size_t>(i)].result,
                         want[static_cast<size_t>(i)], i);
    }
    EXPECT_EQ(fleet.shard_map().live_campaigns(), 0u);
  }
}

// Master seed for the randomized streaming harness; the CI matrix sets
// CROWDPRICE_TEST_SEED to run the determinism property under several
// campaign mixes.
uint64_t TestSeed() {
  const char* env = std::getenv("CROWDPRICE_TEST_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 2026;
}

// The streaming acceptance-criteria stress: 1000+ campaigns admitted at
// random bucket edges while earlier campaigns are in flight, outcomes
// bit-identical to a per-campaign serial RunSimulation started at the
// admit time, at shard counts {1, 2, 7, 16}. The TSan CI job runs this
// test to certify the admit-under-traffic lane is race-free.
TEST(FleetStreamingStressTest, RandomAdmissionEdgesBitIdenticalAcrossShards) {
  const auto rate =
      arrival::PiecewiseConstantRate::Create({40.0, 20.0, 60.0, 30.0, 50.0},
                                             0.5)
          .value();
  LinearAcceptance acceptance;
  const engine::PolicyArtifact solved = SmallDeadlineArtifact();
  const auto shared = std::make_shared<const engine::PolicyArtifact>(solved);
  constexpr int kCampaigns = 1024;
  const uint64_t seed = TestSeed();

  struct Spec {
    SimulatorConfig config;
    double admit_hours = 0.0;
    bool use_artifact = false;
    double price_cents = 0.0;
  };
  std::vector<Spec> specs;
  {
    // The admission interleaving itself is random: admit times land on
    // bucket edges across a 12-hour window, so early campaigns are
    // mid-flight (and some already retired) when later ones enter.
    Rng scheduler(seed);
    for (int i = 0; i < kCampaigns; ++i) {
      Spec spec;
      spec.config.total_tasks = 3 + i % 7;
      spec.config.horizon_hours = 2.0 + 0.5 * (i % 4);
      spec.config.decision_interval_hours = 1.0;
      spec.config.service_minutes_per_task = (i % 5 == 0) ? 1.5 : 0.0;
      spec.admit_hours = 0.5 * static_cast<double>(scheduler.UniformInt(0, 24));
      spec.use_artifact = (i % 6 == 2);
      spec.price_cents = 8.0 + i % 23;
      specs.push_back(spec);
    }
  }

  // Serial reference: every campaign alone, started at its admit time.
  std::vector<SimulationResult> want;
  {
    Rng master(seed + 1);
    for (const Spec& spec : specs) {
      Rng child = master.Fork();
      std::unique_ptr<PricingController> controller;
      engine::PolicyArtifact copy = solved;
      if (spec.use_artifact) {
        controller = copy.MakeController(spec.config.horizon_hours).value();
      } else {
        controller = std::make_unique<FixedOfferController>(
            Offer{spec.price_cents, 1});
      }
      want.push_back(RunSimulation(spec.config, rate, acceptance, *controller,
                                   child, spec.admit_hours)
                         .value());
    }
  }

  for (int num_shards : {1, 2, 7, 16}) {
    FleetSimulator fleet = FleetSimulator::Create(num_shards).value();
    ArrivalSchedule schedule;
    Rng master(seed + 1);
    for (const Spec& spec : specs) {
      Rng child = master.Fork();
      if (spec.use_artifact) {
        ASSERT_TRUE(schedule
                        .AdmitShared(spec.admit_hours, shared, spec.config,
                                     acceptance, child)
                        .ok());
      } else {
        ASSERT_TRUE(schedule
                        .AdmitController(
                            spec.admit_hours,
                            std::make_unique<FixedOfferController>(
                                Offer{spec.price_cents, 1}),
                            spec.config, acceptance, child)
                        .ok());
      }
    }

    const std::vector<FleetOutcome> outcomes =
        fleet.RunStreaming(rate, std::move(schedule)).value();
    ASSERT_EQ(outcomes.size(), specs.size());
    for (size_t i = 0; i < outcomes.size(); ++i) {
      EXPECT_EQ(outcomes[i].schedule_index, i);
      EXPECT_EQ(outcomes[i].admit_hours, specs[i].admit_hours)
          << "campaign " << i;
      ExpectBitIdentical(outcomes[i].result, want[i], static_cast<int>(i));
      EXPECT_EQ(outcomes[i].final_state,
                outcomes[i].result.finished
                    ? serving::CampaignState::kRetiredCompleted
                    : serving::CampaignState::kRetiredDeadline)
          << "campaign " << i;
    }

    // Lifecycle churn reconciles: everything admitted, everything retired,
    // and the random interleaving kept the live set well below the fleet
    // size (the whole point of streaming admission).
    EXPECT_EQ(fleet.shard_map().live_campaigns(), 0u);
    const serving::ShardStats total = fleet.shard_map().TotalStats();
    EXPECT_EQ(total.admitted, specs.size());
    EXPECT_EQ(total.retired_completed + total.retired_deadline, specs.size());
    EXPECT_EQ(total.live, 0);
    EXPECT_GT(total.peak_live, 0);
    EXPECT_LT(total.peak_live, static_cast<int64_t>(kCampaigns));
    EXPECT_EQ(fleet.streaming_stats().admitted,
              static_cast<uint64_t>(kCampaigns));
    EXPECT_GT(fleet.streaming_stats().slices, 0u);
  }
}

// Mid-life control events: a hot artifact swap and a scheduled retirement,
// each bit-identical to a serial session that applies the same event at
// the same wall-clock edge.
TEST(FleetStreamingTest, SwapAndRetireEventsMatchSerialSessions) {
  const auto rate =
      arrival::PiecewiseConstantRate::Create({60.0, 45.0, 70.0, 55.0}, 1.0)
          .value();
  LinearAcceptance acceptance;
  const engine::PolicyArtifact solved = SmallDeadlineArtifact();
  const auto shared = std::make_shared<const engine::PolicyArtifact>(solved);
  pricing::FixedPriceSolution fixed;
  fixed.price_cents = 77;
  const auto swap_artifact = std::make_shared<const engine::PolicyArtifact>(
      engine::PolicyArtifact(fixed));

  SimulatorConfig swap_config;
  swap_config.total_tasks = 40;
  swap_config.horizon_hours = 6.0;
  swap_config.decision_interval_hours = 1.0;
  swap_config.service_minutes_per_task = 0.0;

  SimulatorConfig retire_config;
  retire_config.total_tasks = 500;  // Cannot finish before the pull.
  retire_config.horizon_hours = 8.0;
  retire_config.decision_interval_hours = 1.0;
  retire_config.service_minutes_per_task = 0.0;

  Rng master(4242);
  const Rng swap_rng = master.Fork();
  const Rng retire_rng = master.Fork();
  const Rng fast_rng = master.Fork();

  // Serial references, driven session-by-session with the same events.
  SimulationResult want_swap;
  {
    engine::PolicyArtifact copy = solved;
    auto before =
        copy.MakeController(swap_config.horizon_hours).value();
    CampaignSession session =
        CampaignSession::CreateAt(swap_config, rate, acceptance, *before,
                                  swap_rng, 1.0)
            .value();
    ASSERT_TRUE(session.AdvanceUntil(3.0).ok());
    auto after =
        swap_artifact->MakeController(swap_config.horizon_hours).value();
    session.RebindController(*after);
    ASSERT_TRUE(session.AdvanceUntil(session.end_hours()).ok());
    want_swap = std::move(session).TakeResult().value();
  }
  SimulationResult want_retire;
  {
    FixedOfferController controller(Offer{12.0, 1});
    CampaignSession session =
        CampaignSession::CreateAt(retire_config, rate, acceptance, controller,
                                  retire_rng, 1.0)
            .value();
    ASSERT_TRUE(session.AdvanceUntil(4.0).ok());
    ASSERT_TRUE(session.Curtail(4.0).ok());
    want_retire = std::move(session).TakeResult().value();
  }

  FleetSimulator fleet = FleetSimulator::Create(3).value();
  ArrivalSchedule schedule;
  const size_t swap_entry =
      schedule.AdmitShared(1.0, shared, swap_config, acceptance, swap_rng)
          .value();
  ASSERT_TRUE(schedule.SwapArtifactAt(swap_entry, 3.0, swap_artifact).ok());
  const size_t retire_entry =
      schedule
          .AdmitController(1.0,
                           std::make_unique<FixedOfferController>(
                               Offer{12.0, 1}),
                           retire_config, acceptance, retire_rng)
          .value();
  ASSERT_TRUE(schedule.RetireAt(retire_entry, 4.0).ok());
  // A fast campaign whose scheduled retirement lands after it completes:
  // the completion wins and the event is skipped.
  SimulatorConfig fast_config;
  fast_config.total_tasks = 2;
  fast_config.horizon_hours = 6.0;
  fast_config.decision_interval_hours = 1.0;
  const size_t fast_entry =
      schedule
          .AdmitController(0.0,
                           std::make_unique<FixedOfferController>(
                               Offer{95.0, 1}),
                           fast_config, acceptance, fast_rng)
          .value();
  ASSERT_TRUE(schedule.RetireAt(fast_entry, 5.0).ok());

  const std::vector<FleetOutcome> outcomes =
      fleet.RunStreaming(rate, std::move(schedule)).value();
  ASSERT_EQ(outcomes.size(), 3u);

  ExpectBitIdentical(outcomes[swap_entry].result, want_swap, 0);
  // The swap changed the in-force offer at the 3 h edge: assignments after
  // it pay the swapped fixed price.
  bool saw_swapped_price = false;
  for (const auto& ev : outcomes[swap_entry].result.events) {
    if (ev.time_hours >= 3.0 && ev.tasks > 0) {
      EXPECT_EQ(ev.cost_cents, 77.0 * ev.tasks);
      saw_swapped_price = true;
    }
  }
  EXPECT_TRUE(saw_swapped_price);

  ExpectBitIdentical(outcomes[retire_entry].result, want_retire, 1);
  EXPECT_EQ(outcomes[retire_entry].final_state,
            serving::CampaignState::kRetiredExplicit);
  EXPECT_FALSE(outcomes[retire_entry].result.finished);
  EXPECT_EQ(outcomes[retire_entry].result.completion_time_hours, 4.0);

  EXPECT_EQ(outcomes[fast_entry].final_state,
            serving::CampaignState::kRetiredCompleted);
  EXPECT_TRUE(outcomes[fast_entry].result.finished);

  EXPECT_EQ(fleet.streaming_stats().swapped, 1u);
  EXPECT_EQ(fleet.streaming_stats().retired_by_event, 1u);
  const serving::ShardStats total = fleet.shard_map().TotalStats();
  EXPECT_EQ(total.swapped, 1u);
  EXPECT_EQ(total.retired_explicit, 1u);
  // The other two campaigns ran their natural lifecycle.
  EXPECT_EQ(total.retired_completed + total.retired_deadline, 2u);
  EXPECT_EQ(fleet.shard_map().live_campaigns(), 0u);
}

TEST(ArrivalScheduleTest, ValidatesEntriesAndEvents) {
  LinearAcceptance acceptance;
  ArrivalSchedule schedule;
  SimulatorConfig config;
  config.total_tasks = 5;
  config.horizon_hours = 2.0;

  // Bad admit times and null payloads are rejected.
  EXPECT_TRUE(schedule
                  .AdmitController(-1.0,
                                   std::make_unique<FixedOfferController>(
                                       Offer{10.0, 1}),
                                   config, acceptance, Rng(1))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(schedule.AdmitShared(0.0, nullptr, config, acceptance, Rng(1))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      schedule.AdmitController(0.0, nullptr, config, acceptance, Rng(1))
          .status()
          .IsInvalidArgument());

  const size_t entry =
      schedule
          .AdmitController(2.0,
                           std::make_unique<FixedOfferController>(
                               Offer{10.0, 1}),
                           config, acceptance, Rng(1))
          .value();
  // Events must reference a real entry, carry a payload, and not precede
  // the admission.
  EXPECT_TRUE(schedule.RetireAt(entry + 7, 3.0).IsInvalidArgument());
  EXPECT_TRUE(schedule.RetireAt(entry, 1.0).IsInvalidArgument());
  EXPECT_TRUE(schedule.SwapArtifactAt(entry, 3.0, nullptr)
                  .IsInvalidArgument());
  EXPECT_TRUE(schedule.RetireAt(entry, 2.0).ok());

  // An empty fleet with an empty schedule has nothing to play.
  FleetSimulator fleet = FleetSimulator::Create(2).value();
  const auto rate = arrival::PiecewiseConstantRate::Constant(50.0, 8.0).value();
  EXPECT_TRUE(fleet.RunStreaming(rate, ArrivalSchedule())
                  .status()
                  .IsFailedPrecondition());
}

TEST(FleetStreamingTest, FarFutureEventOnFinishedCampaignEndsTheRunEarly) {
  // A retire event far past the campaign's natural end is skippable the
  // moment the fleet quiesces; the event loop must not spin empty slices
  // out to the event's edge.
  const auto rate = arrival::PiecewiseConstantRate::Constant(50.0, 1.0).value();
  LinearAcceptance acceptance;
  SimulatorConfig config;
  config.total_tasks = 5;
  config.horizon_hours = 2.0;
  config.decision_interval_hours = 1.0;

  FleetSimulator fleet = FleetSimulator::Create(2).value();
  ArrivalSchedule schedule;
  const size_t entry =
      schedule
          .AdmitController(0.0,
                           std::make_unique<FixedOfferController>(
                               Offer{20.0, 1}),
                           config, acceptance, Rng(5))
          .value();
  ASSERT_TRUE(schedule.RetireAt(entry, 1000.0).ok());

  const std::vector<FleetOutcome> outcomes =
      fleet.RunStreaming(rate, std::move(schedule)).value();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_NE(outcomes[0].final_state, serving::CampaignState::kRetiredExplicit);
  // The loop ended within a few edges of the 2 h horizon, not at edge 1000.
  EXPECT_LE(fleet.streaming_stats().slices, 4u);
  EXPECT_EQ(fleet.streaming_stats().retired_by_event, 0u);
}

// The session-level property the streaming loop rests on: a campaign
// *constructed* at wall-clock t0 (CreateAt) replays the identical draw
// sequence as a campaign that started at wall-clock 0 and was *resumed* at
// t0 (Resume) over the same window -- the arrival process is anchored to
// the shared wall clock, not to the campaign, even when the rate is
// nonhomogeneous and t0 is off the bucket grid. (With a start-insensitive
// controller the full results are bit-identical; only the decision-epoch
// count differs, since Resume replays the original epoch grid.)
TEST(CampaignSessionPropertyTest, CreateAtMatchesResumeUnderNonhomogeneousRate) {
  const auto rate = arrival::PiecewiseConstantRate::Create(
                        {90.0, 10.0, 130.0, 40.0, 80.0, 5.0, 60.0, 25.0}, 0.25)
                        .value();
  LinearAcceptance acceptance;
  const double duration = 2.5;

  Rng master(TestSeed() + 17);
  for (const double t0 : {0.25, 0.75, 1.1, 2.0, 3.625}) {
    const Rng child = master.Fork();

    SimulatorConfig at_config;
    at_config.total_tasks = 60;
    at_config.horizon_hours = duration;  // Campaign clock: [0, duration].
    at_config.decision_interval_hours = 0.5;
    at_config.retention.max_rate = 0.25;

    SimulatorConfig resume_config = at_config;
    resume_config.horizon_hours = t0 + duration;  // Wall clock: [0, t0 + d].

    FixedOfferController at_controller(Offer{30.0, 2});
    CampaignSession created =
        CampaignSession::CreateAt(at_config, rate, acceptance, at_controller,
                                  child, t0)
            .value();
    EXPECT_EQ(created.start_hours(), t0);
    // Advance in uneven slices; slicing must not change the draws either.
    for (double until = t0 + 0.4; !created.done(); until += 0.4) {
      ASSERT_TRUE(created.AdvanceUntil(until).ok());
    }
    const SimulationResult want = std::move(created).TakeResult().value();

    FixedOfferController resume_controller(Offer{30.0, 2});
    CampaignSession resumed =
        CampaignSession::Resume(resume_config, rate, acceptance,
                                resume_controller, child, t0)
            .value();
    EXPECT_EQ(resumed.start_hours(), 0.0);
    EXPECT_EQ(resumed.clock_hours(), t0);
    ASSERT_TRUE(resumed.AdvanceUntil(resumed.end_hours()).ok());
    const SimulationResult got = std::move(resumed).TakeResult().value();

    ExpectBitIdentical(got, want, static_cast<int>(t0 * 1000));
  }

  // Resume rejects points past the horizon; CreateAt rejects negatives.
  SimulatorConfig config;
  config.total_tasks = 5;
  config.horizon_hours = 2.0;
  FixedOfferController controller(Offer{10.0, 1});
  EXPECT_TRUE(CampaignSession::Resume(config, rate, acceptance, controller,
                                      Rng(1), 2.5)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(CampaignSession::CreateAt(config, rate, acceptance, controller,
                                        Rng(1), -0.5)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace crowdprice::market
