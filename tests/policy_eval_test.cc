#include "pricing/policy_eval.h"

#include <cmath>

#include <gtest/gtest.h>

#include "choice/acceptance.h"
#include "pricing/deadline_dp.h"
#include "stats/descriptive.h"
#include "util/rng.h"

namespace crowdprice::pricing {
namespace {

struct Fixture {
  choice::LogitAcceptance acceptance = choice::LogitAcceptance::Paper2014();
  ActionSet actions = ActionSet::FromPriceGrid(40, acceptance).value();
  DeadlineProblem problem;
  std::vector<double> lambdas;
  DeadlinePlan plan;

  static Fixture Make(int n = 25, int nt = 6, double lambda = 900.0,
                      double penalty = 300.0) {
    DeadlineProblem p;
    p.num_tasks = n;
    p.num_intervals = nt;
    p.penalty_cents = penalty;
    std::vector<double> lams(static_cast<size_t>(nt), lambda);
    choice::LogitAcceptance acc = choice::LogitAcceptance::Paper2014();
    ActionSet acts = ActionSet::FromPriceGrid(40, acc).value();
    DeadlinePlan plan = SolveImprovedDp(p, lams, acts).value();
    return Fixture{acc, acts, p, lams, std::move(plan)};
  }
};

TEST(EvaluatePolicyTest, Validation) {
  Fixture f = Fixture::Make();
  std::vector<double> probs(f.actions.size(), 0.5);
  EXPECT_TRUE(EvaluatePolicy(f.plan, {1.0}, probs).status().IsInvalidArgument());
  EXPECT_TRUE(
      EvaluatePolicy(f.plan, f.lambdas, {0.5}).status().IsInvalidArgument());
  probs[3] = 1.5;
  EXPECT_TRUE(
      EvaluatePolicy(f.plan, f.lambdas, probs).status().IsInvalidArgument());
}

TEST(EvaluatePolicyTest, NominalObjectiveMatchesDp) {
  Fixture f = Fixture::Make();
  auto eval = EvaluatePolicyNominal(f.plan).value();
  // The forward pass and the backward DP compute the same expectation
  // (identical truncation law), so agreement is tight.
  EXPECT_NEAR(eval.expected_objective, f.plan.TotalObjective(),
              1e-6 * std::max(1.0, f.plan.TotalObjective()));
}

TEST(EvaluatePolicyTest, DistributionIsProper) {
  Fixture f = Fixture::Make();
  auto eval = EvaluatePolicyNominal(f.plan).value();
  double mass = 0.0;
  for (double d : eval.remaining_distribution) {
    EXPECT_GE(d, -1e-12);
    mass += d;
  }
  EXPECT_NEAR(mass, 1.0, 1e-9);
  EXPECT_GE(eval.prob_unfinished, 0.0);
  EXPECT_LE(eval.prob_unfinished, 1.0);
  EXPECT_GE(eval.expected_remaining, 0.0);
  EXPECT_LE(eval.expected_remaining, f.problem.num_tasks);
}

TEST(EvaluatePolicyTest, MonteCarloAgreesWithExact) {
  Fixture f = Fixture::Make();
  auto eval = EvaluatePolicyNominal(f.plan).value();
  std::vector<double> probs;
  for (const auto& a : f.plan.actions().actions()) probs.push_back(a.acceptance);
  Rng rng(2024);
  stats::RunningStats cost, remaining;
  for (int i = 0; i < 4000; ++i) {
    auto traj = SimulatePolicyOnce(f.plan, f.lambdas, probs, rng).value();
    cost.Add(traj.cost_cents);
    remaining.Add(static_cast<double>(traj.remaining));
  }
  EXPECT_NEAR(cost.mean(), eval.expected_cost_cents,
              5.0 * cost.stderr_mean() + 1e-6);
  EXPECT_NEAR(remaining.mean(), eval.expected_remaining,
              5.0 * remaining.stderr_mean() + 1e-6);
}

TEST(EvaluatePolicyTest, WeakerTrueMarketLeavesMoreRemaining) {
  Fixture f = Fixture::Make();
  auto nominal = EvaluatePolicyNominal(f.plan).value();
  // True acceptance 40% lower than planned at every price.
  std::vector<double> weak_probs;
  for (const auto& a : f.plan.actions().actions()) {
    weak_probs.push_back(a.acceptance * 0.6);
  }
  auto weak = EvaluatePolicy(f.plan, f.lambdas, weak_probs).value();
  EXPECT_GT(weak.expected_remaining, nominal.expected_remaining);
  // The dynamic policy pushes prices up to compensate, so the average
  // realized reward per completed task should rise.
  EXPECT_GE(weak.average_reward_per_task, nominal.average_reward_per_task - 1e-9);
}

TEST(EvaluatePolicyTest, StrongerTrueMarketCutsCost) {
  Fixture f = Fixture::Make();
  auto nominal = EvaluatePolicyNominal(f.plan).value();
  std::vector<double> strong_probs;
  for (const auto& a : f.plan.actions().actions()) {
    strong_probs.push_back(std::min(1.0, a.acceptance * 1.8));
  }
  auto strong = EvaluatePolicy(f.plan, f.lambdas, strong_probs).value();
  EXPECT_LT(strong.expected_remaining, nominal.expected_remaining + 1e-12);
  EXPECT_LT(strong.expected_cost_cents, nominal.expected_cost_cents);
}

TEST(EvaluatePolicyTest, UnderMarketWrapperMatchesManualProbs) {
  Fixture f = Fixture::Make();
  auto via_wrapper =
      EvaluatePolicyUnderMarket(f.plan, f.lambdas, f.acceptance).value();
  std::vector<double> probs;
  for (const auto& a : f.plan.actions().actions()) {
    probs.push_back(f.acceptance.ProbabilityAt(a.cost_per_task_cents));
  }
  auto manual = EvaluatePolicy(f.plan, f.lambdas, probs).value();
  EXPECT_DOUBLE_EQ(via_wrapper.expected_cost_cents, manual.expected_cost_cents);
  EXPECT_DOUBLE_EQ(via_wrapper.expected_remaining, manual.expected_remaining);
}

TEST(SimulatePolicyOnceTest, DeterministicGivenSeed) {
  Fixture f = Fixture::Make();
  std::vector<double> probs;
  for (const auto& a : f.plan.actions().actions()) probs.push_back(a.acceptance);
  Rng a(9), b(9);
  auto ta = SimulatePolicyOnce(f.plan, f.lambdas, probs, a).value();
  auto tb = SimulatePolicyOnce(f.plan, f.lambdas, probs, b).value();
  EXPECT_DOUBLE_EQ(ta.cost_cents, tb.cost_cents);
  EXPECT_EQ(ta.remaining, tb.remaining);
  ASSERT_EQ(ta.prices.size(), tb.prices.size());
}

TEST(SimulatePolicyOnceTest, PricePathStopsWhenDone) {
  Fixture f = Fixture::Make(/*n=*/3, /*nt=*/8, /*lambda=*/5000.0);
  std::vector<double> probs;
  for (const auto& a : f.plan.actions().actions()) probs.push_back(a.acceptance);
  Rng rng(31);
  auto traj = SimulatePolicyOnce(f.plan, f.lambdas, probs, rng).value();
  // With massive worker supply the batch finishes early; the recorded price
  // path is then shorter than the horizon.
  EXPECT_EQ(traj.remaining, 0);
  EXPECT_LE(traj.prices.size(), static_cast<size_t>(f.problem.num_intervals));
}

struct EvalCase {
  int num_tasks;
  int num_intervals;
  double lambda;
  double penalty;
};

class PolicyEvalSweepTest : public ::testing::TestWithParam<EvalCase> {};

TEST_P(PolicyEvalSweepTest, ForwardPassMatchesBackwardDp) {
  // The forward distribution pass and the backward DP compute the same
  // expectation under the same truncation law, for any instance.
  const EvalCase c = GetParam();
  auto acc = choice::LogitAcceptance::Paper2014();
  auto actions = ActionSet::FromPriceGrid(40, acc).value();
  DeadlineProblem p;
  p.num_tasks = c.num_tasks;
  p.num_intervals = c.num_intervals;
  p.penalty_cents = c.penalty;
  std::vector<double> lambdas(static_cast<size_t>(c.num_intervals), c.lambda);
  auto plan = SolveImprovedDp(p, lambdas, actions).value();
  auto eval = EvaluatePolicyNominal(plan).value();
  EXPECT_NEAR(eval.expected_objective, plan.TotalObjective(),
              1e-6 * std::max(1.0, plan.TotalObjective()));
  // Average reward can never undercut the cheapest action or exceed the
  // priciest one.
  if (eval.expected_remaining < c.num_tasks - 0.5) {
    EXPECT_GE(eval.average_reward_per_task, -1e-9);
    EXPECT_LE(eval.average_reward_per_task, 40.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PolicyEvalSweepTest,
    ::testing::Values(EvalCase{1, 1, 10.0, 100.0}, EvalCase{5, 12, 80.0, 30.0},
                      EvalCase{40, 6, 1200.0, 500.0},
                      EvalCase{100, 10, 40.0, 2000.0},
                      EvalCase{60, 24, 900.0, 250.0}));

TEST(EvaluatePolicyTest, ZeroWorkerMarketLeavesEverything) {
  Fixture f = Fixture::Make();
  std::vector<double> zero_probs(f.plan.actions().size(), 0.0);
  auto eval = EvaluatePolicy(f.plan, f.lambdas, zero_probs).value();
  EXPECT_DOUBLE_EQ(eval.expected_cost_cents, 0.0);
  EXPECT_NEAR(eval.expected_remaining, f.problem.num_tasks, 1e-9);
  EXPECT_NEAR(eval.prob_unfinished, 1.0, 1e-12);
}

}  // namespace
}  // namespace crowdprice::pricing
