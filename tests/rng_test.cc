#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace crowdprice {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(12345);
  SplitMix64 b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(SplitMix64Test, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, Deterministic) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    const int64_t v = rng.UniformInt(-5, 17);
    ASSERT_GE(v, -5);
    ASSERT_LE(v, 17);
  }
}

TEST(RngTest, UniformIntSinglePoint) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.UniformInt(42, 42), 42);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(13);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntIsApproximatelyUniform) {
  Rng rng(17);
  std::vector<int> counts(8, 0);
  const int n = 160000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<size_t>(rng.UniformInt(0, 7))];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 8.0, 5 * std::sqrt(n / 8.0));
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  // Child and parent should not emit the same next values.
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (parent.NextUint64() != child.NextUint64()) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, ForkIsDeterministicGivenParentState) {
  Rng p1(37);
  Rng p2(37);
  Rng c1 = p1.Fork();
  Rng c2 = p2.Fork();
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(c1.NextUint64(), c2.NextUint64());
  }
}

TEST(RngTest, JumpChangesState) {
  Rng a(41);
  Rng b(41);
  b.Jump();
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (a.NextUint64() != b.NextUint64()) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, BitBalance) {
  // Each of the 64 bit positions should be ~50% ones.
  Rng rng(43);
  const int n = 20000;
  std::vector<int> ones(64, 0);
  for (int i = 0; i < n; ++i) {
    uint64_t v = rng.NextUint64();
    for (int b = 0; b < 64; ++b) {
      ones[static_cast<size_t>(b)] += static_cast<int>((v >> b) & 1);
    }
  }
  for (int b = 0; b < 64; ++b) {
    EXPECT_NEAR(static_cast<double>(ones[static_cast<size_t>(b)]), n / 2.0,
                5 * std::sqrt(n / 4.0))
        << "bit " << b;
  }
}

TEST(RngTest, NextDoubleInclusiveRange) {
  Rng rng(47);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDoubleInclusive();
    ASSERT_GE(x, 0.0);
    ASSERT_LE(x, 1.0);
  }
}

}  // namespace
}  // namespace crowdprice
