// Evaluation kernel parity suite.
//
// The exact policy evaluator's per-interval body now runs on
// LayerScanKernel::EvaluateLayer (kernel/layer_scan.h). The anchor is the
// pre-kernel hand-rolled forward pass, reproduced verbatim below as
// LegacyReferenceEvaluate: the scalar backend must match it BIT-EXACTLY on
// the Fig. 9 / Fig. 10-shaped robustness fixtures (perturbed acceptance
// curves and arrival rates), SIMD backends must agree with scalar to
// ~1e-12, the plan-arena reuse fast path must agree with a fresh rebuild,
// and a shared PmfShareCache must change sharing counters but never
// numbers. Cross-kind coverage: every one of the six PolicyKinds produces
// identical decisions under every registered backend.

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "choice/acceptance.h"
#include "engine/engine.h"
#include "kernel/layer_scan.h"
#include "kernel/pmf_cache.h"
#include "pricing/deadline_dp.h"
#include "pricing/policy_eval.h"
#include "stats/poisson.h"
#include "util/stringf.h"

#include "test_util.h"

namespace crowdprice::pricing {
namespace {

struct Fixture {
  choice::LogitAcceptance acceptance = choice::LogitAcceptance::Paper2014();
  ActionSet actions = ActionSet::FromPriceGrid(40, acceptance).value();
  DeadlineProblem problem;
  std::vector<double> lambdas;
  DeadlinePlan plan;

  static Fixture Make(int n = 25, int nt = 6, double lambda = 900.0,
                      double penalty = 300.0) {
    DeadlineProblem p;
    p.num_tasks = n;
    p.num_intervals = nt;
    p.penalty_cents = penalty;
    std::vector<double> lams(static_cast<size_t>(nt), lambda);
    choice::LogitAcceptance acc = choice::LogitAcceptance::Paper2014();
    ActionSet acts = ActionSet::FromPriceGrid(40, acc).value();
    DeadlinePlan plan = SolveImprovedDp(p, lams, acts).value();
    return Fixture{acc, acts, p, lams, std::move(plan)};
  }
};

// The forward pass exactly as it existed before the kernel lowering --
// copied, not reimplemented. This is the arithmetic the scalar backend
// promises to reproduce bit-for-bit.
Result<PolicyEvaluation> LegacyReferenceEvaluate(
    const DeadlinePlan& plan, const std::vector<double>& true_lambdas,
    const std::vector<double>& true_probs) {
  const int num_tasks = plan.num_tasks();
  const int nt = plan.num_intervals();
  const double epsilon = plan.problem().truncation_epsilon;

  std::vector<double> dist(static_cast<size_t>(num_tasks) + 1, 0.0);
  dist[static_cast<size_t>(num_tasks)] = 1.0;
  std::vector<double> next(static_cast<size_t>(num_tasks) + 1, 0.0);
  double expected_cost = 0.0;

  std::vector<int> table_of_action(plan.actions().size());
  for (int t = 0; t < nt; ++t) {
    std::fill(next.begin(), next.end(), 0.0);
    next[0] += dist[0];
    std::vector<stats::TruncatedPoisson> tables;
    std::fill(table_of_action.begin(), table_of_action.end(), -1);
    for (int n = 1; n <= num_tasks; ++n) {
      const double mass = dist[static_cast<size_t>(n)];
      if (mass <= 0.0) continue;
      const int a_idx = plan.ActionIndexUnchecked(n, t);
      if (a_idx < 0) {
        return Status::FailedPrecondition(
            StringF("plan has no action at (n=%d, t=%d)", n, t));
      }
      if (table_of_action[static_cast<size_t>(a_idx)] < 0) {
        CP_ASSIGN_OR_RETURN(
            stats::TruncatedPoisson tp,
            stats::MakeTruncatedPoisson(
                true_lambdas[static_cast<size_t>(t)] *
                    true_probs[static_cast<size_t>(a_idx)],
                epsilon));
        table_of_action[static_cast<size_t>(a_idx)] =
            static_cast<int>(tables.size());
        tables.push_back(std::move(tp));
      }
      const stats::TruncatedPoisson& tp = tables[static_cast<size_t>(
          table_of_action[static_cast<size_t>(a_idx)])];
      const PricingAction& action = plan.actions()[static_cast<size_t>(a_idx)];
      const double c = action.cost_per_task_cents;
      double cum = 0.0;
      for (int k = 0; k < static_cast<int>(tp.pmf.size()); ++k) {
        const long long d_ll = static_cast<long long>(k) * action.bundle;
        if (d_ll >= n) break;
        const int d = static_cast<int>(d_ll);
        const double p = tp.pmf[static_cast<size_t>(k)];
        next[static_cast<size_t>(n - d)] += mass * p;
        expected_cost += mass * p * c * d;
        cum += p;
      }
      const double finish_mass = std::max(0.0, 1.0 - cum);
      next[0] += mass * finish_mass;
      expected_cost += mass * finish_mass * c * n;
    }
    dist.swap(next);
  }

  PolicyEvaluation eval;
  eval.expected_cost_cents = expected_cost;
  eval.remaining_distribution = dist;
  double expected_remaining = 0.0;
  double expected_penalty = 0.0;
  for (int n = 0; n <= num_tasks; ++n) {
    expected_remaining += static_cast<double>(n) * dist[static_cast<size_t>(n)];
    expected_penalty +=
        plan.problem().TerminalPenalty(n) * dist[static_cast<size_t>(n)];
  }
  eval.expected_remaining = expected_remaining;
  eval.prob_unfinished = std::clamp(1.0 - dist[0], 0.0, 1.0);
  const double expected_completed =
      static_cast<double>(num_tasks) - expected_remaining;
  eval.average_reward_per_task =
      expected_completed > 0.0 ? expected_cost / expected_completed : 0.0;
  eval.expected_objective = expected_cost + expected_penalty;
  return eval;
}

void ExpectBitIdentical(const PolicyEvaluation& got,
                        const PolicyEvaluation& want) {
  EXPECT_EQ(got.expected_cost_cents, want.expected_cost_cents);
  EXPECT_EQ(got.expected_remaining, want.expected_remaining);
  EXPECT_EQ(got.prob_unfinished, want.prob_unfinished);
  EXPECT_EQ(got.average_reward_per_task, want.average_reward_per_task);
  EXPECT_EQ(got.expected_objective, want.expected_objective);
  ASSERT_EQ(got.remaining_distribution.size(),
            want.remaining_distribution.size());
  for (size_t i = 0; i < want.remaining_distribution.size(); ++i) {
    EXPECT_EQ(got.remaining_distribution[i], want.remaining_distribution[i])
        << "remaining_distribution[" << i << "]";
  }
}

void ExpectWithin(const PolicyEvaluation& got, const PolicyEvaluation& want,
                  double rel) {
  auto near = [rel](double a, double b, const char* what) {
    const double tol = rel * std::max({std::abs(a), std::abs(b), 1.0});
    EXPECT_NEAR(a, b, tol) << what;
  };
  near(got.expected_cost_cents, want.expected_cost_cents, "expected_cost");
  near(got.expected_remaining, want.expected_remaining, "expected_remaining");
  near(got.prob_unfinished, want.prob_unfinished, "prob_unfinished");
  near(got.expected_objective, want.expected_objective, "expected_objective");
  ASSERT_EQ(got.remaining_distribution.size(),
            want.remaining_distribution.size());
  for (size_t i = 0; i < want.remaining_distribution.size(); ++i) {
    near(got.remaining_distribution[i], want.remaining_distribution[i],
         "remaining_distribution entry");
  }
}

// The Fig. 9 / Fig. 10 robustness sweep: the plan solved under the paper's
// market, evaluated under perturbed acceptance curves and arrival scales.
struct MarketCase {
  double lambda_scale;
  double s, b, m;  // LogitAcceptance::Create parameters for the true market
};

const MarketCase kMarketCases[] = {
    {1.0, 15.0, 0.39, 2000.0},   // nominal market (Paper2014)
    {0.5, 15.0, 0.39, 2000.0},   // Fig. 10: arrivals halved
    {2.0, 15.0, 0.39, 2000.0},   // Fig. 10: arrivals doubled
    {1.0, 12.0, 0.39, 2000.0},   // Fig. 9: steeper acceptance
    {1.0, 15.0, 0.10, 3500.0},   // Fig. 9: more reluctant workers
    {0.75, 18.0, 0.60, 1200.0},  // joint perturbation
};

TEST(EvalKernelTest, ScalarBitIdenticalToPreKernelEvaluator) {
  Fixture f = Fixture::Make();
  for (const MarketCase& mc : kMarketCases) {
    auto market = choice::LogitAcceptance::Create(mc.s, mc.b, mc.m).value();
    std::vector<double> probs;
    for (const auto& a : f.plan.actions().actions()) {
      probs.push_back(market.ProbabilityAt(a.cost_per_task_cents));
    }
    std::vector<double> lams;
    for (double lam : f.lambdas) lams.push_back(lam * mc.lambda_scale);

    auto want = LegacyReferenceEvaluate(f.plan, lams, probs);
    ASSERT_TRUE(want.ok()) << want.status();

    EvalOptions options;
    options.kernel_backend = "scalar";
    auto got = EvaluatePolicy(f.plan, lams, probs, options);
    ASSERT_TRUE(got.ok()) << got.status();
    ExpectBitIdentical(*got, *want);
  }
}

TEST(EvalKernelTest, ScalarNominalBitIdenticalOnBothArenaPaths) {
  Fixture f = Fixture::Make(30, 8, 1100.0, 250.0);
  std::vector<double> probs;
  for (const auto& a : f.plan.actions().actions()) {
    probs.push_back(a.acceptance);
  }
  auto want = LegacyReferenceEvaluate(f.plan, f.lambdas, probs);
  ASSERT_TRUE(want.ok()) << want.status();

  // Fresh-rebuild path: exact-rate tables, bit-identical by construction.
  EvalOptions rebuild;
  rebuild.kernel_backend = "scalar";
  rebuild.reuse_plan_arena = false;
  auto fresh = EvaluatePolicyNominal(f.plan, rebuild);
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  ExpectBitIdentical(*fresh, *want);

  // Plan-arena reuse path: same numbers unless quantized dedup collided
  // during the solve (it does not on this fixture -- the rates are well
  // separated), so this is also exact.
  EvalOptions reuse;
  reuse.kernel_backend = "scalar";
  ASSERT_TRUE(f.plan.solve_arena() != nullptr);
  auto reused = EvaluatePolicyNominal(f.plan, reuse);
  ASSERT_TRUE(reused.ok()) << reused.status();
  ExpectBitIdentical(*reused, *want);
}

TEST(EvalKernelTest, BundledActionsBitIdenticalToPreKernelEvaluator) {
  // Multi-task HIT bundles drive the d = k*b skip/break logic; solved with
  // Algorithm 1 (bundles are outside Algorithm 2's premise).
  auto acc = choice::LogitAcceptance::Paper2014();
  std::vector<PricingAction> raw;
  for (int g : {1, 2, 5}) {
    PricingAction a;
    a.cost_per_task_cents = 12.0 / g;
    a.bundle = g;
    a.acceptance = acc.ProbabilityAt(a.cost_per_task_cents);
    raw.push_back(a);
  }
  DeadlineProblem p;
  p.num_tasks = 30;
  p.num_intervals = 5;
  p.penalty_cents = 200.0;
  std::vector<double> lams(5, 3000.0);
  ActionSet actions = ActionSet::FromActions(raw).value();
  DeadlinePlan plan = SolveSimpleDp(p, lams, actions).value();

  std::vector<double> probs;
  for (const auto& a : plan.actions().actions()) probs.push_back(a.acceptance);
  auto want = LegacyReferenceEvaluate(plan, lams, probs);
  ASSERT_TRUE(want.ok()) << want.status();

  EvalOptions options;
  options.kernel_backend = "scalar";
  options.reuse_plan_arena = false;
  auto got = EvaluatePolicy(plan, lams, probs, options);
  ASSERT_TRUE(got.ok()) << got.status();
  ExpectBitIdentical(*got, *want);
}

TEST(EvalKernelTest, SimdBackendsMatchScalarWithin1e12) {
  Fixture f = Fixture::Make();
  for (const std::string& backend :
       kernel::KernelRegistry::Global().Available()) {
    if (backend == "scalar") continue;
    for (const MarketCase& mc : kMarketCases) {
      auto market = choice::LogitAcceptance::Create(mc.s, mc.b, mc.m).value();
      std::vector<double> probs;
      for (const auto& a : f.plan.actions().actions()) {
        probs.push_back(market.ProbabilityAt(a.cost_per_task_cents));
      }
      std::vector<double> lams;
      for (double lam : f.lambdas) lams.push_back(lam * mc.lambda_scale);

      EvalOptions scalar_options;
      scalar_options.kernel_backend = "scalar";
      auto scalar = EvaluatePolicy(f.plan, lams, probs, scalar_options);
      ASSERT_TRUE(scalar.ok()) << scalar.status();

      EvalOptions simd_options;
      simd_options.kernel_backend = backend;
      auto simd = EvaluatePolicy(f.plan, lams, probs, simd_options);
      ASSERT_TRUE(simd.ok()) << backend << ": " << simd.status();
      ExpectWithin(*simd, *scalar, 1e-12);
    }
  }
}

TEST(EvalKernelTest, ShareCacheChangesCountersNeverNumbers) {
  Fixture f = Fixture::Make(20, 6, 800.0, 220.0);
  std::vector<double> probs;
  for (const auto& a : f.plan.actions().actions()) {
    probs.push_back(f.acceptance.ProbabilityAt(a.cost_per_task_cents + 1.0));
  }
  EvalOptions plain;
  plain.kernel_backend = "scalar";
  auto without = EvaluatePolicy(f.plan, f.lambdas, probs, plain);
  ASSERT_TRUE(without.ok()) << without.status();

  kernel::PmfShareCache cache;
  EvalOptions shared = plain;
  shared.share_cache = &cache;
  auto first = EvaluatePolicy(f.plan, f.lambdas, probs, shared);
  ASSERT_TRUE(first.ok()) << first.status();
  ExpectBitIdentical(*first, *without);
  const auto after_first = cache.stats();
  EXPECT_GT(after_first.blocks_built, 0);

  // The second pass adopts every block it needs from the cache.
  auto second = EvaluatePolicy(f.plan, f.lambdas, probs, shared);
  ASSERT_TRUE(second.ok()) << second.status();
  ExpectBitIdentical(*second, *without);
  const auto after_second = cache.stats();
  EXPECT_EQ(after_second.blocks_built, after_first.blocks_built);
  EXPECT_GT(after_second.blocks_shared, 0);
}

// Every one of the six PolicyKinds, solved under every registered backend,
// plays identically (kinds without a kernel-backed solve are covered as
// invariance checks; deadline evaluation additionally agrees to ~1e-12).
TEST(EvalKernelTest, AllSixPolicyKindsAgreeAcrossBackends) {
  const choice::LogitAcceptance& acc = choice::LogitAcceptance::Paper2014();
  auto make_specs = [&acc](const std::string& backend) {
    std::vector<engine::PolicySpec> specs;
    engine::DeadlineDpSpec deadline;
    deadline.problem.num_tasks = 20;
    deadline.problem.num_intervals = 5;
    deadline.problem.penalty_cents = 180.0;
    deadline.interval_lambdas.assign(5, 1500.0);
    deadline.actions = ActionSet::FromPriceGrid(30, acc).value();
    deadline.dp_options.kernel_backend = backend;
    specs.push_back(deadline);
    engine::BudgetStaticSpec budget;
    budget.num_tasks = 40;
    budget.budget_cents = 600.0;
    budget.acceptance = &acc;
    budget.max_price_cents = 40;
    specs.push_back(budget);
    engine::FixedPriceSpec fixed;
    fixed.num_tasks = 20;
    fixed.interval_lambdas.assign(6, 1500.0);
    fixed.acceptance = &acc;
    fixed.max_price_cents = 40;
    specs.push_back(fixed);
    engine::AdaptiveSpec adaptive;
    adaptive.problem.num_tasks = 15;
    adaptive.problem.num_intervals = 4;
    adaptive.problem.penalty_cents = 120.0;
    adaptive.believed_lambdas.assign(4, 300.0);
    adaptive.actions = ActionSet::FromPriceGrid(25, acc).value();
    adaptive.horizon_hours = 8.0;
    adaptive.options.dp_options.kernel_backend = backend;
    specs.push_back(adaptive);
    engine::MultiTypeSpec multi;
    multi.s1 = 10.0;
    multi.b1 = 1.2;
    multi.s2 = 10.0;
    multi.b2 = 1.0;
    multi.m = 200.0;
    multi.problem.num_tasks_1 = 4;
    multi.problem.num_tasks_2 = 4;
    multi.problem.num_intervals = 3;
    multi.problem.penalty_1_cents = 100.0;
    multi.problem.penalty_2_cents = 100.0;
    multi.problem.max_price_cents = 20;
    multi.problem.price_stride = 4;
    multi.interval_lambdas.assign(3, 30.0);
    multi.kernel_backend = backend;
    specs.push_back(multi);
    engine::TradeoffSpec tradeoff;
    tradeoff.rate = 5083.0;
    tradeoff.acceptance = &acc;
    tradeoff.alpha = 32.0;
    tradeoff.max_price_cents = 60;
    specs.push_back(tradeoff);
    return specs;
  };

  std::vector<engine::PolicySpec> scalar_specs = make_specs("scalar");
  for (const std::string& backend :
       kernel::KernelRegistry::Global().Available()) {
    if (backend == "scalar") continue;
    std::vector<engine::PolicySpec> simd_specs = make_specs(backend);
    ASSERT_EQ(scalar_specs.size(), simd_specs.size());
    for (size_t i = 0; i < scalar_specs.size(); ++i) {
      auto a = engine::Solve(scalar_specs[i]);
      auto b = engine::Solve(simd_specs[i]);
      ASSERT_TRUE(a.ok() && b.ok())
          << engine::KindName(scalar_specs[i].kind()) << " under " << backend;
      auto ca = a->MakeController(8.0);
      auto cb = b->MakeController(8.0);
      ASSERT_TRUE(ca.ok() && cb.ok());
      market::DecisionRequest request;
      request.remaining.assign(static_cast<size_t>((*ca)->num_types()), 4);
      auto sheet_a = (*ca)->Decide(request);
      auto sheet_b = (*cb)->Decide(request);
      ASSERT_TRUE(sheet_a.ok() && sheet_b.ok());
      ASSERT_EQ(sheet_a->num_types(), sheet_b->num_types());
      for (int ty = 0; ty < sheet_a->num_types(); ++ty) {
        EXPECT_EQ(sheet_a->offers[static_cast<size_t>(ty)]
                      .per_task_reward_cents,
                  sheet_b->offers[static_cast<size_t>(ty)]
                      .per_task_reward_cents)
            << engine::KindName(scalar_specs[i].kind()) << " under " << backend;
      }
      if (scalar_specs[i].kind() == engine::PolicyKind::kDeadlineDp) {
        const DeadlinePlan& plan = **a->deadline_plan();
        EvalOptions scalar_eval;
        scalar_eval.kernel_backend = "scalar";
        EvalOptions simd_eval;
        simd_eval.kernel_backend = backend;
        auto ea = EvaluatePolicyNominal(plan, scalar_eval);
        auto eb = EvaluatePolicyNominal(**b->deadline_plan(), simd_eval);
        ASSERT_TRUE(ea.ok() && eb.ok());
        ExpectWithin(*eb, *ea, 1e-12);
      }
    }
  }
}

}  // namespace
}  // namespace crowdprice::pricing
