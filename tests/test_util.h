// Shared helpers for the test suites.

#ifndef CROWDPRICE_TESTS_TEST_UTIL_H_
#define CROWDPRICE_TESTS_TEST_UTIL_H_

#include <cstdint>

#include "market/controller.h"
#include "market/types.h"
#include "util/macros.h"
#include "util/result.h"

namespace crowdprice::test_util {

/// Consults a controller with a single-type request and unwraps the
/// 1-offer sheet -- the sheet-surface spelling of the removed legacy
/// Decide(now, remaining). Errors FailedPrecondition when the controller
/// posts more than one offer.
inline Result<market::Offer> SingleOffer(market::PricingController& controller,
                                         double now_hours,
                                         int64_t remaining_tasks) {
  CP_ASSIGN_OR_RETURN(
      market::OfferSheet sheet,
      controller.Decide(market::DecisionRequest::Single(now_hours,
                                                        remaining_tasks)));
  if (sheet.num_types() != 1) {
    return Status::FailedPrecondition(
        "controller posts a multi-offer sheet; SingleOffer serves "
        "single-type policies only");
  }
  return sheet.offers[0];
}

}  // namespace crowdprice::test_util

#endif  // CROWDPRICE_TESTS_TEST_UTIL_H_
