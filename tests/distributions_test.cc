#include "stats/distributions.h"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "stats/descriptive.h"
#include "util/rng.h"

namespace crowdprice::stats {
namespace {

constexpr int kSamples = 120000;

TEST(NormalSamplerTest, StandardMoments) {
  Rng rng(1);
  RunningStats s;
  for (int i = 0; i < kSamples; ++i) s.Add(SampleStandardNormal(rng));
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.variance(), 1.0, 0.03);
}

TEST(NormalSamplerTest, ShiftAndScale) {
  Rng rng(2);
  RunningStats s;
  for (int i = 0; i < kSamples; ++i) s.Add(SampleNormal(rng, 5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(NormalSamplerTest, TailFractionMatchesCdf) {
  Rng rng(3);
  int beyond = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (SampleStandardNormal(rng) > 1.0) ++beyond;
  }
  EXPECT_NEAR(static_cast<double>(beyond) / kSamples, 1.0 - NormalCdf(1.0), 0.01);
}

TEST(GumbelSamplerTest, Moments) {
  // Standard Gumbel: mean = Euler-Mascheroni, var = pi^2/6.
  Rng rng(4);
  RunningStats s;
  for (int i = 0; i < kSamples; ++i) s.Add(SampleGumbel(rng));
  EXPECT_NEAR(s.mean(), 0.5772156649, 0.02);
  EXPECT_NEAR(s.variance(), M_PI * M_PI / 6.0, 0.05);
}

TEST(GumbelSamplerTest, LocationScale) {
  Rng rng(5);
  RunningStats s;
  for (int i = 0; i < kSamples; ++i) s.Add(SampleGumbel(rng, 3.0, 2.0));
  EXPECT_NEAR(s.mean(), 3.0 + 2.0 * 0.5772156649, 0.05);
}

TEST(GumbelCdfTest, KnownValues) {
  EXPECT_NEAR(GumbelCdf(0.0), std::exp(-1.0), 1e-12);
  EXPECT_NEAR(GumbelCdf(5.0), std::exp(-std::exp(-5.0)), 1e-12);
  EXPECT_LT(GumbelCdf(-3.0), 1e-8);
}

TEST(ExponentialSamplerTest, MeanIsInverseRate) {
  Rng rng(6);
  RunningStats s;
  for (int i = 0; i < kSamples; ++i) s.Add(SampleExponential(rng, 4.0));
  EXPECT_NEAR(s.mean(), 0.25, 0.01);
  EXPECT_GE(s.min(), 0.0);
}

TEST(ExponentialSamplerTest, MemorylessTailFraction) {
  Rng rng(7);
  int beyond = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (SampleExponential(rng, 1.0) > 2.0) ++beyond;
  }
  EXPECT_NEAR(static_cast<double>(beyond) / kSamples, std::exp(-2.0), 0.01);
}

class GammaSamplerTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(GammaSamplerTest, Moments) {
  const auto [shape, scale] = GetParam();
  Rng rng(8);
  RunningStats s;
  for (int i = 0; i < kSamples; ++i) s.Add(SampleGamma(rng, shape, scale));
  EXPECT_NEAR(s.mean(), shape * scale, 0.05 * shape * scale + 0.01);
  EXPECT_NEAR(s.variance(), shape * scale * scale,
              0.12 * shape * scale * scale + 0.01);
  EXPECT_GE(s.min(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeScaleGrid, GammaSamplerTest,
    ::testing::Combine(::testing::Values(0.3, 0.9, 1.0, 2.5, 30.0),
                       ::testing::Values(0.5, 2.0)));

class BetaSamplerTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(BetaSamplerTest, MomentsAndSupport) {
  const auto [a, b] = GetParam();
  Rng rng(9);
  RunningStats s;
  for (int i = 0; i < kSamples; ++i) {
    const double x = SampleBeta(rng, a, b);
    ASSERT_GE(x, 0.0);
    ASSERT_LE(x, 1.0);
    s.Add(x);
  }
  const double mean = a / (a + b);
  const double var = a * b / ((a + b) * (a + b) * (a + b + 1.0));
  EXPECT_NEAR(s.mean(), mean, 0.01);
  EXPECT_NEAR(s.variance(), var, 0.1 * var + 0.001);
}

INSTANTIATE_TEST_SUITE_P(
    AlphaBetaGrid, BetaSamplerTest,
    ::testing::Combine(::testing::Values(0.5, 2.0, 30.0),
                       ::testing::Values(0.5, 3.0)));

TEST(BinomialSamplerTest, EdgeCases) {
  Rng rng(10);
  EXPECT_EQ(SampleBinomial(rng, 0, 0.5), 0);
  EXPECT_EQ(SampleBinomial(rng, 10, 0.0), 0);
  EXPECT_EQ(SampleBinomial(rng, 10, 1.0), 10);
  EXPECT_EQ(SampleBinomial(rng, -3, 0.5), 0);
}

class BinomialSamplerTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(BinomialSamplerTest, Moments) {
  const auto [n, p] = GetParam();
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < kSamples; ++i) {
    const int k = SampleBinomial(rng, n, p);
    ASSERT_GE(k, 0);
    ASSERT_LE(k, n);
    s.Add(static_cast<double>(k));
  }
  EXPECT_NEAR(s.mean(), n * p, 0.03 * n * p + 0.02);
  EXPECT_NEAR(s.variance(), n * p * (1 - p), 0.08 * n * p * (1 - p) + 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    NPGrid, BinomialSamplerTest,
    ::testing::Combine(::testing::Values(1, 7, 50, 300),
                       ::testing::Values(0.02, 0.3, 0.5, 0.9)));

TEST(GeometricSamplerTest, PIsOneAlwaysZero) {
  Rng rng(12);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(SampleGeometric(rng, 1.0), 0);
}

TEST(GeometricSamplerTest, MeanMatchesFailureCount) {
  // E[failures before success] = (1-p)/p.
  Rng rng(13);
  for (double p : {0.1, 0.33, 0.8}) {
    RunningStats s;
    for (int i = 0; i < kSamples; ++i) {
      s.Add(static_cast<double>(SampleGeometric(rng, p)));
    }
    const double expected = (1.0 - p) / p;
    EXPECT_NEAR(s.mean(), expected, 0.04 * expected + 0.01) << "p = " << p;
  }
}

TEST(GeometricSamplerTest, PmfMatches) {
  Rng rng(14);
  const double p = 0.4;
  std::vector<int> counts(10, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const int k = SampleGeometric(rng, p);
    if (k < 10) ++counts[static_cast<size_t>(k)];
  }
  for (int k = 0; k < 6; ++k) {
    const double expect = n * std::pow(1.0 - p, k) * p;
    EXPECT_NEAR(static_cast<double>(counts[static_cast<size_t>(k)]), expect,
                6.0 * std::sqrt(expect))
        << "k = " << k;
  }
}

TEST(NormalCdfTest, SymmetryAndKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalCdf(-1.0) + NormalCdf(1.0), 1.0, 1e-12);
}

}  // namespace
}  // namespace crowdprice::stats
