// Randomized-instance property tests for the deadline DP solvers.
//
// Conjecture 1 (paper §3.2) says the optimal price is monotone in n, which
// is what lets SolveImprovedDp shrink its search brackets; these tests
// check, over randomized instances, that Algorithm 1 and Algorithm 2 (with
// and without time-monotonicity pruning) produce identical plans -- and
// that the thread-pooled layer scans are bit-identical to a serial solve,
// whatever the thread count.

#include "pricing/deadline_dp.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "choice/acceptance.h"
#include "kernel/layer_scan.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace crowdprice::pricing {
namespace {

struct RandomInstance {
  DeadlineProblem problem;
  std::vector<double> lambdas;
  ActionSet actions;
};

RandomInstance MakeRandomInstance(Rng& rng) {
  DeadlineProblem problem;
  problem.num_tasks = 5 + static_cast<int>(rng.NextDouble() * 60.0);
  problem.num_intervals = 2 + static_cast<int>(rng.NextDouble() * 10.0);
  problem.penalty_cents = 20.0 + rng.NextDouble() * 400.0;
  // extra_penalty_alpha stays 0: the §3.3 extended penalty makes the price
  // spike as n -> 0 (see ExtendedPenaltyPricesHarderNearZeroRemaining in
  // deadline_dp_test), which violates Conjecture 1 -- the premise of
  // Algorithm 2's bracket shrinking. The equivalence property only holds on
  // the linear-penalty instances the conjecture covers.

  const double s = 8.0 + rng.NextDouble() * 14.0;
  const double b = -0.8 + rng.NextDouble() * 1.2;
  const double m = 500.0 + rng.NextDouble() * 3000.0;
  auto acceptance = choice::LogitAcceptance::Create(s, b, m);
  EXPECT_TRUE(acceptance.ok()) << acceptance.status();
  const int max_price = 10 + static_cast<int>(rng.NextDouble() * 40.0);
  auto actions = ActionSet::FromPriceGrid(max_price, *acceptance);
  EXPECT_TRUE(actions.ok()) << actions.status();

  // Arrival volumes spanning starved to saturated markets, with some
  // repeated rates so the truncated-Poisson cache path is exercised.
  std::vector<double> lambdas;
  const double base =
      problem.num_tasks * (0.2 + rng.NextDouble() * 3.0) / problem.num_intervals;
  for (int t = 0; t < problem.num_intervals; ++t) {
    lambdas.push_back(rng.NextDouble() < 0.5 ? base
                                             : base * (0.5 + rng.NextDouble()));
  }
  return RandomInstance{problem, std::move(lambdas), std::move(actions).value()};
}

void ExpectIdenticalPlans(const DeadlinePlan& a, const DeadlinePlan& b,
                          const char* label) {
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  ASSERT_EQ(a.num_intervals(), b.num_intervals());
  for (int t = 0; t < a.num_intervals(); ++t) {
    for (int n = 1; n <= a.num_tasks(); ++n) {
      ASSERT_EQ(a.ActionIndexUnchecked(n, t), b.ActionIndexUnchecked(n, t))
          << label << " at (n=" << n << ", t=" << t << ")";
      // Bit-identical values, not just close: both solvers must evaluate
      // the winning action with the same arithmetic.
      ASSERT_EQ(a.OptUnchecked(n, t), b.OptUnchecked(n, t))
          << label << " Opt at (n=" << n << ", t=" << t << ")";
    }
  }
}

// Every registered kernel backend must uphold the equivalence property:
// within one backend, Algorithm 1, Algorithm 2 and the pruned variant
// produce bit-identical plans (the kernel's dense/bracketed scans share
// their arithmetic exactly -- the contract in kernel/layer_scan.h).
TEST(DpEquivalenceTest, SimpleAndImprovedAgreeOnRandomInstancesPerBackend) {
  for (const std::string& backend :
       kernel::KernelRegistry::Global().Available()) {
    SCOPED_TRACE(backend);
    Rng rng(20260726);
    for (int rep = 0; rep < 15; ++rep) {
      const RandomInstance instance = MakeRandomInstance(rng);
      DpOptions options;
      options.kernel_backend = backend;
      auto simple = SolveSimpleDp(instance.problem, instance.lambdas,
                                  instance.actions, options);
      ASSERT_TRUE(simple.ok()) << simple.status();
      EXPECT_EQ(simple->kernel_backend, backend);
      auto improved = SolveImprovedDp(instance.problem, instance.lambdas,
                                      instance.actions, options);
      ASSERT_TRUE(improved.ok()) << improved.status();
      ExpectIdenticalPlans(*simple, *improved, "simple vs improved");

      DpOptions pruned = options;
      pruned.time_monotonicity_pruning = true;
      auto improved_pruned = SolveImprovedDp(instance.problem, instance.lambdas,
                                             instance.actions, pruned);
      ASSERT_TRUE(improved_pruned.ok()) << improved_pruned.status();
      ExpectIdenticalPlans(*simple, *improved_pruned, "simple vs pruned");
      // Pruning may only reduce work.
      EXPECT_LE(improved_pruned->action_evaluations,
                improved->action_evaluations);
    }
  }
}

// SIMD backends agree with scalar within tolerance and pick the same
// actions on the reference instances (away from exact cost ties).
TEST(DpEquivalenceTest, BackendsAgreeWithScalarWithinTolerance) {
  if (kernel::KernelRegistry::Global().Available().size() < 2) {
    GTEST_SKIP() << "no SIMD backend registered on this host";
  }
  Rng rng(607);
  for (int rep = 0; rep < 6; ++rep) {
    const RandomInstance instance = MakeRandomInstance(rng);
    DpOptions scalar_options;
    scalar_options.kernel_backend = "scalar";
    auto want = SolveImprovedDp(instance.problem, instance.lambdas,
                                instance.actions, scalar_options);
    ASSERT_TRUE(want.ok()) << want.status();
    for (const std::string& backend :
         kernel::KernelRegistry::Global().Available()) {
      if (backend == "scalar") continue;  // the reference itself
      SCOPED_TRACE(backend);
      DpOptions options;
      options.kernel_backend = backend;
      auto got = SolveImprovedDp(instance.problem, instance.lambdas,
                                 instance.actions, options);
      ASSERT_TRUE(got.ok()) << got.status();
      for (int t = 0; t < want->num_intervals(); ++t) {
        for (int n = 1; n <= want->num_tasks(); ++n) {
          ASSERT_EQ(got->ActionIndexUnchecked(n, t),
                    want->ActionIndexUnchecked(n, t))
              << "argmin at (n=" << n << ", t=" << t << ")";
          const double w = want->OptUnchecked(n, t);
          ASSERT_NEAR(got->OptUnchecked(n, t), w,
                      1e-12 * std::max(1.0, std::abs(w)))
              << "Opt at (n=" << n << ", t=" << t << ")";
        }
      }
    }
  }
}

TEST(DpEquivalenceTest, ParallelSolvesAreBitIdenticalToSerial) {
  // N must clear the solver's internal parallelism threshold, and the
  // thread counts straddle hardware_concurrency on any machine.
  auto acceptance = choice::LogitAcceptance::Paper2014();
  auto actions = ActionSet::FromPriceGrid(35, acceptance);
  ASSERT_TRUE(actions.ok());
  DeadlineProblem problem;
  problem.num_tasks = 600;
  problem.num_intervals = 8;
  problem.penalty_cents = 150.0;
  const std::vector<double> lambdas(8, 240.0);

  for (const std::string& backend :
       kernel::KernelRegistry::Global().Available()) {
    SCOPED_TRACE(backend);
    DpOptions serial;
    serial.num_threads = 1;
    serial.kernel_backend = backend;
    for (const bool monotone : {false, true}) {
      auto solve = [&](const DpOptions& options) {
        return monotone ? SolveImprovedDp(problem, lambdas, *actions, options)
                        : SolveSimpleDp(problem, lambdas, *actions, options);
      };
      auto baseline = solve(serial);
      ASSERT_TRUE(baseline.ok()) << baseline.status();
      EXPECT_EQ(baseline->threads_used, 1);
      for (const int threads : {2, 3, 4, 8}) {
        DpOptions parallel;
        parallel.num_threads = threads;
        parallel.kernel_backend = backend;
        auto plan = solve(parallel);
        ASSERT_TRUE(plan.ok()) << plan.status();
        // threads_used reports actual parallelism: the request capped by
        // the shared pool (pool workers + the calling thread).
        EXPECT_EQ(plan->threads_used,
                  std::min(threads, ThreadPool::Shared().size() + 1));
        ExpectIdenticalPlans(*baseline, *plan,
                             monotone ? "serial vs parallel (monotone)"
                                      : "serial vs parallel (simple)");
        // The parallel decomposition must not change the work done either.
        EXPECT_EQ(plan->action_evaluations, baseline->action_evaluations);
      }
    }
  }
}

TEST(DpEquivalenceTest, PoissonTableCacheReusesRepeatedRates) {
  auto acceptance = choice::LogitAcceptance::Paper2014();
  auto actions = ActionSet::FromPriceGrid(20, acceptance);
  ASSERT_TRUE(actions.ok());
  DeadlineProblem problem;
  problem.num_tasks = 30;
  problem.num_intervals = 12;
  problem.penalty_cents = 100.0;
  // Constant trace: every interval repeats the same rates.
  const std::vector<double> lambdas(12, 90.0);
  auto plan = SolveImprovedDp(problem, lambdas, *actions);
  ASSERT_TRUE(plan.ok()) << plan.status();
  // One table per action, built once; the other 11 layers reuse them.
  EXPECT_EQ(plan->poisson_tables_built, 21);
  EXPECT_EQ(plan->poisson_table_reuses, 21 * 11);
}

TEST(DpEquivalenceTest, RejectsNegativeThreadCount) {
  auto acceptance = choice::LogitAcceptance::Paper2014();
  auto actions = ActionSet::FromPriceGrid(10, acceptance);
  ASSERT_TRUE(actions.ok());
  DeadlineProblem problem;
  problem.num_tasks = 5;
  problem.num_intervals = 2;
  problem.penalty_cents = 50.0;
  DpOptions options;
  options.num_threads = -2;
  EXPECT_TRUE(SolveSimpleDp(problem, {10.0, 10.0}, *actions, options)
                  .status()
                  .IsInvalidArgument());
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(513);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(513, [&](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 0);
  int64_t sum = 0;
  pool.ParallelFor(100, [&](int64_t i) { sum += i; });  // inline: no races
  EXPECT_EQ(sum, 99 * 100 / 2);
}

}  // namespace
}  // namespace crowdprice::pricing
