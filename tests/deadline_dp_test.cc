#include "pricing/deadline_dp.h"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "choice/acceptance.h"
#include "stats/poisson.h"
#include "util/rng.h"

namespace crowdprice::pricing {
namespace {

choice::LogitAcceptance PaperAcceptance() {
  return choice::LogitAcceptance::Paper2014();
}

DeadlineProblem SmallProblem() {
  DeadlineProblem p;
  p.num_tasks = 20;
  p.num_intervals = 6;
  p.penalty_cents = 200.0;
  return p;
}

std::vector<double> ConstantLambdas(int nt, double lambda) {
  return std::vector<double>(static_cast<size_t>(nt), lambda);
}

TEST(DeadlineProblemTest, Validation) {
  DeadlineProblem p = SmallProblem();
  p.num_tasks = 0;
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
  p = SmallProblem();
  p.num_intervals = 0;
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
  p = SmallProblem();
  p.penalty_cents = -1.0;
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
  p = SmallProblem();
  p.truncation_epsilon = 0.0;
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
  p = SmallProblem();
  p.truncation_epsilon = 1.0;
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
  EXPECT_TRUE(SmallProblem().Validate().ok());
}

TEST(DeadlineProblemTest, TerminalPenalty) {
  DeadlineProblem p = SmallProblem();
  EXPECT_DOUBLE_EQ(p.TerminalPenalty(0), 0.0);
  EXPECT_DOUBLE_EQ(p.TerminalPenalty(3), 600.0);
  p.extra_penalty_alpha = 2.0;
  EXPECT_DOUBLE_EQ(p.TerminalPenalty(0), 0.0);
  EXPECT_DOUBLE_EQ(p.TerminalPenalty(3), 1000.0);  // (3 + 2) * 200
  EXPECT_DOUBLE_EQ(p.TerminalPenalty(1), 600.0);   // (1 + 2) * 200
}

TEST(SolveSimpleDpTest, InputValidation) {
  auto acceptance = PaperAcceptance();
  auto actions = ActionSet::FromPriceGrid(30, acceptance).value();
  DeadlineProblem p = SmallProblem();
  // Mismatched lambda count.
  EXPECT_TRUE(SolveSimpleDp(p, ConstantLambdas(5, 100.0), actions)
                  .status()
                  .IsInvalidArgument());
  // Negative lambda.
  auto lambdas = ConstantLambdas(6, 100.0);
  lambdas[2] = -1.0;
  EXPECT_TRUE(SolveSimpleDp(p, lambdas, actions).status().IsInvalidArgument());
  // NaN lambda.
  lambdas[2] = std::nan("");
  EXPECT_TRUE(SolveSimpleDp(p, lambdas, actions).status().IsInvalidArgument());
}

TEST(SolveSimpleDpTest, TerminalLayerSetFromPenalty) {
  auto actions = ActionSet::FromPriceGrid(10, PaperAcceptance()).value();
  DeadlineProblem p = SmallProblem();
  auto plan = SolveSimpleDp(p, ConstantLambdas(6, 100.0), actions).value();
  for (int n = 0; n <= p.num_tasks; ++n) {
    EXPECT_DOUBLE_EQ(plan.OptAt(n, p.num_intervals).value(),
                     p.penalty_cents * n);
  }
}

TEST(SolveSimpleDpTest, SingleStateAnalyticCheck) {
  // N = 1, NT = 1, single action: Opt(1,0) = (1 - e^-mu) c + e^-mu * penalty.
  DeadlineProblem p;
  p.num_tasks = 1;
  p.num_intervals = 1;
  p.penalty_cents = 50.0;
  std::vector<PricingAction> raw{{10.0, 1, 0.5}};
  auto actions = ActionSet::FromActions(raw).value();
  auto plan = SolveSimpleDp(p, {2.0}, actions).value();  // mu = 1.0
  const double mu = 1.0;
  const double expected = (1.0 - std::exp(-mu)) * 10.0 + std::exp(-mu) * 50.0;
  EXPECT_NEAR(plan.OptAt(1, 0).value(), expected, 1e-9);
  EXPECT_EQ(plan.ActionIndexAt(1, 0).value(), 0);
}

TEST(SolveSimpleDpTest, ZeroLambdaMeansPenaltyOnly) {
  auto actions = ActionSet::FromPriceGrid(20, PaperAcceptance()).value();
  DeadlineProblem p = SmallProblem();
  auto plan = SolveSimpleDp(p, ConstantLambdas(6, 0.0), actions).value();
  for (int n = 1; n <= p.num_tasks; ++n) {
    EXPECT_NEAR(plan.OptAt(n, 0).value(), n * p.penalty_cents, 1e-9);
    // No workers: price is irrelevant; ties resolve to the lowest price.
    EXPECT_EQ(plan.ActionIndexAt(n, 0).value(), 0);
  }
}

TEST(SolveSimpleDpTest, OptMonotoneInRemainingTasks) {
  auto actions = ActionSet::FromPriceGrid(40, PaperAcceptance()).value();
  DeadlineProblem p = SmallProblem();
  auto plan = SolveSimpleDp(p, ConstantLambdas(6, 800.0), actions).value();
  for (int t = 0; t <= p.num_intervals; ++t) {
    for (int n = 1; n <= p.num_tasks; ++n) {
      EXPECT_LE(plan.OptAt(n - 1, t).value(), plan.OptAt(n, t).value() + 1e-9)
          << "n = " << n << ", t = " << t;
    }
  }
}

TEST(SolveSimpleDpTest, MoreTimeNeverHurtsUnderStationaryArrivals) {
  auto actions = ActionSet::FromPriceGrid(40, PaperAcceptance()).value();
  DeadlineProblem p = SmallProblem();
  auto plan = SolveSimpleDp(p, ConstantLambdas(6, 800.0), actions).value();
  for (int n = 0; n <= p.num_tasks; ++n) {
    for (int t = 0; t < p.num_intervals; ++t) {
      EXPECT_LE(plan.OptAt(n, t).value(), plan.OptAt(n, t + 1).value() + 1e-9)
          << "n = " << n << ", t = " << t;
    }
  }
}

TEST(SolveSimpleDpTest, HigherPenaltyRaisesInitialPrice) {
  auto actions = ActionSet::FromPriceGrid(40, PaperAcceptance()).value();
  DeadlineProblem low = SmallProblem();
  low.penalty_cents = 30.0;
  DeadlineProblem high = SmallProblem();
  high.penalty_cents = 3000.0;
  auto lambdas = ConstantLambdas(6, 400.0);
  auto plan_low = SolveSimpleDp(low, lambdas, actions).value();
  auto plan_high = SolveSimpleDp(high, lambdas, actions).value();
  EXPECT_LE(plan_low.PriceAt(low.num_tasks, 0).value(),
            plan_high.PriceAt(high.num_tasks, 0).value());
  EXPECT_LT(plan_low.TotalObjective(), plan_high.TotalObjective());
}

TEST(SolveSimpleDpTest, DominatesAnyFixedPricePolicy) {
  // The DP optimum is no worse than playing any constant price.
  auto acceptance = PaperAcceptance();
  auto actions = ActionSet::FromPriceGrid(40, acceptance).value();
  DeadlineProblem p = SmallProblem();
  auto lambdas = ConstantLambdas(6, 600.0);
  auto plan = SolveSimpleDp(p, lambdas, actions).value();
  for (int c : {5, 12, 20, 40}) {
    DeadlinePlan fixed(p, actions, lambdas);
    for (int n = 1; n <= p.num_tasks; ++n) {
      for (int t = p.num_intervals - 1; t >= 0; --t) {
        fixed.SetActionIndex(n, t, c);
      }
    }
    // Evaluate the fixed plan by one backward sweep using the DP's own
    // machinery: cost of the fixed policy from (N, 0).
    // (Build values bottom-up with the same transition law.)
    for (int t = p.num_intervals - 1; t >= 0; --t) {
      auto tp = stats::MakeTruncatedPoisson(
                    lambdas[static_cast<size_t>(t)] *
                        acceptance.ProbabilityAt(static_cast<double>(c)),
                    p.truncation_epsilon)
                    .value();
      for (int n = 1; n <= p.num_tasks; ++n) {
        double cost = 0.0, cum = 0.0;
        for (int s = 0; s < static_cast<int>(tp.pmf.size()) && s < n; ++s) {
          cost += tp.pmf[static_cast<size_t>(s)] *
                  (c * s + fixed.OptUnchecked(n - s, t + 1));
          cum += tp.pmf[static_cast<size_t>(s)];
        }
        cost += (1.0 - cum) * c * n;
        fixed.SetOpt(n, t, cost);
      }
    }
    EXPECT_LE(plan.TotalObjective(), fixed.TotalObjective() + 1e-6)
        << "fixed price " << c;
  }
}

TEST(SolveSimpleDpTest, BundledActionsAnalyticCheck) {
  // One action with bundle = 4: one interval, N = 10.
  // Opt(10, 0) = sum_k pmf(k) * cost * min(10, 4k) with the tail at cost*10.
  DeadlineProblem p;
  p.num_tasks = 10;
  p.num_intervals = 1;
  p.penalty_cents = 0.0;  // isolate transition costs
  std::vector<PricingAction> raw{{2.0, 4, 0.5}};
  auto actions = ActionSet::FromActions(raw).value();
  const double mu = 3.0 * 0.5;
  auto plan = SolveSimpleDp(p, {3.0}, actions).value();
  double expected = 0.0, cum = 0.0;
  for (int k = 0; k * 4 < 10; ++k) {
    expected += stats::PoissonPmf(k, mu) * 2.0 * (4 * k);
    cum += stats::PoissonPmf(k, mu);
  }
  expected += (1.0 - cum) * 2.0 * 10;
  EXPECT_NEAR(plan.OptAt(10, 0).value(), expected, 1e-9);
}

TEST(SolveImprovedDpTest, RejectsBundledActions) {
  std::vector<PricingAction> raw{{2.0, 4, 0.5}, {4.0, 2, 0.7}};
  auto actions = ActionSet::FromActions(raw).value();
  DeadlineProblem p = SmallProblem();
  EXPECT_TRUE(SolveImprovedDp(p, ConstantLambdas(6, 10.0), actions)
                  .status()
                  .IsFailedPrecondition());
}

// --- Equivalence & monotonicity property sweep ------------------------------

struct DpCase {
  int num_tasks;
  int num_intervals;
  double lambda_scale;
  double penalty;
  int max_price;
};

class DpEquivalenceTest : public ::testing::TestWithParam<DpCase> {};

TEST_P(DpEquivalenceTest, ImprovedMatchesSimple) {
  const DpCase c = GetParam();
  auto acceptance = PaperAcceptance();
  auto actions = ActionSet::FromPriceGrid(c.max_price, acceptance).value();
  DeadlineProblem p;
  p.num_tasks = c.num_tasks;
  p.num_intervals = c.num_intervals;
  p.penalty_cents = c.penalty;
  // Non-stationary lambdas to exercise the general case.
  std::vector<double> lambdas;
  Rng rng(static_cast<uint64_t>(c.num_tasks * 1000 + c.num_intervals));
  for (int t = 0; t < c.num_intervals; ++t) {
    lambdas.push_back(c.lambda_scale * (0.5 + rng.NextDouble()));
  }
  auto simple = SolveSimpleDp(p, lambdas, actions).value();
  auto improved = SolveImprovedDp(p, lambdas, actions).value();
  for (int t = 0; t < p.num_intervals; ++t) {
    for (int n = 1; n <= p.num_tasks; ++n) {
      ASSERT_NEAR(simple.OptAt(n, t).value(), improved.OptAt(n, t).value(), 1e-9)
          << "n = " << n << ", t = " << t;
      ASSERT_EQ(simple.ActionIndexAt(n, t).value(),
                improved.ActionIndexAt(n, t).value())
          << "n = " << n << ", t = " << t;
    }
  }
  // The divide-and-conquer search must not do more work, and strictly less
  // once there are enough states for the bracketing to bite.
  if (c.num_tasks >= 4) {
    EXPECT_LT(improved.action_evaluations, simple.action_evaluations);
  } else {
    EXPECT_LE(improved.action_evaluations, simple.action_evaluations);
  }
}

TEST_P(DpEquivalenceTest, Conjecture1PriceMonotoneInN) {
  const DpCase c = GetParam();
  auto actions = ActionSet::FromPriceGrid(c.max_price, PaperAcceptance()).value();
  DeadlineProblem p;
  p.num_tasks = c.num_tasks;
  p.num_intervals = c.num_intervals;
  p.penalty_cents = c.penalty;
  auto plan =
      SolveSimpleDp(p, ConstantLambdas(c.num_intervals, c.lambda_scale), actions)
          .value();
  for (int t = 0; t < p.num_intervals; ++t) {
    for (int n = 2; n <= p.num_tasks; ++n) {
      EXPECT_LE(plan.PriceAt(n - 1, t).value(), plan.PriceAt(n, t).value())
          << "n = " << n << ", t = " << t;
    }
  }
}

TEST_P(DpEquivalenceTest, PriceMonotoneInTimeUnderStationaryArrivals) {
  const DpCase c = GetParam();
  auto actions = ActionSet::FromPriceGrid(c.max_price, PaperAcceptance()).value();
  DeadlineProblem p;
  p.num_tasks = c.num_tasks;
  p.num_intervals = c.num_intervals;
  p.penalty_cents = c.penalty;
  auto plan =
      SolveSimpleDp(p, ConstantLambdas(c.num_intervals, c.lambda_scale), actions)
          .value();
  for (int n = 1; n <= p.num_tasks; ++n) {
    for (int t = 1; t < p.num_intervals; ++t) {
      EXPECT_LE(plan.PriceAt(n, t - 1).value(), plan.PriceAt(n, t).value())
          << "n = " << n << ", t = " << t;
    }
  }
}

TEST_P(DpEquivalenceTest, TimePruningMatchesWhenEnabled) {
  const DpCase c = GetParam();
  auto actions = ActionSet::FromPriceGrid(c.max_price, PaperAcceptance()).value();
  DeadlineProblem p;
  p.num_tasks = c.num_tasks;
  p.num_intervals = c.num_intervals;
  p.penalty_cents = c.penalty;
  const auto lambdas = ConstantLambdas(c.num_intervals, c.lambda_scale);
  DpOptions pruned;
  pruned.time_monotonicity_pruning = true;
  auto base = SolveImprovedDp(p, lambdas, actions).value();
  auto fast = SolveImprovedDp(p, lambdas, actions, pruned).value();
  for (int t = 0; t < p.num_intervals; ++t) {
    for (int n = 1; n <= p.num_tasks; ++n) {
      ASSERT_EQ(base.ActionIndexAt(n, t).value(), fast.ActionIndexAt(n, t).value())
          << "n = " << n << ", t = " << t;
    }
  }
  EXPECT_LE(fast.action_evaluations, base.action_evaluations);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DpEquivalenceTest,
    ::testing::Values(DpCase{5, 3, 50.0, 100.0, 25},
                      DpCase{30, 8, 400.0, 300.0, 40},
                      DpCase{50, 4, 1500.0, 80.0, 30},
                      DpCase{12, 12, 120.0, 1000.0, 35},
                      DpCase{1, 1, 10.0, 500.0, 20},
                      DpCase{64, 6, 900.0, 50.0, 45}));

TEST(SolveSimpleDpTest, ExtendedPenaltyPricesHarderNearZeroRemaining) {
  // §3.3: with the (n + alpha) * Penalty terminal form, even one leftover
  // task is expensive, so the endgame prices for small n rise relative to
  // the plain linear penalty.
  auto actions = ActionSet::FromPriceGrid(40, PaperAcceptance()).value();
  DeadlineProblem linear = SmallProblem();
  DeadlineProblem extended = SmallProblem();
  extended.extra_penalty_alpha = 10.0;
  const auto lambdas = ConstantLambdas(6, 400.0);
  auto plan_linear = SolveSimpleDp(linear, lambdas, actions).value();
  auto plan_extended = SolveSimpleDp(extended, lambdas, actions).value();
  // At the last interval with one task left, the extended penalty must not
  // price lower, and the objective strictly exceeds the linear one.
  const int last = linear.num_intervals - 1;
  EXPECT_GE(plan_extended.PriceAt(1, last).value(),
            plan_linear.PriceAt(1, last).value());
  EXPECT_GT(plan_extended.TotalObjective(), plan_linear.TotalObjective());
}

TEST(SolveSimpleDpTest, PenaltyZeroMeansNeverPay) {
  // With no terminal penalty there is no reason to pay anything: the
  // optimal policy prices at the cheapest action everywhere.
  auto actions = ActionSet::FromPriceGrid(20, PaperAcceptance()).value();
  DeadlineProblem p = SmallProblem();
  p.penalty_cents = 0.0;
  auto plan = SolveSimpleDp(p, ConstantLambdas(6, 500.0), actions).value();
  for (int t = 0; t < p.num_intervals; ++t) {
    for (int n = 1; n <= p.num_tasks; ++n) {
      ASSERT_EQ(plan.ActionIndexAt(n, t).value(), 0);
    }
  }
  EXPECT_DOUBLE_EQ(plan.TotalObjective(), 0.0);
}

TEST(SolveSimpleDpTest, PenaltyBelowCheapestPriceStillNeverPays) {
  // If finishing a task costs more than abandoning it, the optimizer
  // abandons: objective equals E[remaining] * penalty at the floor price...
  // but with price 0 available, tasks complete for free, so the objective
  // is bounded by what price 0 achieves.
  auto actions = ActionSet::FromPriceGrid(20, PaperAcceptance()).value();
  DeadlineProblem p = SmallProblem();
  p.penalty_cents = 0.5;  // half a cent per leftover
  auto plan = SolveSimpleDp(p, ConstantLambdas(6, 500.0), actions).value();
  for (int t = 0; t < p.num_intervals; ++t) {
    for (int n = 1; n <= p.num_tasks; ++n) {
      // Never pay a full cent to avoid half a cent of penalty.
      ASSERT_EQ(plan.ActionIndexAt(n, t).value(), 0);
    }
  }
}

TEST(TruncationErrorTest, Theorem1BoundHolds) {
  // Coarse truncation vs near-exact truncation: Theorem 1 bounds the error
  // of the coarse estimate by N * NT * C * epsilon.
  auto actions = ActionSet::FromPriceGrid(30, PaperAcceptance()).value();
  DeadlineProblem coarse = SmallProblem();
  coarse.truncation_epsilon = 1e-3;
  DeadlineProblem fine = SmallProblem();
  fine.truncation_epsilon = 1e-13;
  const auto lambdas = ConstantLambdas(6, 700.0);
  auto plan_coarse = SolveSimpleDp(coarse, lambdas, actions).value();
  auto plan_fine = SolveSimpleDp(fine, lambdas, actions).value();
  const double bound = coarse.num_tasks * coarse.num_intervals * 30.0 * 1e-3;
  EXPECT_NEAR(plan_coarse.TotalObjective(), plan_fine.TotalObjective(),
              bound + 1e-9);
}

TEST(DeadlinePlanTest, AccessorsValidateRanges) {
  auto actions = ActionSet::FromPriceGrid(10, PaperAcceptance()).value();
  DeadlineProblem p = SmallProblem();
  auto plan = SolveSimpleDp(p, ConstantLambdas(6, 100.0), actions).value();
  EXPECT_TRUE(plan.OptAt(-1, 0).status().IsOutOfRange());
  EXPECT_TRUE(plan.OptAt(0, 7).status().IsOutOfRange());
  EXPECT_TRUE(plan.ActionIndexAt(0, 0).status().IsInvalidArgument());
  EXPECT_TRUE(plan.ActionIndexAt(1, 6).status().IsOutOfRange());
  EXPECT_TRUE(plan.PriceAt(21, 0).status().IsOutOfRange());
  EXPECT_TRUE(plan.OptAt(0, 6).ok());
  EXPECT_TRUE(plan.PriceAt(20, 5).ok());
}

TEST(ActionSetTest, FromPriceGridShape) {
  auto actions = ActionSet::FromPriceGrid(15, PaperAcceptance()).value();
  ASSERT_EQ(actions.size(), 16u);
  EXPECT_DOUBLE_EQ(actions[0].cost_per_task_cents, 0.0);
  EXPECT_DOUBLE_EQ(actions[15].cost_per_task_cents, 15.0);
  EXPECT_TRUE(actions.uniform_unit_bundle());
  EXPECT_DOUBLE_EQ(actions.max_cost(), 15.0);
  for (size_t i = 1; i < actions.size(); ++i) {
    EXPECT_GT(actions[i].acceptance, actions[i - 1].acceptance);
  }
}

TEST(ActionSetTest, FromActionsSortsByAcceptance) {
  std::vector<PricingAction> raw{{4.0, 1, 0.7}, {1.0, 1, 0.2}, {2.0, 1, 0.5}};
  auto actions = ActionSet::FromActions(raw).value();
  EXPECT_DOUBLE_EQ(actions[0].acceptance, 0.2);
  EXPECT_DOUBLE_EQ(actions[2].acceptance, 0.7);
}

TEST(ActionSetTest, Validation) {
  EXPECT_TRUE(ActionSet::FromActions({}).status().IsInvalidArgument());
  EXPECT_TRUE(ActionSet::FromActions({{-1.0, 1, 0.5}}).status().IsInvalidArgument());
  EXPECT_TRUE(ActionSet::FromActions({{1.0, 0, 0.5}}).status().IsInvalidArgument());
  EXPECT_TRUE(ActionSet::FromActions({{1.0, 1, 1.5}}).status().IsInvalidArgument());
  EXPECT_TRUE(ActionSet::FromPriceGrid(-1, PaperAcceptance())
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace crowdprice::pricing
