// Remote serving tests: the network front-end must be a transparent skin
// over the in-process serving layer. Lifecycle misuse (double start/stop,
// post-stop traffic) is Status, never UB; Status codes cross the wire
// losslessly (a NotFound for an unknown campaign is NotFound at the
// client); concurrent connections share the wait-free read path; and the
// soak test replays a 256-campaign streaming schedule -- admits, hot
// swaps, and retirements mid-run -- through a loopback socket, asserting
// per-campaign outcomes bit-identical to FleetSimulator::RunStreaming on
// the same schedule.
//
// The soak draws its campaign mix from CROWDPRICE_TEST_SEED when set (the
// CI matrix runs several seeds); the bit-identity property must hold for
// every seed. The TSan CI job runs this binary to certify the server's
// accept/decide/control/drain lanes are race-free.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "choice/acceptance.h"
#include "engine/engine.h"
#include "market/fleet_simulator.h"
#include "market/session.h"
#include "market/simulator.h"
#include "net/client.h"
#include "net/server.h"
#include "pricing/fixed_price.h"
#include "serving/campaign_shard_map.h"
#include "util/rng.h"

namespace crowdprice::net {
namespace {

using market::ArrivalSchedule;
using market::CampaignSession;
using market::FleetOutcome;
using market::FleetSimulator;
using market::Offer;
using market::SimulationResult;
using market::SimulatorConfig;

uint64_t TestSeed() {
  const char* env = std::getenv("CROWDPRICE_TEST_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 2026;
}

// Acceptance that is simply min(1, c / 100): cheap and price-sensitive.
class LinearAcceptance final : public choice::AcceptanceFunction {
 public:
  double ProbabilityAt(double reward_cents) const override {
    return std::clamp(reward_cents / 100.0, 0.0, 1.0);
  }
};

engine::PolicyArtifact SmallDeadlineArtifact() {
  engine::DeadlineDpSpec spec;
  spec.problem.num_tasks = 20;
  spec.problem.num_intervals = 8;
  spec.problem.penalty_cents = 150.0;
  spec.interval_lambdas.assign(8, 60.0);
  spec.actions = pricing::ActionSet::FromPriceGrid(
                     30, choice::LogitAcceptance::Paper2014())
                     .value();
  return engine::Engine::Solve(spec).value();
}

/// Wall-clock hours -> bucket-edge index, mirroring the fleet event
/// loop's quantization (round up; epsilon keeps on-edge times there).
int64_t EdgeCeil(double hours, double bucket) {
  const auto edge = static_cast<int64_t>(std::ceil(hours / bucket - 1e-9));
  return edge < 0 ? 0 : edge;
}

void ExpectBitIdentical(const SimulationResult& got,
                        const SimulationResult& want, int index) {
  EXPECT_EQ(got.total_cost_cents, want.total_cost_cents)
      << "campaign " << index;
  EXPECT_EQ(got.tasks_assigned, want.tasks_assigned) << "campaign " << index;
  EXPECT_EQ(got.tasks_completed_by_horizon, want.tasks_completed_by_horizon);
  EXPECT_EQ(got.tasks_unassigned, want.tasks_unassigned);
  EXPECT_EQ(got.completion_time_hours, want.completion_time_hours);
  EXPECT_EQ(got.finished, want.finished);
  EXPECT_EQ(got.worker_arrivals, want.worker_arrivals);
  ASSERT_EQ(got.events.size(), want.events.size()) << "campaign " << index;
  for (size_t e = 0; e < got.events.size(); ++e) {
    EXPECT_EQ(got.events[e].time_hours, want.events[e].time_hours);
    EXPECT_EQ(got.events[e].tasks, want.events[e].tasks);
    EXPECT_EQ(got.events[e].cost_cents, want.events[e].cost_cents);
    EXPECT_EQ(got.events[e].group_size, want.events[e].group_size);
  }
  ASSERT_EQ(got.workers.size(), want.workers.size()) << "campaign " << index;
  for (size_t w = 0; w < got.workers.size(); ++w) {
    EXPECT_EQ(got.workers[w].first_accept_hours,
              want.workers[w].first_accept_hours);
    EXPECT_EQ(got.workers[w].hits, want.workers[w].hits);
    EXPECT_EQ(got.workers[w].tasks, want.workers[w].tasks);
    EXPECT_EQ(got.workers[w].correct, want.workers[w].correct);
    EXPECT_EQ(got.workers[w].true_accuracy, want.workers[w].true_accuracy);
  }
}

TEST(RemoteServingTest, LifecycleMisuseIsStatusNotUB) {
  auto map = serving::CampaignShardMap::Create(2);
  ASSERT_TRUE(map.ok());
  ServerOptions options;
  options.port = 0;  // Ephemeral.
  options.num_workers = 2;
  auto server = PricingServer::Create(&map.value(), options);
  ASSERT_TRUE(server.ok());

  EXPECT_FALSE(server->running());
  ASSERT_TRUE(server->Start().ok());
  EXPECT_TRUE(server->running());
  EXPECT_GT(server->port(), 0);

  // Double start and double stop are FailedPrecondition, not crashes.
  EXPECT_TRUE(server->Start().IsFailedPrecondition());
  ASSERT_TRUE(server->Stop().ok());
  EXPECT_FALSE(server->running());
  EXPECT_TRUE(server->Stop().IsFailedPrecondition());

  // The server restarts cleanly after a stop.
  ASSERT_TRUE(server->Start().ok());
  EXPECT_GT(server->port(), 0);
  ASSERT_TRUE(server->Stop().ok());

  // Creating a server over a null map is an error up front.
  EXPECT_TRUE(
      PricingServer::Create(static_cast<serving::CampaignShardMap*>(nullptr),
                            options)
          .status()
          .IsInvalidArgument());
}

TEST(RemoteServingTest, StatusCodesCrossTheWireLosslessly) {
  auto map = serving::CampaignShardMap::Create(2);
  ASSERT_TRUE(map.ok());
  ServerOptions options;
  options.port = 0;
  options.num_workers = 2;
  auto server = PricingServer::Create(&map.value(), options);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server->Start().ok());

  auto client = PricingClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());

  // Unknown campaign: the map's NotFound survives the wire with its
  // code and message intact.
  market::DecisionRequest request = market::DecisionRequest::Single(1.0, 5);
  const auto decide = client->Decide(424242, request);
  ASSERT_FALSE(decide.ok());
  EXPECT_TRUE(decide.status().IsNotFound());
  EXPECT_FALSE(decide.status().message().empty());
  EXPECT_TRUE(client->Retire(424242).IsNotFound());
  EXPECT_TRUE(client->Tick(424242, 1.0, 5).status().IsNotFound());

  // An invalid admit (no tasks) is InvalidArgument end to end.
  const auto artifact =
      std::make_shared<const engine::PolicyArtifact>(SmallDeadlineArtifact());
  serving::CampaignLimits bad;
  bad.total_tasks = 0;
  bad.deadline_hours = 4.0;
  EXPECT_TRUE(client->AdmitShared(artifact, bad).status().IsInvalidArgument());

  // A mixed batch: per-request failures ride each response's status
  // while the batch round trip itself succeeds.
  serving::CampaignLimits limits;
  limits.total_tasks = 20;
  limits.deadline_hours = 8.0;
  const auto id = client->AdmitShared(artifact, limits);
  ASSERT_TRUE(id.ok());
  std::vector<serving::DecideRequest> batch;
  batch.push_back(serving::DecideRequest::Single(*id, 1.0, 10));
  batch.push_back(serving::DecideRequest::Single(999999, 1.0, 10));
  const auto responses = client->DecideBatch(batch);
  ASSERT_TRUE(responses.ok());
  ASSERT_EQ(responses->size(), 2u);
  EXPECT_TRUE((*responses)[0].status.ok());
  EXPECT_FALSE((*responses)[0].sheet.offers.empty());
  EXPECT_TRUE((*responses)[1].status.IsNotFound());

  // The remote sheet is the in-process sheet, bit for bit.
  const auto local = map->Decide(*id, request);
  ASSERT_TRUE(local.ok());
  const auto remote = client->Decide(*id, request);
  ASSERT_TRUE(remote.ok());
  ASSERT_EQ(remote->offers.size(), local->offers.size());
  for (size_t i = 0; i < remote->offers.size(); ++i) {
    EXPECT_EQ(remote->offers[i].per_task_reward_cents,
              local->offers[i].per_task_reward_cents);
    EXPECT_EQ(remote->offers[i].group_size, local->offers[i].group_size);
  }

  ASSERT_TRUE(server->Stop().ok());

  // Post-stop traffic on the old connection errors; it must not crash.
  EXPECT_FALSE(client->Decide(*id, request).ok());
}

// Several connections hammer the decide path while the control plane
// admits and retires other campaigns through its own connection: the
// serve path answers concurrently off RCU snapshots, so the stable
// campaign's sheet never wavers. (The TSan job leans on this test.)
TEST(RemoteServingTest, ConcurrentConnectionsShareTheWaitFreeReadPath) {
  auto map = serving::CampaignShardMap::Create(4);
  ASSERT_TRUE(map.ok());
  ServerOptions options;
  options.port = 0;
  options.num_workers = 4;
  auto server = PricingServer::Create(&map.value(), options);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server->Start().ok());
  const uint16_t port = server->port();

  const auto artifact =
      std::make_shared<const engine::PolicyArtifact>(SmallDeadlineArtifact());
  serving::CampaignLimits limits;
  limits.total_tasks = 20;
  limits.deadline_hours = 8.0;
  auto control = PricingClient::Connect("127.0.0.1", port);
  ASSERT_TRUE(control.ok());
  const auto stable_id = control->AdmitShared(artifact, limits);
  ASSERT_TRUE(stable_id.ok());
  const market::DecisionRequest request =
      market::DecisionRequest::Single(1.0, 10);
  const auto want = map->Decide(*stable_id, request);
  ASSERT_TRUE(want.ok());

  constexpr int kThreads = 4;
  constexpr int kDecidesPerThread = 64;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      auto client = PricingClient::Connect("127.0.0.1", port);
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kDecidesPerThread; ++i) {
        const auto sheet = client->Decide(*stable_id, request);
        if (!sheet.ok()) {
          failures.fetch_add(1);
          return;
        }
        if (sheet->offers.size() != want->offers.size() ||
            sheet->offers[0].per_task_reward_cents !=
                want->offers[0].per_task_reward_cents) {
          mismatches.fetch_add(1);
        }
      }
      static_cast<void>(t);
    });
  }

  // Control churn concurrent with the reads: admit + retire a stream of
  // short-lived campaigns over a separate connection.
  for (int i = 0; i < 32; ++i) {
    const auto id = control->AdmitShared(artifact, limits);
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(control->Retire(*id).ok());
  }
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(failures.load(), 0);
  const ServerStats stats = server->stats();
  EXPECT_GE(stats.connections_accepted, static_cast<uint64_t>(kThreads + 1));
  EXPECT_GE(stats.decide_requests,
            static_cast<uint64_t>(kThreads * kDecidesPerThread));
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(map->live_campaigns(), 1u);
  ASSERT_TRUE(server->Stop().ok());
}

// The soak: a 256-campaign streaming schedule -- staggered admissions,
// hot artifact swaps, and mid-run retirements -- replayed through the
// loopback socket, one RemoteController-backed session per campaign,
// against the identical schedule run in-process by RunStreaming. Every
// SimulationResult field must match bit for bit, as must the lifecycle
// states, because the server rebases requests onto the campaign clock
// exactly as the in-process map does.
TEST(RemoteSoakTest, StreamingScheduleBitIdenticalOverLoopback) {
  const auto rate =
      arrival::PiecewiseConstantRate::Create({40.0, 20.0, 60.0, 30.0, 50.0},
                                             0.5)
          .value();
  const double bucket = 0.5;
  LinearAcceptance acceptance;
  const engine::PolicyArtifact solved = SmallDeadlineArtifact();
  const auto shared = std::make_shared<const engine::PolicyArtifact>(solved);
  pricing::FixedPriceSolution fixed;
  fixed.price_cents = 77;
  const auto swap_artifact = std::make_shared<const engine::PolicyArtifact>(
      engine::PolicyArtifact(fixed));
  constexpr int kCampaigns = 256;
  const uint64_t seed = TestSeed();

  struct Spec {
    SimulatorConfig config;
    double admit_hours = 0.0;
    double swap_hours = -1.0;    ///< < 0: no swap event.
    double retire_hours = -1.0;  ///< < 0: no retirement event.
  };
  std::vector<Spec> specs;
  {
    Rng scheduler(seed);
    for (int i = 0; i < kCampaigns; ++i) {
      Spec spec;
      spec.config.total_tasks = 3 + i % 7;
      spec.config.horizon_hours = 2.0 + 0.5 * (i % 4);
      spec.config.decision_interval_hours = 1.0;
      spec.config.service_minutes_per_task = (i % 5 == 0) ? 1.5 : 0.0;
      spec.admit_hours =
          0.5 * static_cast<double>(scheduler.UniformInt(0, 16));
      // Mid-life events on a slice of the fleet; some retirements land
      // after the natural end, exercising the finished-wins-tie rule.
      if (i % 4 == 1) spec.swap_hours = spec.admit_hours + 1.0;
      if (i % 5 == 2) {
        spec.retire_hours = spec.admit_hours + 1.0 + 0.5 * (i % 6);
      }
      specs.push_back(spec);
    }
  }

  // In-process reference: the same schedule through RunStreaming.
  std::vector<FleetOutcome> want;
  {
    FleetSimulator fleet = FleetSimulator::Create(4).value();
    ArrivalSchedule schedule;
    Rng master(seed + 1);
    for (const Spec& spec : specs) {
      Rng child = master.Fork();
      const size_t entry =
          schedule
              .AdmitShared(spec.admit_hours, shared, spec.config, acceptance,
                           child)
              .value();
      if (spec.swap_hours >= 0.0) {
        ASSERT_TRUE(
            schedule.SwapArtifactAt(entry, spec.swap_hours, swap_artifact)
                .ok());
      }
      if (spec.retire_hours >= 0.0) {
        ASSERT_TRUE(schedule.RetireAt(entry, spec.retire_hours).ok());
      }
    }
    want = fleet.RunStreaming(rate, std::move(schedule)).value();
    ASSERT_EQ(want.size(), specs.size());
  }

  // Remote replay: one session per campaign, priced across the wire.
  auto map = serving::CampaignShardMap::Create(4);
  ASSERT_TRUE(map.ok());
  ServerOptions options;
  options.port = 0;
  options.num_workers = 4;
  auto server = PricingServer::Create(&map.value(), options);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server->Start().ok());
  auto client = PricingClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());

  size_t want_event_retired = 0;
  Rng master(seed + 1);
  for (size_t i = 0; i < specs.size(); ++i) {
    const Spec& spec = specs[i];
    Rng child = master.Fork();
    const int64_t admit_edge = EdgeCeil(spec.admit_hours, bucket);
    const double admit_wall = static_cast<double>(admit_edge) * bucket;

    serving::CampaignLimits limits;
    limits.total_tasks = spec.config.total_tasks;
    limits.deadline_hours = spec.config.horizon_hours;
    limits.admit_hours = admit_wall;
    const auto id = client->AdmitShared(shared, limits);
    ASSERT_TRUE(id.ok()) << id.status().ToString();

    RemoteController controller(&client.value(), *id);
    auto session = CampaignSession::CreateAt(spec.config, rate, acceptance,
                                             controller, child, admit_wall);
    ASSERT_TRUE(session.ok()) << session.status().ToString();

    // Events fire at the same quantized edges the fleet loop uses, swap
    // before retire when both land on one edge (schedule emission order).
    struct Event {
      int64_t edge = 0;
      bool retire = false;
    };
    std::vector<Event> events;
    if (spec.swap_hours >= 0.0) {
      events.push_back(
          {std::max(EdgeCeil(spec.swap_hours, bucket), admit_edge), false});
    }
    if (spec.retire_hours >= 0.0) {
      events.push_back(
          {std::max(EdgeCeil(spec.retire_hours, bucket), admit_edge), true});
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const Event& a, const Event& b) {
                       return a.edge < b.edge;
                     });

    bool event_retired = false;
    serving::CampaignState final_state = serving::CampaignState::kLive;
    for (const Event& event : events) {
      const double edge_wall = static_cast<double>(event.edge) * bucket;
      ASSERT_TRUE(session->AdvanceUntil(edge_wall).ok());
      // A campaign that completes or expires on (or before) the event's
      // edge wins the tie: the event is skipped, as in the fleet loop.
      if (session->done()) break;
      if (event.retire) {
        ASSERT_TRUE(client->Retire(*id).ok());
        ASSERT_TRUE(session->Curtail(edge_wall).ok());
        final_state = serving::CampaignState::kRetiredExplicit;
        event_retired = true;
        break;
      }
      ASSERT_TRUE(client->SwapArtifactShared(*id, swap_artifact).ok());
      // No client-side rebind: the RemoteController tracks the campaign
      // id, and the server already decides off the swapped policy.
    }
    if (!event_retired) {
      ASSERT_TRUE(session->AdvanceUntil(session->end_hours()).ok());
      const auto ticked = client->Tick(*id, session->end_hours(),
                                       session->remaining_tasks());
      ASSERT_TRUE(ticked.ok()) << ticked.status().ToString();
      final_state = *ticked;
    } else {
      ++want_event_retired;
    }

    const auto got = std::move(session.value()).TakeResult();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(want[i].admit_hours, admit_wall) << "campaign " << i;
    EXPECT_EQ(want[i].final_state, final_state) << "campaign " << i;
    ExpectBitIdentical(*got, want[i].result, static_cast<int>(i));
  }

  // Lifecycle churn reconciles with the reference run.
  size_t reference_event_retired = 0;
  for (const FleetOutcome& outcome : want) {
    if (outcome.final_state == serving::CampaignState::kRetiredExplicit) {
      ++reference_event_retired;
    }
  }
  EXPECT_EQ(want_event_retired, reference_event_retired);
  EXPECT_EQ(map->live_campaigns(), 0u);
  const serving::ShardStats total = map->TotalStats();
  EXPECT_EQ(total.admitted, specs.size());
  EXPECT_EQ(total.retired_explicit, want_event_retired);
  EXPECT_EQ(total.retired_completed + total.retired_deadline +
                total.retired_explicit,
            specs.size());
  EXPECT_GT(total.decides, 0u);
  ASSERT_TRUE(server->Stop().ok());
}

}  // namespace
}  // namespace crowdprice::net
