#include "stats/regression.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/distributions.h"
#include "util/rng.h"

namespace crowdprice::stats {
namespace {

TEST(FitLinearTest, Validation) {
  EXPECT_TRUE(FitLinear({1.0}, {1.0}).status().IsInvalidArgument());
  EXPECT_TRUE(FitLinear({1.0, 2.0}, {1.0}).status().IsInvalidArgument());
  EXPECT_TRUE(FitLinear({2.0, 2.0}, {1.0, 3.0}).status().IsInvalidArgument());
}

TEST(FitLinearTest, ExactLine) {
  auto fit = FitLinear({0.0, 1.0, 2.0, 3.0}, {1.0, 3.0, 5.0, 7.0});
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 2.0, 1e-12);
  EXPECT_NEAR(fit->intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-12);
  EXPECT_EQ(fit->n, 4);
}

TEST(FitLinearTest, ConstantY) {
  auto fit = FitLinear({0.0, 1.0, 2.0}, {4.0, 4.0, 4.0});
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 0.0, 1e-12);
  EXPECT_NEAR(fit->intercept, 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(fit->r_squared, 1.0);
}

TEST(FitLinearTest, RecoversSlopeUnderNoise) {
  Rng rng(101);
  std::vector<double> xs, ys;
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.NextDouble() * 10.0;
    xs.push_back(x);
    ys.push_back(3.0 * x - 2.0 + SampleNormal(rng, 0.0, 0.5));
  }
  auto fit = FitLinear(xs, ys);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 3.0, 0.02);
  EXPECT_NEAR(fit->intercept, -2.0, 0.1);
  EXPECT_GT(fit->r_squared, 0.99);
}

TEST(FitLinearTest, RSquaredDropsWithNoise) {
  Rng rng(102);
  std::vector<double> xs, ys;
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.NextDouble();
    xs.push_back(x);
    ys.push_back(x + SampleNormal(rng, 0.0, 3.0));  // noise dominates
  }
  auto fit = FitLinear(xs, ys);
  ASSERT_TRUE(fit.ok());
  EXPECT_LT(fit->r_squared, 0.1);
}

TEST(FitLogitAcceptanceTest, Validation) {
  EXPECT_TRUE(
      FitLogitAcceptance({1.0, 2.0}, {0.1, 0.2}, 0.0).status().IsInvalidArgument());
  EXPECT_TRUE(FitLogitAcceptance({1.0, 2.0}, {0.1, 0.2}, 100.0, 0.7)
                  .status()
                  .IsInvalidArgument());
}

TEST(FitLogitAcceptanceTest, RecoversEq13Parameters) {
  // Generate exact p(c) from the paper's Eq. 13 and re-fit.
  const double s = 15.0, b = -0.39, m = 2000.0;
  std::vector<double> rewards, probs;
  for (int c = 0; c <= 50; c += 5) {
    const double z = c / s - b;
    rewards.push_back(static_cast<double>(c));
    probs.push_back(std::exp(z) / (std::exp(z) + m));
  }
  auto fit = FitLogitAcceptance(rewards, probs, m);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->s, s, 0.02);
  EXPECT_NEAR(fit->b, b, 0.01);
  EXPECT_GT(fit->r_squared, 0.9999);
}

TEST(FitLogitAcceptanceTest, BAbsorbsDifferentM) {
  // Fitting with a different fixed M shifts b by the log-ratio: only
  // b + ln M is identifiable.
  const double s = 10.0, b = 1.0, m_true = 500.0;
  std::vector<double> rewards, probs;
  for (int c = 0; c <= 40; c += 4) {
    const double z = c / s - b;
    rewards.push_back(static_cast<double>(c));
    probs.push_back(std::exp(z) / (std::exp(z) + m_true));
  }
  auto fit = FitLogitAcceptance(rewards, probs, /*fixed_m=*/1000.0);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->s, s, 0.05);
  EXPECT_NEAR(fit->b + std::log(1000.0), b + std::log(m_true), 0.02);
}

TEST(FitLogitAcceptanceTest, DecreasingDataRejected) {
  auto fit = FitLogitAcceptance({0.0, 10.0, 20.0}, {0.3, 0.2, 0.1}, 100.0);
  EXPECT_TRUE(fit.status().IsNumericError());
}

TEST(FitLogitAcceptanceTest, SmallPRegimeApproximation) {
  // In the small-p regime logit(p) ~ ln(p) + p, so the exponential form the
  // Table-2 derivation uses agrees with the logit fit.
  const double s = 15.0, b = -0.39, m = 2000.0;
  std::vector<double> rewards, probs;
  for (int c = 0; c <= 30; c += 3) {
    const double z = c / s - b;
    rewards.push_back(static_cast<double>(c));
    probs.push_back(std::exp(z) / m);  // pure exponential (small-p) form
  }
  auto fit = FitLogitAcceptance(rewards, probs, m);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->s, s, 0.25);
}

}  // namespace
}  // namespace crowdprice::stats
