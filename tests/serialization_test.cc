#include "pricing/serialization.h"

#include <gtest/gtest.h>

#include "choice/acceptance.h"
#include "engine/engine.h"
#include "pricing/deadline_dp.h"
#include "pricing/policy_eval.h"
#include "util/rng.h"

#include "test_util.h"

namespace crowdprice::pricing {
namespace {

DeadlinePlan SolveSample(int n = 15, int nt = 5, double alpha = 0.0) {
  auto acc = choice::LogitAcceptance::Paper2014();
  auto actions = ActionSet::FromPriceGrid(25, acc).value();
  DeadlineProblem p;
  p.num_tasks = n;
  p.num_intervals = nt;
  p.penalty_cents = 321.5;
  p.extra_penalty_alpha = alpha;
  p.truncation_epsilon = 1e-10;
  std::vector<double> lambdas;
  for (int t = 0; t < nt; ++t) lambdas.push_back(200.0 + 37.0 * t);
  return SolveImprovedDp(p, lambdas, actions).value();
}

TEST(SerializationTest, RoundTripIsBitExact) {
  const DeadlinePlan plan = SolveSample();
  const std::string text = SerializePlan(plan);
  auto restored = DeserializePlan(text);
  ASSERT_TRUE(restored.ok()) << restored.status();
  const DeadlineProblem& p = plan.problem();
  EXPECT_EQ(restored->problem().num_tasks, p.num_tasks);
  EXPECT_EQ(restored->problem().num_intervals, p.num_intervals);
  EXPECT_DOUBLE_EQ(restored->problem().penalty_cents, p.penalty_cents);
  EXPECT_DOUBLE_EQ(restored->problem().truncation_epsilon, p.truncation_epsilon);
  ASSERT_EQ(restored->actions().size(), plan.actions().size());
  for (size_t i = 0; i < plan.actions().size(); ++i) {
    EXPECT_DOUBLE_EQ(restored->actions()[i].cost_per_task_cents,
                     plan.actions()[i].cost_per_task_cents);
    EXPECT_DOUBLE_EQ(restored->actions()[i].acceptance,
                     plan.actions()[i].acceptance);
    EXPECT_EQ(restored->actions()[i].bundle, plan.actions()[i].bundle);
  }
  for (int n = 0; n <= p.num_tasks; ++n) {
    for (int t = 0; t <= p.num_intervals; ++t) {
      ASSERT_DOUBLE_EQ(restored->OptUnchecked(n, t), plan.OptUnchecked(n, t));
    }
  }
  for (int n = 1; n <= p.num_tasks; ++n) {
    for (int t = 0; t < p.num_intervals; ++t) {
      ASSERT_EQ(restored->ActionIndexUnchecked(n, t),
                plan.ActionIndexUnchecked(n, t));
    }
  }
  ASSERT_EQ(restored->interval_lambdas().size(), plan.interval_lambdas().size());
  for (size_t i = 0; i < plan.interval_lambdas().size(); ++i) {
    EXPECT_DOUBLE_EQ(restored->interval_lambdas()[i], plan.interval_lambdas()[i]);
  }
}

TEST(SerializationTest, RestoredPlanEvaluatesIdentically) {
  const DeadlinePlan plan = SolveSample(20, 6);
  auto restored = DeserializePlan(SerializePlan(plan)).value();
  auto e1 = EvaluatePolicyNominal(plan).value();
  auto e2 = EvaluatePolicyNominal(restored).value();
  EXPECT_DOUBLE_EQ(e1.expected_cost_cents, e2.expected_cost_cents);
  EXPECT_DOUBLE_EQ(e1.expected_remaining, e2.expected_remaining);
}

TEST(SerializationTest, ExtendedPenaltySurvives) {
  const DeadlinePlan plan = SolveSample(8, 3, /*alpha=*/2.5);
  auto restored = DeserializePlan(SerializePlan(plan)).value();
  EXPECT_DOUBLE_EQ(restored.problem().extra_penalty_alpha, 2.5);
  EXPECT_DOUBLE_EQ(restored.problem().TerminalPenalty(2),
                   plan.problem().TerminalPenalty(2));
}

TEST(SerializationTest, RejectsBadHeader) {
  EXPECT_TRUE(DeserializePlan("not-a-plan\n").status().IsInvalidArgument());
  EXPECT_TRUE(DeserializePlan("").status().IsInvalidArgument());
  EXPECT_TRUE(DeserializePlan("crowdprice-plan v99\n").status().IsInvalidArgument());
}

TEST(SerializationTest, RejectsTruncation) {
  const std::string text = SerializePlan(SolveSample());
  // Chop the text at various points; every prefix must fail cleanly.
  for (size_t frac = 1; frac <= 9; ++frac) {
    const std::string prefix = text.substr(0, text.size() * frac / 10);
    auto r = DeserializePlan(prefix);
    EXPECT_FALSE(r.ok()) << "prefix fraction " << frac;
  }
}

TEST(SerializationTest, RejectsCorruptedPolicyIndex) {
  std::string text = SerializePlan(SolveSample());
  // Replace the policy section's first row with an out-of-range index.
  const size_t pos = text.find("policy\n");
  ASSERT_NE(pos, std::string::npos);
  const size_t row_start = pos + 7;
  const size_t row_end = text.find('\n', row_start);
  std::string row = text.substr(row_start, row_end - row_start);
  // 25-cent grid => 26 actions; 999 is out of range.
  row.replace(0, row.find(' '), "999");
  text = text.substr(0, row_start) + row + text.substr(row_end);
  EXPECT_TRUE(DeserializePlan(text).status().IsInvalidArgument());
}

TEST(SerializationTest, RejectsGarbageNumbers) {
  std::string text = SerializePlan(SolveSample());
  const size_t pos = text.find("0x");  // first hex float
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 2, "zz");
  EXPECT_FALSE(DeserializePlan(text).ok());
}

TEST(SerializationTest, RandomMutationsNeverCrash) {
  // Fuzz-style robustness: flip bytes, truncate, and duplicate slices of a
  // valid plan; the parser must return (ok or error) without crashing, and
  // anything it accepts must be a structurally valid plan.
  const std::string text = SerializePlan(SolveSample(10, 4));
  Rng rng(0xF00D);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = text;
    const int edits = static_cast<int>(rng.UniformInt(1, 8));
    for (int e = 0; e < edits; ++e) {
      switch (rng.UniformInt(0, 2)) {
        case 0: {  // flip a byte
          const size_t pos =
              static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
          mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
          break;
        }
        case 1: {  // truncate
          const size_t pos =
              static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
          mutated.resize(pos);
          break;
        }
        default: {  // duplicate a slice
          if (mutated.size() < 4) break;
          const size_t from =
              static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 2));
          const size_t len = static_cast<size_t>(
              rng.UniformInt(1, static_cast<int64_t>(mutated.size() - from - 1)));
          mutated.insert(from, mutated.substr(from, len));
          break;
        }
      }
      if (mutated.empty()) break;
    }
    auto result = DeserializePlan(mutated);
    if (result.ok()) {
      // Whatever parsed must be internally consistent enough to evaluate.
      auto eval = EvaluatePolicyNominal(*result);
      (void)eval;
    }
  }
  SUCCEED();
}

TEST(SerializationTest, MultiTypeArtifactRoundTripIsBitExact) {
  engine::MultiTypeSpec spec;
  spec.s1 = 10.0;
  spec.b1 = 1.3;
  spec.s2 = 12.0;
  spec.b2 = 0.9;
  spec.m = 180.0;
  spec.problem.num_tasks_1 = 5;
  spec.problem.num_tasks_2 = 4;
  spec.problem.num_intervals = 3;
  spec.problem.penalty_1_cents = 130.5;
  spec.problem.penalty_2_cents = 110.25;
  spec.problem.max_price_cents = 16;
  spec.problem.price_stride = 4;
  spec.interval_lambdas = {21.5, 33.75, 18.0};
  const engine::PolicyArtifact artifact =
      engine::Engine::Solve(spec).value();
  const MultiTypePlan& plan = *artifact.multitype_plan().value();

  const std::string text = artifact.Serialize().value();
  auto restored = engine::PolicyArtifact::Deserialize(text);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->kind(), engine::PolicyKind::kMultiType);
  const MultiTypePlan& reloaded = *restored->multitype_plan().value();

  // Bit-exact: re-serializing reproduces the text, and every table entry,
  // lambda and problem field survives unchanged.
  EXPECT_EQ(restored->Serialize().value(), text);
  EXPECT_EQ(reloaded.problem().num_tasks_1, plan.problem().num_tasks_1);
  EXPECT_EQ(reloaded.problem().num_tasks_2, plan.problem().num_tasks_2);
  EXPECT_EQ(reloaded.problem().price_stride, plan.problem().price_stride);
  ASSERT_EQ(reloaded.interval_lambdas().size(),
            plan.interval_lambdas().size());
  for (size_t i = 0; i < plan.interval_lambdas().size(); ++i) {
    ASSERT_DOUBLE_EQ(reloaded.interval_lambdas()[i],
                     plan.interval_lambdas()[i]);
  }
  for (int n1 = 0; n1 <= 5; ++n1) {
    for (int n2 = 0; n2 <= 4; ++n2) {
      for (int t = 0; t <= 3; ++t) {
        ASSERT_DOUBLE_EQ(reloaded.OptAt(n1, n2, t).value(),
                         plan.OptAt(n1, n2, t).value());
        if (t < 3 && n1 + n2 > 0) {
          ASSERT_EQ(reloaded.PricesAt(n1, n2, t).value(),
                    plan.PricesAt(n1, n2, t).value());
        }
      }
    }
  }
  EXPECT_DOUBLE_EQ(reloaded.TotalObjective(), plan.TotalObjective());
}

TEST(SerializationTest, AdaptiveArtifactCheckpointsItsBelief) {
  auto acc = choice::LogitAcceptance::Paper2014();
  engine::AdaptiveSpec spec;
  spec.problem.num_tasks = 18;
  spec.problem.num_intervals = 5;
  spec.problem.penalty_cents = 140.5;
  spec.problem.extra_penalty_alpha = 1.25;
  spec.believed_lambdas = {210.0, 180.5, 240.0, 199.75, 230.0};
  spec.actions = ActionSet::FromPriceGrid(20, acc).value();
  spec.horizon_hours = 10.0;
  spec.options.resolve_every = 2;
  spec.options.prior_weight = 0.375;
  spec.options.min_factor = 0.5;
  spec.options.max_factor = 3.0;
  const engine::PolicyArtifact artifact =
      engine::Engine::Solve(spec).value();

  const std::string text = artifact.Serialize().value();
  auto restored = engine::PolicyArtifact::Deserialize(text);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->kind(), engine::PolicyKind::kAdaptive);
  // Bit-exact belief checkpoint: the round trip reproduces the text...
  EXPECT_EQ(restored->Serialize().value(), text);
  // ...and a controller instantiated from the reloaded priors opens with
  // the same decision as one from the original artifact.
  auto a = artifact.MakeAdaptiveController().value();
  auto b = restored->MakeAdaptiveController().value();
  const auto offer_a = test_util::SingleOffer(a, 0.0, 18).value();
  const auto offer_b = test_util::SingleOffer(b, 0.0, 18).value();
  EXPECT_DOUBLE_EQ(offer_a.per_task_reward_cents,
                   offer_b.per_task_reward_cents);
  EXPECT_EQ(offer_a.group_size, offer_b.group_size);
}

TEST(SerializationTest, BundledActionsRoundTrip) {
  std::vector<PricingAction> raw{{0.04, 50, 0.001}, {0.1, 20, 0.004},
                                 {0.2, 10, 0.012}};
  auto actions = ActionSet::FromActions(raw).value();
  DeadlineProblem p;
  p.num_tasks = 30;
  p.num_intervals = 4;
  p.penalty_cents = 5.0;
  std::vector<double> lambdas(4, 400.0);
  auto plan = SolveSimpleDp(p, lambdas, actions).value();
  auto restored = DeserializePlan(SerializePlan(plan)).value();
  for (int n = 1; n <= 30; ++n) {
    for (int t = 0; t < 4; ++t) {
      ASSERT_EQ(restored.ActionIndexUnchecked(n, t),
                plan.ActionIndexUnchecked(n, t));
    }
  }
  EXPECT_FALSE(restored.actions().uniform_unit_bundle());
}

}  // namespace
}  // namespace crowdprice::pricing
