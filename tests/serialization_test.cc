#include "pricing/serialization.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "choice/acceptance.h"
#include "engine/engine.h"
#include "market/controller.h"
#include "net/wire.h"
#include "pricing/deadline_dp.h"
#include "pricing/policy_eval.h"
#include "util/rng.h"

#include "test_util.h"

namespace crowdprice::pricing {
namespace {

DeadlinePlan SolveSample(int n = 15, int nt = 5, double alpha = 0.0) {
  auto acc = choice::LogitAcceptance::Paper2014();
  auto actions = ActionSet::FromPriceGrid(25, acc).value();
  DeadlineProblem p;
  p.num_tasks = n;
  p.num_intervals = nt;
  p.penalty_cents = 321.5;
  p.extra_penalty_alpha = alpha;
  p.truncation_epsilon = 1e-10;
  std::vector<double> lambdas;
  for (int t = 0; t < nt; ++t) lambdas.push_back(200.0 + 37.0 * t);
  return SolveImprovedDp(p, lambdas, actions).value();
}

TEST(SerializationTest, RoundTripIsBitExact) {
  const DeadlinePlan plan = SolveSample();
  const std::string text = SerializePlan(plan);
  auto restored = DeserializePlan(text);
  ASSERT_TRUE(restored.ok()) << restored.status();
  const DeadlineProblem& p = plan.problem();
  EXPECT_EQ(restored->problem().num_tasks, p.num_tasks);
  EXPECT_EQ(restored->problem().num_intervals, p.num_intervals);
  EXPECT_DOUBLE_EQ(restored->problem().penalty_cents, p.penalty_cents);
  EXPECT_DOUBLE_EQ(restored->problem().truncation_epsilon, p.truncation_epsilon);
  ASSERT_EQ(restored->actions().size(), plan.actions().size());
  for (size_t i = 0; i < plan.actions().size(); ++i) {
    EXPECT_DOUBLE_EQ(restored->actions()[i].cost_per_task_cents,
                     plan.actions()[i].cost_per_task_cents);
    EXPECT_DOUBLE_EQ(restored->actions()[i].acceptance,
                     plan.actions()[i].acceptance);
    EXPECT_EQ(restored->actions()[i].bundle, plan.actions()[i].bundle);
  }
  for (int n = 0; n <= p.num_tasks; ++n) {
    for (int t = 0; t <= p.num_intervals; ++t) {
      ASSERT_DOUBLE_EQ(restored->OptUnchecked(n, t), plan.OptUnchecked(n, t));
    }
  }
  for (int n = 1; n <= p.num_tasks; ++n) {
    for (int t = 0; t < p.num_intervals; ++t) {
      ASSERT_EQ(restored->ActionIndexUnchecked(n, t),
                plan.ActionIndexUnchecked(n, t));
    }
  }
  ASSERT_EQ(restored->interval_lambdas().size(), plan.interval_lambdas().size());
  for (size_t i = 0; i < plan.interval_lambdas().size(); ++i) {
    EXPECT_DOUBLE_EQ(restored->interval_lambdas()[i], plan.interval_lambdas()[i]);
  }
}

TEST(SerializationTest, RestoredPlanEvaluatesIdentically) {
  const DeadlinePlan plan = SolveSample(20, 6);
  auto restored = DeserializePlan(SerializePlan(plan)).value();
  auto e1 = EvaluatePolicyNominal(plan).value();
  auto e2 = EvaluatePolicyNominal(restored).value();
  EXPECT_DOUBLE_EQ(e1.expected_cost_cents, e2.expected_cost_cents);
  EXPECT_DOUBLE_EQ(e1.expected_remaining, e2.expected_remaining);
}

TEST(SerializationTest, ExtendedPenaltySurvives) {
  const DeadlinePlan plan = SolveSample(8, 3, /*alpha=*/2.5);
  auto restored = DeserializePlan(SerializePlan(plan)).value();
  EXPECT_DOUBLE_EQ(restored.problem().extra_penalty_alpha, 2.5);
  EXPECT_DOUBLE_EQ(restored.problem().TerminalPenalty(2),
                   plan.problem().TerminalPenalty(2));
}

TEST(SerializationTest, RejectsBadHeader) {
  EXPECT_TRUE(DeserializePlan("not-a-plan\n").status().IsInvalidArgument());
  EXPECT_TRUE(DeserializePlan("").status().IsInvalidArgument());
  EXPECT_TRUE(DeserializePlan("crowdprice-plan v99\n").status().IsInvalidArgument());
}

TEST(SerializationTest, RejectsTruncation) {
  const std::string text = SerializePlan(SolveSample());
  // Chop the text at various points; every prefix must fail cleanly.
  for (size_t frac = 1; frac <= 9; ++frac) {
    const std::string prefix = text.substr(0, text.size() * frac / 10);
    auto r = DeserializePlan(prefix);
    EXPECT_FALSE(r.ok()) << "prefix fraction " << frac;
  }
}

TEST(SerializationTest, RejectsCorruptedPolicyIndex) {
  std::string text = SerializePlan(SolveSample());
  // Replace the policy section's first row with an out-of-range index.
  const size_t pos = text.find("policy\n");
  ASSERT_NE(pos, std::string::npos);
  const size_t row_start = pos + 7;
  const size_t row_end = text.find('\n', row_start);
  std::string row = text.substr(row_start, row_end - row_start);
  // 25-cent grid => 26 actions; 999 is out of range.
  row.replace(0, row.find(' '), "999");
  text = text.substr(0, row_start) + row + text.substr(row_end);
  EXPECT_TRUE(DeserializePlan(text).status().IsInvalidArgument());
}

TEST(SerializationTest, RejectsGarbageNumbers) {
  std::string text = SerializePlan(SolveSample());
  const size_t pos = text.find("0x");  // first hex float
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 2, "zz");
  EXPECT_FALSE(DeserializePlan(text).ok());
}

TEST(SerializationTest, RandomMutationsNeverCrash) {
  // Fuzz-style robustness: flip bytes, truncate, and duplicate slices of a
  // valid plan; the parser must return (ok or error) without crashing, and
  // anything it accepts must be a structurally valid plan.
  const std::string text = SerializePlan(SolveSample(10, 4));
  Rng rng(0xF00D);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = text;
    const int edits = static_cast<int>(rng.UniformInt(1, 8));
    for (int e = 0; e < edits; ++e) {
      switch (rng.UniformInt(0, 2)) {
        case 0: {  // flip a byte
          const size_t pos =
              static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
          mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
          break;
        }
        case 1: {  // truncate
          const size_t pos =
              static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
          mutated.resize(pos);
          break;
        }
        default: {  // duplicate a slice
          if (mutated.size() < 4) break;
          const size_t from =
              static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 2));
          const size_t len = static_cast<size_t>(
              rng.UniformInt(1, static_cast<int64_t>(mutated.size() - from - 1)));
          mutated.insert(from, mutated.substr(from, len));
          break;
        }
      }
      if (mutated.empty()) break;
    }
    auto result = DeserializePlan(mutated);
    if (result.ok()) {
      // Whatever parsed must be internally consistent enough to evaluate.
      auto eval = EvaluatePolicyNominal(*result);
      (void)eval;
    }
  }
  SUCCEED();
}

TEST(SerializationTest, MultiTypeArtifactRoundTripIsBitExact) {
  engine::MultiTypeSpec spec;
  spec.s1 = 10.0;
  spec.b1 = 1.3;
  spec.s2 = 12.0;
  spec.b2 = 0.9;
  spec.m = 180.0;
  spec.problem.num_tasks_1 = 5;
  spec.problem.num_tasks_2 = 4;
  spec.problem.num_intervals = 3;
  spec.problem.penalty_1_cents = 130.5;
  spec.problem.penalty_2_cents = 110.25;
  spec.problem.max_price_cents = 16;
  spec.problem.price_stride = 4;
  spec.interval_lambdas = {21.5, 33.75, 18.0};
  const engine::PolicyArtifact artifact =
      engine::Engine::Solve(spec).value();
  const MultiTypePlan& plan = *artifact.multitype_plan().value();

  const std::string text = artifact.Serialize().value();
  auto restored = engine::PolicyArtifact::Deserialize(text);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->kind(), engine::PolicyKind::kMultiType);
  const MultiTypePlan& reloaded = *restored->multitype_plan().value();

  // Bit-exact: re-serializing reproduces the text, and every table entry,
  // lambda and problem field survives unchanged.
  EXPECT_EQ(restored->Serialize().value(), text);
  EXPECT_EQ(reloaded.problem().num_tasks_1, plan.problem().num_tasks_1);
  EXPECT_EQ(reloaded.problem().num_tasks_2, plan.problem().num_tasks_2);
  EXPECT_EQ(reloaded.problem().price_stride, plan.problem().price_stride);
  ASSERT_EQ(reloaded.interval_lambdas().size(),
            plan.interval_lambdas().size());
  for (size_t i = 0; i < plan.interval_lambdas().size(); ++i) {
    ASSERT_DOUBLE_EQ(reloaded.interval_lambdas()[i],
                     plan.interval_lambdas()[i]);
  }
  for (int n1 = 0; n1 <= 5; ++n1) {
    for (int n2 = 0; n2 <= 4; ++n2) {
      for (int t = 0; t <= 3; ++t) {
        ASSERT_DOUBLE_EQ(reloaded.OptAt(n1, n2, t).value(),
                         plan.OptAt(n1, n2, t).value());
        if (t < 3 && n1 + n2 > 0) {
          ASSERT_EQ(reloaded.PricesAt(n1, n2, t).value(),
                    plan.PricesAt(n1, n2, t).value());
        }
      }
    }
  }
  EXPECT_DOUBLE_EQ(reloaded.TotalObjective(), plan.TotalObjective());
}

TEST(SerializationTest, AdaptiveArtifactCheckpointsItsBelief) {
  auto acc = choice::LogitAcceptance::Paper2014();
  engine::AdaptiveSpec spec;
  spec.problem.num_tasks = 18;
  spec.problem.num_intervals = 5;
  spec.problem.penalty_cents = 140.5;
  spec.problem.extra_penalty_alpha = 1.25;
  spec.believed_lambdas = {210.0, 180.5, 240.0, 199.75, 230.0};
  spec.actions = ActionSet::FromPriceGrid(20, acc).value();
  spec.horizon_hours = 10.0;
  spec.options.resolve_every = 2;
  spec.options.prior_weight = 0.375;
  spec.options.min_factor = 0.5;
  spec.options.max_factor = 3.0;
  const engine::PolicyArtifact artifact =
      engine::Engine::Solve(spec).value();

  const std::string text = artifact.Serialize().value();
  auto restored = engine::PolicyArtifact::Deserialize(text);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->kind(), engine::PolicyKind::kAdaptive);
  // Bit-exact belief checkpoint: the round trip reproduces the text...
  EXPECT_EQ(restored->Serialize().value(), text);
  // ...and a controller instantiated from the reloaded priors opens with
  // the same decision as one from the original artifact.
  auto a = artifact.MakeAdaptiveController().value();
  auto b = restored->MakeAdaptiveController().value();
  const auto offer_a = test_util::SingleOffer(a, 0.0, 18).value();
  const auto offer_b = test_util::SingleOffer(b, 0.0, 18).value();
  EXPECT_DOUBLE_EQ(offer_a.per_task_reward_cents,
                   offer_b.per_task_reward_cents);
  EXPECT_EQ(offer_a.group_size, offer_b.group_size);
}

TEST(SerializationTest, BundledActionsRoundTrip) {
  std::vector<PricingAction> raw{{0.04, 50, 0.001}, {0.1, 20, 0.004},
                                 {0.2, 10, 0.012}};
  auto actions = ActionSet::FromActions(raw).value();
  DeadlineProblem p;
  p.num_tasks = 30;
  p.num_intervals = 4;
  p.penalty_cents = 5.0;
  std::vector<double> lambdas(4, 400.0);
  auto plan = SolveSimpleDp(p, lambdas, actions).value();
  auto restored = DeserializePlan(SerializePlan(plan)).value();
  for (int n = 1; n <= 30; ++n) {
    for (int t = 0; t < 4; ++t) {
      ASSERT_EQ(restored.ActionIndexUnchecked(n, t),
                plan.ActionIndexUnchecked(n, t));
    }
  }
  EXPECT_FALSE(restored.actions().uniform_unit_bundle());
}

}  // namespace
}  // namespace crowdprice::pricing

// --- Wire codec (net/wire.h) ---------------------------------------------
// The frame and payload codecs crowdprice_serve speaks: every payload
// round-trips bit-exactly (the hex-float convention extends across the
// wire), and every malformed frame or payload is a Status error, never a
// crash -- the server treats socket bytes as hostile.

namespace crowdprice::net {
namespace {

engine::PolicyArtifact WireSampleArtifact() {
  engine::DeadlineDpSpec spec;
  spec.problem.num_tasks = 12;
  spec.problem.num_intervals = 4;
  spec.problem.penalty_cents = 75.0;
  spec.interval_lambdas.assign(4, 50.0);
  spec.actions = pricing::ActionSet::FromPriceGrid(
                     20, choice::LogitAcceptance::Paper2014())
                     .value();
  return engine::Engine::Solve(spec).value();
}

TEST(WireFrameTest, HeaderRoundTripsAndFrameWraps) {
  FrameHeader header;
  header.type = FrameType::kControlRequest;
  header.payload_bytes = 1234;
  char bytes[kFrameHeaderBytes];
  EncodeFrameHeader(header, bytes);
  const auto decoded =
      DecodeFrameHeader(bytes, kFrameHeaderBytes, kDefaultMaxFrameBytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->version, kWireVersion);
  EXPECT_EQ(decoded->type, FrameType::kControlRequest);
  EXPECT_EQ(decoded->payload_bytes, 1234u);

  const std::string payload = "decide-batch 0\n";
  const auto frame = EncodeFrame(FrameType::kDecideBatchRequest, payload,
                                 kDefaultMaxFrameBytes);
  ASSERT_TRUE(frame.ok());
  ASSERT_EQ(frame->size(), kFrameHeaderBytes + payload.size());
  const auto head =
      DecodeFrameHeader(frame->data(), frame->size(), kDefaultMaxFrameBytes);
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(head->type, FrameType::kDecideBatchRequest);
  EXPECT_EQ(head->payload_bytes, payload.size());
  EXPECT_EQ(frame->substr(kFrameHeaderBytes), payload);
}

TEST(WireFrameTest, MalformedHeadersAreStatusErrors) {
  FrameHeader header;
  header.type = FrameType::kDecideBatchResponse;
  header.payload_bytes = 64;
  char bytes[kFrameHeaderBytes];
  EncodeFrameHeader(header, bytes);

  // Truncated buffer.
  EXPECT_TRUE(DecodeFrameHeader(bytes, 5, kDefaultMaxFrameBytes)
                  .status()
                  .IsInvalidArgument());
  // Bad magic.
  char corrupt[kFrameHeaderBytes];
  std::memcpy(corrupt, bytes, kFrameHeaderBytes);
  corrupt[0] = 'X';
  EXPECT_TRUE(DecodeFrameHeader(corrupt, kFrameHeaderBytes,
                                kDefaultMaxFrameBytes)
                  .status()
                  .IsInvalidArgument());
  // Unsupported version.
  std::memcpy(corrupt, bytes, kFrameHeaderBytes);
  corrupt[4] = 9;
  EXPECT_TRUE(DecodeFrameHeader(corrupt, kFrameHeaderBytes,
                                kDefaultMaxFrameBytes)
                  .status()
                  .IsInvalidArgument());
  // Unknown frame type.
  std::memcpy(corrupt, bytes, kFrameHeaderBytes);
  corrupt[6] = 99;
  EXPECT_TRUE(DecodeFrameHeader(corrupt, kFrameHeaderBytes,
                                kDefaultMaxFrameBytes)
                  .status()
                  .IsInvalidArgument());
  // Oversized payload: rejected by the reader's cap before buffering...
  EXPECT_TRUE(DecodeFrameHeader(bytes, kFrameHeaderBytes, 16)
                  .status()
                  .IsInvalidArgument());
  // ...and by the writer when framing.
  EXPECT_TRUE(EncodeFrame(FrameType::kControlRequest, std::string(64, 'x'), 16)
                  .status()
                  .IsInvalidArgument());
}

TEST(WireSerializationTest, DecisionRequestRoundTripIsBitExact) {
  market::DecisionRequest request;
  request.now_hours = 1.0 / 3.0;
  request.campaign_hours = 0.1;
  request.remaining = {17, 0, 123456789012345};
  const std::string text = SerializeDecisionRequest(request);
  const auto restored = DeserializeDecisionRequest(text);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->now_hours, request.now_hours);
  EXPECT_EQ(restored->campaign_hours, request.campaign_hours);
  EXPECT_EQ(restored->remaining, request.remaining);
  // Hex-float convention: re-serializing reproduces the bytes.
  EXPECT_EQ(SerializeDecisionRequest(*restored), text);
}

TEST(WireSerializationTest, OfferSheetRoundTripIsBitExact) {
  market::OfferSheet sheet;
  sheet.offers = {{12.75, 1}, {0.0, 3}, {99.999999999, 40}};
  const std::string text = SerializeOfferSheet(sheet);
  const auto restored = DeserializeOfferSheet(text);
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->offers.size(), sheet.offers.size());
  for (size_t i = 0; i < sheet.offers.size(); ++i) {
    EXPECT_EQ(restored->offers[i].per_task_reward_cents,
              sheet.offers[i].per_task_reward_cents);
    EXPECT_EQ(restored->offers[i].group_size, sheet.offers[i].group_size);
  }
  EXPECT_EQ(SerializeOfferSheet(*restored), text);
}

TEST(WireSerializationTest, DecideResponseCarriesSheetOrStatus) {
  serving::DecideResponse ok;
  ok.campaign_id = 7;
  ok.sheet = market::OfferSheet::Single({33.5, 2});
  const auto ok_restored = DeserializeDecideResponse(SerializeDecideResponse(ok));
  ASSERT_TRUE(ok_restored.ok());
  EXPECT_EQ(ok_restored->campaign_id, 7u);
  EXPECT_TRUE(ok_restored->status.ok());
  ASSERT_EQ(ok_restored->sheet.offers.size(), 1u);
  EXPECT_EQ(ok_restored->sheet.offers[0].per_task_reward_cents, 33.5);

  // Failures survive with code and message intact, quirky bytes included.
  serving::DecideResponse err;
  err.campaign_id = 8;
  err.status = Status::NotFound("campaign 8\nis not\\ live  here");
  const auto err_restored =
      DeserializeDecideResponse(SerializeDecideResponse(err));
  ASSERT_TRUE(err_restored.ok());
  EXPECT_EQ(err_restored->campaign_id, 8u);
  EXPECT_TRUE(err_restored->status.IsNotFound());
  EXPECT_EQ(err_restored->status.message(), err.status.message());
}

TEST(WireSerializationTest, ControlOpsRoundTripIncludingArtifactBlocks) {
  const auto artifact =
      std::make_shared<const engine::PolicyArtifact>(WireSampleArtifact());
  const std::string artifact_text = artifact->Serialize().value();

  serving::CampaignLimits limits;
  limits.total_tasks = 40;
  limits.deadline_hours = 6.0;
  limits.admit_hours = 2.5;
  const auto admit_text =
      SerializeControlOp(serving::ControlOp::AdmitShared(artifact, limits));
  ASSERT_TRUE(admit_text.ok());
  const auto admit = DeserializeControlOp(*admit_text);
  ASSERT_TRUE(admit.ok());
  EXPECT_EQ(admit->kind, serving::ControlOp::Kind::kAdmit);
  EXPECT_EQ(admit->limits.total_tasks, 40);
  EXPECT_EQ(admit->limits.deadline_hours, 6.0);
  EXPECT_EQ(admit->limits.admit_hours, 2.5);
  ASSERT_NE(admit->artifact, nullptr);
  EXPECT_EQ(admit->artifact->Serialize().value(), artifact_text);

  const auto swap_text = SerializeControlOp(
      serving::ControlOp::SwapArtifactShared(11, artifact));
  ASSERT_TRUE(swap_text.ok());
  const auto swap = DeserializeControlOp(*swap_text);
  ASSERT_TRUE(swap.ok());
  EXPECT_EQ(swap->kind, serving::ControlOp::Kind::kSwapArtifact);
  EXPECT_EQ(swap->id, 11u);
  ASSERT_NE(swap->artifact, nullptr);
  EXPECT_EQ(swap->artifact->Serialize().value(), artifact_text);

  const auto retire_text = SerializeControlOp(serving::ControlOp::Retire(12));
  ASSERT_TRUE(retire_text.ok());
  const auto retire = DeserializeControlOp(*retire_text);
  ASSERT_TRUE(retire.ok());
  EXPECT_EQ(retire->kind, serving::ControlOp::Kind::kRetire);
  EXPECT_EQ(retire->id, 12u);

  const auto tick_text =
      SerializeControlOp(serving::ControlOp::Tick(13, 4.25, 9));
  ASSERT_TRUE(tick_text.ok());
  const auto tick = DeserializeControlOp(*tick_text);
  ASSERT_TRUE(tick.ok());
  EXPECT_EQ(tick->kind, serving::ControlOp::Kind::kTick);
  EXPECT_EQ(tick->id, 13u);
  EXPECT_EQ(tick->now_hours, 4.25);
  EXPECT_EQ(tick->remaining_tasks, 9);

  // Controller-backed admits are process-local by design.
  serving::ControlOp local = serving::ControlOp::AdmitController(
      std::make_unique<market::FixedOfferController>(market::Offer{10.0, 1}),
      limits);
  EXPECT_TRUE(SerializeControlOp(local).status().IsInvalidArgument());
}

TEST(WireSerializationTest, ControlAcksCarryOutcomeOrTransportedStatus) {
  serving::ControlOutcome outcome;
  outcome.id = 21;
  outcome.state = serving::CampaignState::kRetiredDeadline;
  const auto ok_ack = DeserializeControlAck(SerializeControlAck(outcome));
  ASSERT_TRUE(ok_ack.ok());
  EXPECT_EQ(ok_ack->id, 21u);
  EXPECT_EQ(ok_ack->state, serving::CampaignState::kRetiredDeadline);

  const Result<serving::ControlOutcome> failed =
      Status::FailedPrecondition("shard map is tearing down");
  const auto err_ack = DeserializeControlAck(SerializeControlAck(failed));
  ASSERT_FALSE(err_ack.ok());
  EXPECT_TRUE(err_ack.status().IsFailedPrecondition());
  EXPECT_EQ(err_ack.status().message(), "shard map is tearing down");

  // A state integer outside the enum is rejected, not cast blindly.
  EXPECT_FALSE(DeserializeControlAck("control-ack ok 21 9\n").ok());
}

TEST(WireSerializationTest, DecideBatchesRoundTripIndexForIndex) {
  std::vector<serving::DecideRequest> requests;
  requests.push_back(serving::DecideRequest::Single(3, 0.5, 12));
  serving::DecideRequest multi;
  multi.campaign_id = 4;
  multi.request.now_hours = 1.25;
  multi.request.campaign_hours = 0.75;
  multi.request.remaining = {5, 6};
  requests.push_back(multi);
  const auto restored =
      DeserializeDecideBatchRequest(SerializeDecideBatchRequest(requests));
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->size(), 2u);
  EXPECT_EQ((*restored)[0].campaign_id, 3u);
  EXPECT_EQ((*restored)[0].request.remaining, std::vector<int64_t>{12});
  EXPECT_EQ((*restored)[1].campaign_id, 4u);
  EXPECT_EQ((*restored)[1].request.now_hours, 1.25);
  EXPECT_EQ((*restored)[1].request.remaining, (std::vector<int64_t>{5, 6}));

  std::vector<serving::DecideResponse> responses(2);
  responses[0].campaign_id = 3;
  responses[0].sheet = market::OfferSheet::Single({45.0, 1});
  responses[1].campaign_id = 4;
  responses[1].status = Status::NotFound("campaign 4 is not live");
  const auto back =
      DeserializeDecideBatchResponse(SerializeDecideBatchResponse(responses));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_TRUE((*back)[0].status.ok());
  EXPECT_EQ((*back)[0].sheet.offers[0].per_task_reward_cents, 45.0);
  EXPECT_TRUE((*back)[1].status.IsNotFound());
  EXPECT_EQ((*back)[1].status.message(), "campaign 4 is not live");

  // The whole-batch error form surfaces as that Status.
  const auto batch_err = DeserializeDecideBatchResponse(
      SerializeBatchError(Status::InvalidArgument("unreadable batch")));
  ASSERT_FALSE(batch_err.ok());
  EXPECT_TRUE(batch_err.status().IsInvalidArgument());
  EXPECT_EQ(batch_err.status().message(), "unreadable batch");
}

TEST(WireSerializationTest, MalformedPayloadsAreStatusErrorsNeverCrashes) {
  // Empty and truncated inputs.
  EXPECT_FALSE(DeserializeDecisionRequest("").ok());
  EXPECT_FALSE(DeserializeOfferSheet("").ok());
  EXPECT_FALSE(DeserializeControlOp("").ok());
  EXPECT_FALSE(DeserializeControlAck("").ok());
  EXPECT_FALSE(DeserializeDecideBatchRequest("").ok());
  EXPECT_FALSE(DeserializeDecideBatchResponse("").ok());
  // A batch that promises more lines than it carries.
  EXPECT_FALSE(DeserializeDecideBatchRequest("decide-batch 3\n").ok());
  // Counts that lie: negative, non-numeric, and absurdly large.
  EXPECT_FALSE(DeserializeDecideBatchRequest("decide-batch -1\n").ok());
  EXPECT_FALSE(DeserializeDecideBatchRequest("decide-batch zebra\n").ok());
  EXPECT_FALSE(DeserializeDecideBatchRequest("decide-batch 99999999\n").ok());
  // Garbage numbers inside an otherwise shaped line.
  EXPECT_FALSE(DeserializeDecisionRequest("request x y 1 5\n").ok());
  EXPECT_FALSE(DeserializeOfferSheet("sheet 1 nope 1\n").ok());
  // Wrong leading keyword.
  EXPECT_FALSE(DeserializeDecisionRequest("sheet 1 0x1p0 1\n").ok());
  // Trailing garbage after a complete object.
  market::DecisionRequest request = market::DecisionRequest::Single(1.0, 5);
  EXPECT_FALSE(
      DeserializeDecisionRequest(SerializeDecisionRequest(request) + "extra\n")
          .ok());
  // An artifact block whose byte count overruns the payload.
  EXPECT_FALSE(
      DeserializeControlOp("control swap 3 artifact 5000\nshort\n").ok());
  // Unknown status code integers in err lines.
  EXPECT_FALSE(DeserializeControlAck("control-ack err 42 boom\n").ok());
}

TEST(WireSerializationTest, PingAndHelloRoundTrip) {
  // Ping bodies are fixed and validated: an echoing or garbled backend is
  // a protocol error, not a healthy one.
  EXPECT_TRUE(DeserializePingRequest(SerializePingRequest()).ok());
  EXPECT_TRUE(DeserializePingResponse(SerializePingResponse()).ok());
  EXPECT_FALSE(DeserializePingRequest("pong\n").ok());
  EXPECT_FALSE(DeserializePingResponse("ping\n").ok());
  EXPECT_FALSE(DeserializePingResponse("").ok());

  // Hello: version and token survive; token bytes escape like status
  // messages, so whitespace and backslashes are fine.
  HelloRequest hello;
  hello.version = 7;
  hello.token = "secret with spaces\nand\\escapes";
  const auto restored = DeserializeHelloRequest(SerializeHelloRequest(hello));
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->version, 7);
  EXPECT_EQ(restored->token, hello.token);
  EXPECT_FALSE(DeserializeHelloRequest("hello\n").ok());
  EXPECT_FALSE(DeserializeHelloRequest("hello zebra tok\n").ok());

  // Hello acks carry the server's verdict both ways.
  Status verdict;
  ASSERT_TRUE(
      DeserializeHelloAck(SerializeHelloAck(Status::OK()), &verdict).ok());
  EXPECT_TRUE(verdict.ok());
  ASSERT_TRUE(DeserializeHelloAck(
                  SerializeHelloAck(Status::Unauthenticated("bad token")),
                  &verdict)
                  .ok());
  EXPECT_TRUE(verdict.IsUnauthenticated());
  EXPECT_EQ(verdict.message(), "bad token");
  EXPECT_FALSE(DeserializeHelloAck("hello-ack maybe\n", &verdict).ok());
}

TEST(WireSerializationTest, ExportAndExplicitIdAdmitRoundTrip) {
  const auto id = DeserializeExportRequest(SerializeExportRequest(77));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 77u);
  EXPECT_FALSE(DeserializeExportRequest("export x\n").ok());
  EXPECT_FALSE(DeserializeExportRequest("").ok());

  // Export responses: id + limits + artifact bytes round-trip exactly --
  // the migrated campaign must price bit-identically on its new owner.
  const auto artifact =
      std::make_shared<const engine::PolicyArtifact>(WireSampleArtifact());
  serving::CampaignExport exported;
  exported.id = 9;
  exported.limits.total_tasks = 40;
  exported.limits.deadline_hours = 6.0;
  exported.limits.admit_hours = 2.5;
  exported.artifact = artifact;
  const auto wire = SerializeExportResponse(exported);
  ASSERT_TRUE(wire.ok()) << wire.status();
  const auto back = DeserializeExportResponse(*wire);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->id, 9u);
  EXPECT_EQ(back->limits.total_tasks, 40);
  EXPECT_EQ(back->limits.deadline_hours, 6.0);
  EXPECT_EQ(back->limits.admit_hours, 2.5);
  ASSERT_NE(back->artifact, nullptr);
  EXPECT_EQ(back->artifact->Serialize().value(),
            artifact->Serialize().value());

  // The err form transports the server-side status verbatim...
  const auto err_wire = SerializeExportResponse(
      Result<serving::CampaignExport>(Status::NotFound("campaign 9 gone")));
  ASSERT_TRUE(err_wire.ok());
  const auto err = DeserializeExportResponse(*err_wire);
  ASSERT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsNotFound());
  EXPECT_EQ(err.status().message(), "campaign 9 gone");
  // ...and a controller-backed export (no artifact) cannot serialize.
  serving::CampaignExport controller_backed;
  controller_backed.id = 3;
  EXPECT_TRUE(SerializeExportResponse(controller_backed)
                  .status()
                  .IsInvalidArgument());

  // Explicit-id admits use the admit-at verb and keep the campaign id.
  serving::CampaignLimits limits;
  limits.total_tasks = 40;
  limits.deadline_hours = 6.0;
  limits.admit_hours = 2.5;
  const auto admit_at_text = SerializeControlOp(
      serving::ControlOp::AdmitSharedWithId(31, artifact, limits));
  ASSERT_TRUE(admit_at_text.ok());
  const auto admit_at = DeserializeControlOp(*admit_at_text);
  ASSERT_TRUE(admit_at.ok()) << admit_at.status();
  EXPECT_EQ(admit_at->kind, serving::ControlOp::Kind::kAdmit);
  EXPECT_EQ(admit_at->id, 31u);
  EXPECT_EQ(admit_at->limits.admit_hours, 2.5);
  ASSERT_NE(admit_at->artifact, nullptr);

  // admit-at must name a real id: 0 means "assign fresh", which only the
  // plain admit verb may ask for.
  std::string zero_id = *admit_at_text;
  const size_t at = zero_id.find("admit-at 31");
  ASSERT_NE(at, std::string::npos);
  zero_id.replace(at, std::strlen("admit-at 31"), "admit-at 0");
  EXPECT_FALSE(DeserializeControlOp(zero_id).ok());

  // The new frame types frame and decode like the original four.
  for (const FrameType type :
       {FrameType::kPingRequest, FrameType::kPingResponse,
        FrameType::kHelloRequest, FrameType::kHelloResponse,
        FrameType::kExportRequest, FrameType::kExportResponse}) {
    const auto frame = EncodeFrame(type, "x\n", kDefaultMaxFrameBytes);
    ASSERT_TRUE(frame.ok());
    const auto header = DecodeFrameHeader(frame->data(), frame->size(),
                                          kDefaultMaxFrameBytes);
    ASSERT_TRUE(header.ok());
    EXPECT_EQ(header->type, type);
    EXPECT_EQ(header->payload_bytes, 2u);
  }
}

}  // namespace
}  // namespace crowdprice::net
