#include "pricing/adaptive.h"

#include <gtest/gtest.h>

#include "arrival/rate_function.h"
#include "choice/acceptance.h"
#include "market/simulator.h"
#include "pricing/controller.h"
#include "stats/descriptive.h"
#include "util/rng.h"

#include "test_util.h"

namespace crowdprice::pricing {
namespace {

struct Env {
  choice::LogitAcceptance acceptance = choice::LogitAcceptance::Paper2014();
  ActionSet actions = ActionSet::FromPriceGrid(50, acceptance).value();
  DeadlineProblem problem;
  std::vector<double> believed;

  static Env Make(int n = 100, int nt = 24, double lambda = 2500.0,
                    double penalty = 500.0) {
    Env s;
    s.problem.num_tasks = n;
    s.problem.num_intervals = nt;
    s.problem.penalty_cents = penalty;
    s.believed.assign(static_cast<size_t>(nt), lambda);
    return s;
  }
};

TEST(AdaptiveControllerTest, CreateValidation) {
  Env s = Env::Make();
  EXPECT_TRUE(AdaptiveRateController::Create(s.problem, {1.0}, s.actions, 24.0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(AdaptiveRateController::Create(s.problem, s.believed, s.actions, 0.0)
                  .status()
                  .IsInvalidArgument());
  AdaptiveOptions bad;
  bad.resolve_every = 0;
  EXPECT_TRUE(
      AdaptiveRateController::Create(s.problem, s.believed, s.actions, 24.0, bad)
          .status()
          .IsInvalidArgument());
  bad = AdaptiveOptions{};
  bad.min_factor = 0.0;
  EXPECT_TRUE(
      AdaptiveRateController::Create(s.problem, s.believed, s.actions, 24.0, bad)
          .status()
          .IsInvalidArgument());
  EXPECT_TRUE(
      AdaptiveRateController::Create(s.problem, s.believed, s.actions, 24.0).ok());
}

TEST(AdaptiveControllerTest, FirstDecisionMatchesStaticPlan) {
  Env s = Env::Make();
  auto adaptive =
      AdaptiveRateController::Create(s.problem, s.believed, s.actions, 24.0)
          .value();
  auto static_plan = SolveImprovedDp(s.problem, s.believed, s.actions).value();
  auto offer = test_util::SingleOffer(adaptive, 0.0, 100).value();
  EXPECT_DOUBLE_EQ(offer.per_task_reward_cents,
                   static_plan.PriceAt(100, 0).value());
  EXPECT_DOUBLE_EQ(adaptive.current_factor(), 1.0);
}

TEST(AdaptiveControllerTest, AccurateBeliefLeavesFactorNearOne) {
  Env s = Env::Make();
  auto rate = arrival::PiecewiseConstantRate::Constant(2500.0 * 24.0 / 24.0, 24.0)
                  .value();
  market::SimulatorConfig sim;
  sim.total_tasks = 100;
  sim.horizon_hours = 24.0;
  sim.decision_interval_hours = 1.0;
  Rng rng(5);
  auto controller =
      AdaptiveRateController::Create(s.problem, s.believed, s.actions, 24.0)
          .value();
  auto result =
      market::RunSimulation(sim, rate, s.acceptance, controller, rng).value();
  EXPECT_GT(result.tasks_assigned, 95);
  EXPECT_NEAR(controller.current_factor(), 1.0, 0.3);
}

TEST(AdaptiveControllerTest, DetectsSlowMarketAndRaisesPrices) {
  // Believed 2500 workers/interval, true market at 55% of that (the Fig. 10
  // holiday). The adaptive controller should converge to factor ~0.55 and
  // replan at least once.
  Env s = Env::Make();
  auto rate =
      arrival::PiecewiseConstantRate::Constant(2500.0 * 0.55, 24.0).value();
  market::SimulatorConfig sim;
  sim.total_tasks = 100;
  sim.horizon_hours = 24.0;
  sim.decision_interval_hours = 1.0;
  Rng rng(6);
  auto controller =
      AdaptiveRateController::Create(s.problem, s.believed, s.actions, 24.0)
          .value();
  auto result =
      market::RunSimulation(sim, rate, s.acceptance, controller, rng).value();
  EXPECT_GE(controller.resolves(), 2);  // initial solve + >= 1 replan
  EXPECT_LT(controller.current_factor(), 0.85);
  EXPECT_GT(controller.current_factor(), 0.3);
  (void)result;
}

TEST(AdaptiveControllerTest, BeatsStaticPlanOnConsistentDeviation) {
  // The §5.2.5 future-work claim: on a consistently slow day, replanning
  // from observed completions leaves fewer tasks than the static policy.
  Env s = Env::Make(/*n=*/150, /*nt=*/24, /*lambda=*/3500.0,
                        /*penalty=*/800.0);
  auto slow_rate =
      arrival::PiecewiseConstantRate::Constant(3500.0 * 0.5, 24.0).value();
  auto static_plan = SolveImprovedDp(s.problem, s.believed, s.actions).value();

  market::SimulatorConfig sim;
  sim.total_tasks = 150;
  sim.horizon_hours = 24.0;
  sim.decision_interval_hours = 1.0;
  Rng rng(7);
  stats::RunningStats static_rem, adaptive_rem;
  for (int rep = 0; rep < 40; ++rep) {
    auto static_ctl = PlanController::Create(&static_plan, 24.0).value();
    Rng c1 = rng.Fork();
    auto static_run =
        market::RunSimulation(sim, slow_rate, s.acceptance, static_ctl, c1)
            .value();
    static_rem.Add(
        static_cast<double>(sim.total_tasks - static_run.tasks_assigned));

    auto adaptive_ctl =
        AdaptiveRateController::Create(s.problem, s.believed, s.actions, 24.0)
            .value();
    Rng c2 = rng.Fork();
    auto adaptive_run =
        market::RunSimulation(sim, slow_rate, s.acceptance, adaptive_ctl, c2)
            .value();
    adaptive_rem.Add(
        static_cast<double>(sim.total_tasks - adaptive_run.tasks_assigned));
  }
  EXPECT_LT(adaptive_rem.mean(), static_rem.mean() * 0.7)
      << "static leaves " << static_rem.mean() << ", adaptive leaves "
      << adaptive_rem.mean();
}

TEST(AdaptiveControllerTest, HotMarketCutsPrices) {
  // True market 2x the belief: the controller should lower its trajectory
  // of prices relative to the static plan (factor > 1).
  Env s = Env::Make();
  auto hot_rate = arrival::PiecewiseConstantRate::Constant(5000.0, 24.0).value();
  market::SimulatorConfig sim;
  sim.total_tasks = 100;
  sim.horizon_hours = 24.0;
  sim.decision_interval_hours = 1.0;
  Rng rng(8);
  auto controller =
      AdaptiveRateController::Create(s.problem, s.believed, s.actions, 24.0)
          .value();
  auto result =
      market::RunSimulation(sim, hot_rate, s.acceptance, controller, rng).value();
  EXPECT_TRUE(result.finished);
  EXPECT_GT(controller.current_factor(), 1.2);
}

TEST(AdaptiveControllerTest, RejectsNonPositiveRemaining) {
  Env s = Env::Make();
  auto controller =
      AdaptiveRateController::Create(s.problem, s.believed, s.actions, 24.0)
          .value();
  EXPECT_TRUE(test_util::SingleOffer(controller, 0.0, 0).status().IsInvalidArgument());
}

}  // namespace
}  // namespace crowdprice::pricing
