#include "stats/descriptive.h"

#include <cmath>

#include <gtest/gtest.h>

namespace crowdprice::stats {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stderr_mean(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(3.5);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStatsTest, KnownSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  RunningStats all, left, right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(static_cast<double>(i)) * 10.0;
    all.Add(x);
    (i < 37 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, b;
  a.Add(1.0);
  a.Add(2.0);
  const double mean = a.mean();
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.Merge(a);
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(RunningStatsTest, NumericalStabilityLargeOffset) {
  RunningStats s;
  for (int i = 0; i < 1000; ++i) s.Add(1e9 + (i % 2));
  EXPECT_NEAR(s.variance(), 0.25025, 0.001);
}

TEST(PercentileTest, EmptyErrors) {
  EXPECT_TRUE(Percentile({}, 0.5).status().IsInvalidArgument());
}

TEST(PercentileTest, BadQuantileErrors) {
  EXPECT_TRUE(Percentile({1.0}, -0.1).status().IsInvalidArgument());
  EXPECT_TRUE(Percentile({1.0}, 1.1).status().IsInvalidArgument());
}

TEST(PercentileTest, MinMedianMax) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0).value(), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5).value(), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0).value(), 5.0);
}

TEST(PercentileTest, LinearInterpolation) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.25).value(), 2.5);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.75).value(), 7.5);
}

TEST(EcdfTest, EmptyErrors) {
  EXPECT_TRUE(Ecdf({}).status().IsInvalidArgument());
}

TEST(EcdfTest, DistinctValues) {
  auto e = Ecdf({3.0, 1.0, 2.0});
  ASSERT_TRUE(e.ok());
  ASSERT_EQ(e->size(), 3u);
  EXPECT_DOUBLE_EQ((*e)[0].value, 1.0);
  EXPECT_NEAR((*e)[0].fraction, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ((*e)[2].value, 3.0);
  EXPECT_DOUBLE_EQ((*e)[2].fraction, 1.0);
}

TEST(EcdfTest, DuplicatesCollapse) {
  auto e = Ecdf({1.0, 1.0, 2.0, 2.0, 2.0});
  ASSERT_TRUE(e.ok());
  ASSERT_EQ(e->size(), 2u);
  EXPECT_DOUBLE_EQ((*e)[0].fraction, 0.4);
  EXPECT_DOUBLE_EQ((*e)[1].fraction, 1.0);
}

TEST(HistogramTest, Validation) {
  EXPECT_TRUE(Histogram({1.0}, 0.0, 1.0, 0).status().IsInvalidArgument());
  EXPECT_TRUE(Histogram({1.0}, 1.0, 1.0, 5).status().IsInvalidArgument());
  EXPECT_TRUE(Histogram({1.0}, 2.0, 1.0, 5).status().IsInvalidArgument());
}

TEST(HistogramTest, CountsAndClamping) {
  auto h = Histogram({-1.0, 0.1, 0.5, 0.9, 2.0}, 0.0, 1.0, 2);
  ASSERT_TRUE(h.ok());
  ASSERT_EQ(h->size(), 2u);
  EXPECT_EQ((*h)[0], 2);  // -1.0 clamped in, 0.1
  EXPECT_EQ((*h)[1], 3);  // 0.5, 0.9, 2.0 clamped in
}

TEST(HistogramTest, TotalPreserved) {
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(static_cast<double>(i % 10));
  auto h = Histogram(v, 0.0, 10.0, 10);
  ASSERT_TRUE(h.ok());
  int64_t total = 0;
  for (int64_t c : *h) total += c;
  EXPECT_EQ(total, 1000);
}

}  // namespace
}  // namespace crowdprice::stats
