// ResolveLane tests: the serving layer's async re-solve path. Re-solves
// run on the SolverPool farm and hot-swap artifacts through the RCU
// snapshot publish, so a re-solve storm must never block DecideBatch --
// the threaded storm test below is the TSan CI coverage for that claim.
// Also: per-campaign coalescing, retirement races counted as lost swaps,
// and input validation.

#include "serving/resolve_lane.h"

#include <atomic>
#include <future>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "choice/acceptance.h"
#include "engine/engine.h"
#include "engine/solver_pool.h"
#include "serving/campaign_shard_map.h"

#include "test_util.h"

namespace crowdprice::serving {
namespace {

const choice::LogitAcceptance& PaperAcceptance() {
  static const choice::LogitAcceptance acceptance =
      choice::LogitAcceptance::Paper2014();
  return acceptance;
}

engine::PolicyArtifact SmallDeadlineArtifact(int num_tasks = 12,
                                             double lambda = 900.0) {
  engine::DeadlineDpSpec spec;
  spec.problem.num_tasks = num_tasks;
  spec.problem.num_intervals = 4;
  spec.problem.penalty_cents = 150.0;
  spec.interval_lambdas.assign(4, lambda);
  spec.actions = pricing::ActionSet::FromPriceGrid(20, PaperAcceptance()).value();
  return engine::Engine::Solve(spec).value();
}

CampaignLimits SmallLimits(int num_tasks = 12) {
  CampaignLimits limits;
  limits.total_tasks = num_tasks;
  limits.deadline_hours = 12.0;
  return limits;
}

Result<CampaignId> Admit(CampaignShardMap& map,
                         engine::PolicyArtifact artifact,
                         const CampaignLimits& limits) {
  CP_ASSIGN_OR_RETURN(
      const ControlOutcome outcome,
      map.Apply(ControlOp::Admit(std::move(artifact), limits)));
  return outcome.id;
}

TEST(ServingResolveTest, RescaleSolvesAndHotSwaps) {
  auto map = CampaignShardMap::Create(2).value();
  CampaignId id = Admit(map, SmallDeadlineArtifact(), SmallLimits()).value();

  engine::SolverPool pool(2);
  ResolveLane lane(&map, &pool);
  ASSERT_TRUE(lane.EnqueueRescale(id, 2.0).ok());
  lane.Drain();

  const ResolveLane::Stats stats = lane.stats();
  EXPECT_EQ(stats.enqueued, 1);
  EXPECT_EQ(stats.solved, 1);
  EXPECT_EQ(stats.solve_failures, 0);
  EXPECT_EQ(stats.swapped, 1);
  EXPECT_EQ(stats.swap_failures, 0);
  EXPECT_GE(map.TotalStats().swapped, 1u);

  // The campaign keeps serving through and after the swap, and its new
  // policy is the doubled-arrivals solve.
  auto sheet = map.Decide(id, market::DecisionRequest::Single(0.0, 12));
  ASSERT_TRUE(sheet.ok()) << sheet.status();
  auto expected = SmallDeadlineArtifact(12, 1800.0);
  auto controller = expected.MakeController(12.0);
  ASSERT_TRUE(controller.ok());
  auto want = test_util::SingleOffer(**controller, 0.0, 12);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(sheet->offers[0].per_task_reward_cents,
            want->per_task_reward_cents);
}

TEST(ServingResolveTest, StormOnOneCampaignCoalesces) {
  auto map = CampaignShardMap::Create(1).value();
  CampaignId id = Admit(map, SmallDeadlineArtifact(), SmallLimits()).value();

  // A single-worker pool whose worker is parked on a blocker job: every
  // rescale issued meanwhile stays queued, so the 2nd and 3rd coalesce
  // onto the 1st.
  engine::SolverPool pool(1);
  std::promise<void> started;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  pool.Submit([&started, release_future] {
    started.set_value();
    release_future.wait();
  });
  started.get_future().wait();

  ResolveLane lane(&map, &pool);
  ASSERT_TRUE(lane.EnqueueRescale(id, 1.5).ok());
  ASSERT_TRUE(lane.EnqueueRescale(id, 1.5).ok());
  ASSERT_TRUE(lane.EnqueueRescale(id, 0.5).ok());
  release.set_value();
  lane.Drain();

  const ResolveLane::Stats stats = lane.stats();
  EXPECT_EQ(stats.enqueued, 1);
  EXPECT_EQ(stats.coalesced, 2);
  EXPECT_EQ(stats.solved, 1);
  EXPECT_EQ(stats.swapped, 1);

  // The storm over, a fresh trigger starts the next solve.
  ASSERT_TRUE(lane.EnqueueRescale(id, 0.5).ok());
  lane.Drain();
  EXPECT_EQ(lane.stats().enqueued, 2);
}

TEST(ServingResolveTest, RetirementDuringSolveIsALostSwapNotAnError) {
  auto map = CampaignShardMap::Create(1).value();
  CampaignId id = Admit(map, SmallDeadlineArtifact(), SmallLimits()).value();

  engine::SolverPool pool(1);
  std::promise<void> started;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  pool.Submit([&started, release_future] {
    started.set_value();
    release_future.wait();
  });
  started.get_future().wait();

  ResolveLane lane(&map, &pool);
  ASSERT_TRUE(lane.EnqueueRescale(id, 2.0).ok());
  ASSERT_TRUE(map.Apply(ControlOp::Retire(id)).ok());
  release.set_value();
  lane.Drain();

  const ResolveLane::Stats stats = lane.stats();
  EXPECT_EQ(stats.solved, 1);
  EXPECT_EQ(stats.swapped, 0);
  EXPECT_EQ(stats.swap_failures, 1);
}

TEST(ServingResolveTest, ValidatesInputs) {
  auto map = CampaignShardMap::Create(1).value();
  CampaignId id = Admit(map, SmallDeadlineArtifact(), SmallLimits()).value();
  engine::SolverPool pool(1);
  ResolveLane lane(&map, &pool);

  EXPECT_TRUE(lane.EnqueueRescale(id, 0.0).IsInvalidArgument());
  EXPECT_TRUE(lane.EnqueueRescale(id, -1.0).IsInvalidArgument());
  EXPECT_TRUE(lane.EnqueueRescale(id, std::numeric_limits<double>::infinity())
                  .IsInvalidArgument());
  EXPECT_TRUE(lane.EnqueueRescale(id + 999, 1.5).IsNotFound());

  // A non-deadline policy has no arrival belief to rescale.
  engine::FixedPriceSpec fixed;
  fixed.num_tasks = 10;
  fixed.interval_lambdas.assign(4, 1500.0);
  fixed.acceptance = &PaperAcceptance();
  fixed.max_price_cents = 40;
  CampaignId fixed_id =
      Admit(map, engine::Engine::Solve(fixed).value(), SmallLimits(10)).value();
  EXPECT_TRUE(
      lane.EnqueueRescale(fixed_id, 1.5).IsFailedPrecondition());

  EXPECT_EQ(lane.stats().enqueued, 0);
}

// The TSan storm: reader threads hammer DecideBatch while a storm thread
// floods the lane with rescales. Decides must keep succeeding throughout
// (the swap publishes RCU snapshots; readers never block on a solve), and
// the lane/map counters must reconcile exactly once drained.
TEST(ServingResolveTest, ResolveStormNeverBlocksOrBreaksDecideBatch) {
  constexpr int kCampaigns = 8;
  constexpr int kReaders = 3;
  constexpr int kRescales = 36;

  auto map = CampaignShardMap::Create(4).value();
  std::vector<CampaignId> ids;
  for (int i = 0; i < kCampaigns; ++i) {
    ids.push_back(
        Admit(map, SmallDeadlineArtifact(12, 800.0 + 50.0 * i), SmallLimits())
            .value());
  }

  engine::SolverPool pool(2);
  ResolveLane lane(&map, &pool);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> sheets_served{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&map, &ids, &stop, &sheets_served] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::vector<DecideRequest> requests;
        requests.reserve(ids.size());
        for (CampaignId id : ids) {
          requests.push_back(DecideRequest::Single(id, 1.0, 12));
        }
        for (const DecideResponse& response : map.DecideBatch(requests)) {
          ASSERT_TRUE(response.status.ok()) << response.status;
          ASSERT_FALSE(response.sheet.offers.empty());
        }
        sheets_served.fetch_add(static_cast<int64_t>(requests.size()),
                                std::memory_order_relaxed);
      }
    });
  }

  std::thread storm([&lane, &ids] {
    for (int i = 0; i < kRescales; ++i) {
      const double factor = i % 2 == 0 ? 1.25 : 0.8;
      ASSERT_TRUE(
          lane.EnqueueRescale(ids[static_cast<size_t>(i) % ids.size()], factor)
              .ok());
    }
  });
  storm.join();
  lane.Drain();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();

  const ResolveLane::Stats stats = lane.stats();
  EXPECT_EQ(stats.enqueued + stats.coalesced, kRescales);
  EXPECT_EQ(stats.solved + stats.solve_failures, stats.enqueued);
  EXPECT_EQ(stats.solve_failures, 0);
  EXPECT_EQ(stats.swapped, stats.solved);  // nothing retired mid-storm
  EXPECT_EQ(stats.swap_failures, 0);
  EXPECT_GT(stats.swapped, 0);
  EXPECT_EQ(map.TotalStats().swapped, static_cast<uint64_t>(stats.swapped));
  EXPECT_GT(sheets_served.load(), 0);

  // Every campaign still serves after the storm.
  for (CampaignId id : ids) {
    auto sheet = map.Decide(id, market::DecisionRequest::Single(1.0, 12));
    EXPECT_TRUE(sheet.ok()) << sheet.status();
  }
  map.QuiesceReclamation();
}

}  // namespace
}  // namespace crowdprice::serving
