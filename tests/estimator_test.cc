#include "arrival/estimator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "arrival/trace.h"
#include "util/rng.h"

namespace crowdprice::arrival {
namespace {

ArrivalTrace MakeTrace(std::vector<int64_t> counts, double width) {
  ArrivalTrace trace;
  trace.bucket_width_hours = width;
  trace.counts = std::move(counts);
  return trace;
}

TEST(EstimateRateTest, Validation) {
  EXPECT_TRUE(EstimateRate(MakeTrace({}, 1.0)).status().IsInvalidArgument());
  EXPECT_TRUE(EstimateRate(MakeTrace({1}, 0.0)).status().IsInvalidArgument());
  EXPECT_TRUE(EstimateRate(MakeTrace({-1}, 1.0)).status().IsInvalidArgument());
}

TEST(EstimateRateTest, CountsOverWidth) {
  auto rate = EstimateRate(MakeTrace({10, 20}, 0.5)).value();
  EXPECT_DOUBLE_EQ(rate.At(0.0), 20.0);
  EXPECT_DOUBLE_EQ(rate.At(0.5), 40.0);
}

TEST(EstimateWeeklyProfileTest, RequiresWholeWeeks) {
  // 25 hourly buckets is not a whole number of weeks.
  std::vector<int64_t> counts(25, 1);
  EXPECT_TRUE(EstimateWeeklyProfile(MakeTrace(std::move(counts), 1.0))
                  .status()
                  .IsInvalidArgument());
}

TEST(EstimateWeeklyProfileTest, AveragesAcrossWeeks) {
  // Two weeks of hourly buckets: week 1 all 10s, week 2 all 30s.
  std::vector<int64_t> counts;
  counts.insert(counts.end(), 7 * 24, 10);
  counts.insert(counts.end(), 7 * 24, 30);
  auto profile = EstimateWeeklyProfile(MakeTrace(std::move(counts), 1.0)).value();
  ASSERT_EQ(profile.rates().size(), static_cast<size_t>(7 * 24));
  EXPECT_DOUBLE_EQ(profile.rates()[0], 20.0);
  EXPECT_DOUBLE_EQ(profile.rates()[100], 20.0);
}

TEST(EstimateWeeklyProfileTest, RecoversTrueProfile) {
  SyntheticTraceConfig config;
  config.num_weeks = 4;
  config.bucket_minutes = 60;
  config.base_rate_per_hour = 3000.0;
  Rng rng(42);
  auto true_rate = SyntheticTraceGenerator::TrueRate(config).value();
  auto trace = SyntheticTraceGenerator::Generate(config, rng).value();
  auto profile = EstimateWeeklyProfile(trace).value();
  // Each weekly bucket averages 4 Poisson draws around the week-1 truth
  // (weekly wobble makes weeks differ slightly; use a loose relative bound).
  for (size_t b = 0; b < profile.rates().size(); b += 13) {
    const double truth = true_rate.rates()[b];
    EXPECT_NEAR(profile.rates()[b], truth, 0.15 * truth + 30.0) << "bucket " << b;
  }
}

TEST(DayRateTest, ExtractsRequestedDay) {
  std::vector<int64_t> counts;
  for (int day = 0; day < 7; ++day) {
    counts.insert(counts.end(), 24, day * 100);
  }
  auto trace = MakeTrace(std::move(counts), 1.0);
  auto day3 = DayRate(trace, 3).value();
  ASSERT_EQ(day3.rates().size(), 24u);
  EXPECT_DOUBLE_EQ(day3.rates()[0], 300.0);
  EXPECT_DOUBLE_EQ(day3.rates()[23], 300.0);
  EXPECT_TRUE(DayRate(trace, 7).status().IsOutOfRange());
  EXPECT_TRUE(DayRate(trace, -1).status().IsOutOfRange());
}

TEST(DayRateTest, RejectsNonDayDivisibleBuckets) {
  auto trace = MakeTrace(std::vector<int64_t>(10, 1), 0.7);
  EXPECT_TRUE(DayRate(trace, 0).status().IsInvalidArgument());
}

TEST(AverageDayRateTest, AveragesSelectedDays) {
  std::vector<int64_t> counts;
  for (int day = 0; day < 4; ++day) {
    counts.insert(counts.end(), 24, (day + 1) * 100);
  }
  auto trace = MakeTrace(std::move(counts), 1.0);
  auto avg = AverageDayRate(trace, {0, 2}).value();
  ASSERT_EQ(avg.rates().size(), 24u);
  EXPECT_DOUBLE_EQ(avg.rates()[5], 200.0);  // (100 + 300) / 2
  EXPECT_TRUE(AverageDayRate(trace, {}).status().IsInvalidArgument());
  EXPECT_TRUE(AverageDayRate(trace, {9}).status().IsOutOfRange());
}

TEST(AverageDayRateTest, Fig10ProtocolTrainTestSplit) {
  // Fig. 10 protocol: train on the average of 3 days, test on the 4th. The
  // training rate should be within Poisson noise of the test day unless the
  // test day is anomalous.
  SyntheticTraceConfig config;
  config.num_weeks = 1;
  config.bucket_minutes = 20;
  config.base_rate_per_hour = 5000.0;
  config.weekend_factor = 1.0;  // keep days comparable
  config.special_day = 2;       // inject the "1/1" anomaly on day 2
  config.special_day_factor = 0.5;
  Rng rng(7);
  auto trace = SyntheticTraceGenerator::Generate(config, rng).value();
  auto train = AverageDayRate(trace, {0, 1, 3}).value();
  auto normal_day = DayRate(trace, 4).value();
  auto anomalous_day = DayRate(trace, 2).value();
  // Aggregate daily volume: train ~ normal day, train >> anomalous day.
  const double train_total = train.Integrate(0.0, 24.0).value();
  const double normal_total = normal_day.Integrate(0.0, 24.0).value();
  const double anomaly_total = anomalous_day.Integrate(0.0, 24.0).value();
  EXPECT_NEAR(train_total / normal_total, 1.0, 0.1);
  EXPECT_LT(anomaly_total / train_total, 0.7);
}

}  // namespace
}  // namespace crowdprice::arrival
