#include "pricing/tradeoff.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "choice/acceptance.h"
#include "stats/poisson.h"

namespace crowdprice::pricing {
namespace {

choice::LogitAcceptance Paper() { return choice::LogitAcceptance::Paper2014(); }

TEST(WorkerArrivalTradeoffTest, Validation) {
  auto acc = Paper();
  EXPECT_TRUE(
      SolveWorkerArrivalTradeoff(0.0, acc, 1.0, 50).status().IsInvalidArgument());
  EXPECT_TRUE(
      SolveWorkerArrivalTradeoff(100.0, acc, -1.0, 50).status().IsInvalidArgument());
  EXPECT_TRUE(
      SolveWorkerArrivalTradeoff(100.0, acc, 1.0, -1).status().IsInvalidArgument());
}

TEST(WorkerArrivalTradeoffTest, MatchesBruteForce) {
  auto acc = Paper();
  const double rate = 5000.0, alpha = 100.0;
  auto sol = SolveWorkerArrivalTradeoff(rate, acc, alpha, 50).value();
  double best = std::numeric_limits<double>::infinity();
  int best_c = -1;
  for (int c = 0; c <= 50; ++c) {
    const double obj = c + alpha / (rate * acc.ProbabilityAt(c));
    if (obj < best) {
      best = obj;
      best_c = c;
    }
  }
  EXPECT_EQ(sol.price_cents, best_c);
  EXPECT_NEAR(sol.objective_per_task, best, 1e-9);
}

TEST(WorkerArrivalTradeoffTest, AlphaZeroPicksCheapest) {
  auto acc = Paper();
  auto sol = SolveWorkerArrivalTradeoff(5000.0, acc, 0.0, 50).value();
  EXPECT_EQ(sol.price_cents, 0);
  EXPECT_DOUBLE_EQ(sol.objective_per_task, 0.0);
}

TEST(WorkerArrivalTradeoffTest, PriceMonotoneInAlpha) {
  auto acc = Paper();
  int prev = -1;
  for (double alpha : {0.0, 1.0, 10.0, 100.0, 1000.0, 10000.0}) {
    auto sol = SolveWorkerArrivalTradeoff(5000.0, acc, alpha, 50).value();
    EXPECT_GE(sol.price_cents, prev) << "alpha = " << alpha;
    prev = sol.price_cents;
  }
}

TEST(WorkerArrivalTradeoffTest, LatencyMonotoneDecreasingInAlpha) {
  auto acc = Paper();
  double prev = std::numeric_limits<double>::infinity();
  for (double alpha : {1.0, 10.0, 100.0, 1000.0}) {
    auto sol = SolveWorkerArrivalTradeoff(5000.0, acc, alpha, 50).value();
    EXPECT_LE(sol.expected_latency_per_task, prev + 1e-12) << "alpha " << alpha;
    prev = sol.expected_latency_per_task;
  }
}

TEST(WorkerArrivalTradeoffTest, CurveExposedForAllPrices) {
  auto acc = Paper();
  auto sol = SolveWorkerArrivalTradeoff(5000.0, acc, 50.0, 30).value();
  ASSERT_EQ(sol.objective_curve.size(), 31u);
  // The curve's minimum is at the reported price.
  for (double v : sol.objective_curve) {
    EXPECT_GE(v, sol.objective_per_task - 1e-9);
  }
  EXPECT_NEAR(sol.objective_curve[static_cast<size_t>(sol.price_cents)],
              sol.objective_per_task, 1e-12);
}

TEST(FixedRateTradeoffTest, Validation) {
  auto acc = Paper();
  EXPECT_TRUE(
      SolveFixedRateTradeoff(0.0, acc, 1.0, 50).status().IsInvalidArgument());
  EXPECT_TRUE(
      SolveFixedRateTradeoff(10.0, acc, 1.0, 50, 0.0).status().IsInvalidArgument());
}

TEST(FixedRateTradeoffTest, MatchesBruteForce) {
  auto acc = Paper();
  const double lambda = 50.0, alpha = 2.0;
  auto sol = SolveFixedRateTradeoff(lambda, acc, alpha, 40).value();
  double best = std::numeric_limits<double>::infinity();
  int best_c = -1;
  for (int c = 0; c <= 40; ++c) {
    const double mu = lambda * acc.ProbabilityAt(c);
    const double q = stats::PoissonPmf(1, mu);
    if (q <= 0.0) continue;
    const double obj = c + alpha / q;
    if (obj < best) {
      best = obj;
      best_c = c;
    }
  }
  EXPECT_EQ(sol.price_cents, best_c);
  EXPECT_NEAR(sol.objective_per_task, best, 1e-9);
}

TEST(FixedRateTradeoffTest, PremiseViolationDetected) {
  // Huge lambda: even moderate p makes two completions per interval likely.
  auto acc = Paper();
  EXPECT_TRUE(SolveFixedRateTradeoff(100000.0, acc, 1.0, 50, 0.05)
                  .status()
                  .IsFailedPrecondition());
}

TEST(FixedRateTradeoffTest, AgreesWithWorkerArrivalInSmallRateLimit) {
  // As lambda -> 0, Pois(1 | lambda p) ~ lambda p, so the fixed-rate
  // objective c + alpha / (lambda p) matches the worker-arrival form with
  // alpha_hour = alpha / (interval length); both should then pick the same
  // price.
  auto acc = Paper();
  const double lambda = 0.05;
  auto fixed = SolveFixedRateTradeoff(lambda, acc, 0.01, 50).value();
  auto arrival = SolveWorkerArrivalTradeoff(lambda, acc, 0.01, 50).value();
  EXPECT_EQ(fixed.price_cents, arrival.price_cents);
}

}  // namespace
}  // namespace crowdprice::pricing
