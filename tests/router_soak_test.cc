// Router soak: the 256-campaign streaming schedule from the remote soak,
// replayed through the full multi-node stack -- client -> router server ->
// CampaignRouter -> three loopback crowdprice_serve backends -- must stay
// bit-identical per SimulationResult field to FleetSimulator::RunStreaming
// on the same schedule. Halfway through the replay the router live-drains
// one backend (the one owning the most live campaigns, so at least a third
// of the fleet migrates), proving that exported campaigns re-admitted on a
// peer answer the same bytes they would have answered at home.
//
// The campaign mix follows CROWDPRICE_TEST_SEED (the CI matrix runs
// several seeds); bit-identity and the migration floor must hold for every
// seed. The TSan CI job runs this binary to certify the routed decide
// fan-out, control forwarding, probe loop, and drain barrier together.
//
// The soak runs twice: once over plain TCP and once with every hop --
// client -> router front, router pool -> backends -- under TLS. The
// transport sits below the frame protocol, so the TLS replay must be
// bit-identical too (skipped cleanly on builds without OpenSSL).

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "choice/acceptance.h"
#include "engine/engine.h"
#include "market/fleet_simulator.h"
#include "market/session.h"
#include "market/simulator.h"
#include "net/client.h"
#include "net/server.h"
#include "net/tls_transport.h"
#include "pricing/fixed_price.h"
#include "router/router.h"
#include "serving/campaign_shard_map.h"
#include "tls_test_util.h"
#include "util/rng.h"

namespace crowdprice::router {
namespace {

using market::ArrivalSchedule;
using market::CampaignSession;
using market::FleetOutcome;
using market::FleetSimulator;
using market::SimulationResult;
using market::SimulatorConfig;
using net::PricingClient;
using net::PricingServer;
using net::RemoteController;
using net::ServerOptions;

uint64_t TestSeed() {
  const char* env = std::getenv("CROWDPRICE_TEST_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 2026;
}

// Acceptance that is simply min(1, c / 100): cheap and price-sensitive.
class LinearAcceptance final : public choice::AcceptanceFunction {
 public:
  double ProbabilityAt(double reward_cents) const override {
    return std::clamp(reward_cents / 100.0, 0.0, 1.0);
  }
};

engine::PolicyArtifact SmallDeadlineArtifact() {
  engine::DeadlineDpSpec spec;
  spec.problem.num_tasks = 20;
  spec.problem.num_intervals = 8;
  spec.problem.penalty_cents = 150.0;
  spec.interval_lambdas.assign(8, 60.0);
  spec.actions = pricing::ActionSet::FromPriceGrid(
                     30, choice::LogitAcceptance::Paper2014())
                     .value();
  return engine::Engine::Solve(spec).value();
}

/// Wall-clock hours -> bucket-edge index, mirroring the fleet event
/// loop's quantization (round up; epsilon keeps on-edge times there).
int64_t EdgeCeil(double hours, double bucket) {
  const auto edge = static_cast<int64_t>(std::ceil(hours / bucket - 1e-9));
  return edge < 0 ? 0 : edge;
}

void ExpectBitIdentical(const SimulationResult& got,
                        const SimulationResult& want, int index) {
  EXPECT_EQ(got.total_cost_cents, want.total_cost_cents)
      << "campaign " << index;
  EXPECT_EQ(got.tasks_assigned, want.tasks_assigned) << "campaign " << index;
  EXPECT_EQ(got.tasks_completed_by_horizon, want.tasks_completed_by_horizon);
  EXPECT_EQ(got.tasks_unassigned, want.tasks_unassigned);
  EXPECT_EQ(got.completion_time_hours, want.completion_time_hours);
  EXPECT_EQ(got.finished, want.finished);
  EXPECT_EQ(got.worker_arrivals, want.worker_arrivals);
  ASSERT_EQ(got.events.size(), want.events.size()) << "campaign " << index;
  for (size_t e = 0; e < got.events.size(); ++e) {
    EXPECT_EQ(got.events[e].time_hours, want.events[e].time_hours);
    EXPECT_EQ(got.events[e].tasks, want.events[e].tasks);
    EXPECT_EQ(got.events[e].cost_cents, want.events[e].cost_cents);
    EXPECT_EQ(got.events[e].group_size, want.events[e].group_size);
  }
  ASSERT_EQ(got.workers.size(), want.workers.size()) << "campaign " << index;
  for (size_t w = 0; w < got.workers.size(); ++w) {
    EXPECT_EQ(got.workers[w].first_accept_hours,
              want.workers[w].first_accept_hours);
    EXPECT_EQ(got.workers[w].hits, want.workers[w].hits);
    EXPECT_EQ(got.workers[w].tasks, want.workers[w].tasks);
    EXPECT_EQ(got.workers[w].correct, want.workers[w].correct);
    EXPECT_EQ(got.workers[w].true_accuracy, want.workers[w].true_accuracy);
  }
}

/// The full soak, parameterized over the wire: `server_tls` configures
/// every server (the three backends and the router's front), and
/// `client_tls` configures everything that dials one (the router's
/// backend pool and the test's own client). Both empty runs plain TCP;
/// the TLS variant must replay the identical bytes -- the transport is
/// below the frame protocol, so the determinism contract cannot care.
void RunStreamingSoak(const net::TlsOptions& server_tls,
                      const net::TlsOptions& client_tls) {
  const auto rate =
      arrival::PiecewiseConstantRate::Create({40.0, 20.0, 60.0, 30.0, 50.0},
                                             0.5)
          .value();
  const double bucket = 0.5;
  LinearAcceptance acceptance;
  const engine::PolicyArtifact solved = SmallDeadlineArtifact();
  const auto shared = std::make_shared<const engine::PolicyArtifact>(solved);
  pricing::FixedPriceSolution fixed;
  fixed.price_cents = 77;
  const auto swap_artifact = std::make_shared<const engine::PolicyArtifact>(
      engine::PolicyArtifact(fixed));
  constexpr int kCampaigns = 256;
  const uint64_t seed = TestSeed();

  struct Spec {
    SimulatorConfig config;
    double admit_hours = 0.0;
    double swap_hours = -1.0;    ///< < 0: no swap event.
    double retire_hours = -1.0;  ///< < 0: no retirement event.
  };
  std::vector<Spec> specs;
  {
    Rng scheduler(seed);
    for (int i = 0; i < kCampaigns; ++i) {
      Spec spec;
      spec.config.total_tasks = 3 + i % 7;
      spec.config.horizon_hours = 2.0 + 0.5 * (i % 4);
      spec.config.decision_interval_hours = 1.0;
      spec.config.service_minutes_per_task = (i % 5 == 0) ? 1.5 : 0.0;
      spec.admit_hours =
          0.5 * static_cast<double>(scheduler.UniformInt(0, 16));
      if (i % 4 == 1) spec.swap_hours = spec.admit_hours + 1.0;
      if (i % 5 == 2) {
        spec.retire_hours = spec.admit_hours + 1.0 + 0.5 * (i % 6);
      }
      specs.push_back(spec);
    }
  }

  // In-process reference: the same schedule through RunStreaming.
  std::vector<FleetOutcome> want;
  {
    FleetSimulator fleet = FleetSimulator::Create(4).value();
    ArrivalSchedule schedule;
    Rng master(seed + 1);
    for (const Spec& spec : specs) {
      Rng child = master.Fork();
      const size_t entry =
          schedule
              .AdmitShared(spec.admit_hours, shared, spec.config, acceptance,
                           child)
              .value();
      if (spec.swap_hours >= 0.0) {
        ASSERT_TRUE(
            schedule.SwapArtifactAt(entry, spec.swap_hours, swap_artifact)
                .ok());
      }
      if (spec.retire_hours >= 0.0) {
        ASSERT_TRUE(schedule.RetireAt(entry, spec.retire_hours).ok());
      }
    }
    want = fleet.RunStreaming(rate, std::move(schedule)).value();
    ASSERT_EQ(want.size(), specs.size());
  }

  // The multi-node stack: three backends, each a shard map behind its own
  // loopback server; the router shards across them and is itself fronted
  // by a server the client connects to.
  constexpr int kBackends = 3;
  std::vector<std::unique_ptr<serving::CampaignShardMap>> maps;
  std::vector<std::unique_ptr<PricingServer>> backends;
  std::vector<std::string> names;
  for (int b = 0; b < kBackends; ++b) {
    maps.push_back(std::make_unique<serving::CampaignShardMap>(
        serving::CampaignShardMap::Create(2).value()));
    ServerOptions options;
    options.port = 0;
    options.num_workers = 2;
    options.tls = server_tls;
    backends.push_back(std::make_unique<PricingServer>(
        PricingServer::Create(maps.back().get(), options).value()));
    ASSERT_TRUE(backends.back()->Start().ok());
    names.push_back("127.0.0.1:" + std::to_string(backends.back()->port()));
  }

  RouterOptions router_options;
  router_options.pool.probe_interval_ms = 50;  // Probes run under traffic.
  router_options.pool.client.tls = client_tls;
  auto router = CampaignRouter::Create(names, router_options);
  ASSERT_TRUE(router.ok()) << router.status();
  ServerOptions front_options;
  front_options.port = 0;
  front_options.num_workers = 4;
  front_options.tls = server_tls;
  auto front = PricingServer::Create(&router.value(), front_options);
  ASSERT_TRUE(front.ok());
  ASSERT_TRUE(front->Start().ok());
  net::ClientOptions client_options;
  client_options.tls = client_tls;
  auto client =
      PricingClient::Connect("127.0.0.1", front->port(), client_options);
  ASSERT_TRUE(client.ok());

  // Admit the whole fleet up front (each campaign anchored to its admit
  // wall), so the live set is deep when the mid-soak rebalance fires.
  std::vector<serving::CampaignId> ids;
  std::vector<double> admit_walls;
  for (const Spec& spec : specs) {
    const int64_t admit_edge = EdgeCeil(spec.admit_hours, bucket);
    const double admit_wall = static_cast<double>(admit_edge) * bucket;
    serving::CampaignLimits limits;
    limits.total_tasks = spec.config.total_tasks;
    limits.deadline_hours = spec.config.horizon_hours;
    limits.admit_hours = admit_wall;
    const auto id = client->AdmitShared(shared, limits);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
    admit_walls.push_back(admit_wall);
  }
  ASSERT_EQ(router->live_campaigns(), static_cast<size_t>(kCampaigns));

  size_t want_event_retired = 0;
  size_t migrated = 0;
  Rng master(seed + 1);
  for (size_t i = 0; i < specs.size(); ++i) {
    const Spec& spec = specs[i];
    Rng child = master.Fork();
    const double admit_wall = admit_walls[i];

    // Mid-soak rebalance: live-drain the backend that owns the most of
    // the still-live fleet, which is always at least a third of it.
    if (i == specs.size() / 2) {
      const size_t live_before = router->live_campaigns();
      const PlacementTable placement = router->placement();
      std::map<std::string, size_t> owned;
      for (size_t j = i; j < ids.size(); ++j) {
        ++owned[placement.OwnerOf(ids[j]).value()];
      }
      std::string busiest;
      size_t busiest_count = 0;
      for (const auto& [name, count] : owned) {
        if (count > busiest_count) {
          busiest = name;
          busiest_count = count;
        }
      }
      ASSERT_FALSE(busiest.empty());
      const auto moved = router->RemoveBackend(busiest);
      ASSERT_TRUE(moved.ok()) << moved.status();
      migrated = *moved;
      EXPECT_EQ(migrated, busiest_count);
      EXPECT_GE(migrated * 3, live_before)
          << "rebalance must move at least a third of the live fleet";
      EXPECT_EQ(router->live_campaigns(), live_before);
      EXPECT_EQ(router->stats().lost_campaigns, 0u);
      // The drained backend is empty; its campaigns now answer from
      // their new owners, bit for bit (asserted by the replay below).
      for (int b = 0; b < kBackends; ++b) {
        if (names[b] == busiest) {
          EXPECT_EQ(maps[b]->live_campaigns(), 0u);
        }
      }
    }

    RemoteController controller(&client.value(), ids[i]);
    auto session = CampaignSession::CreateAt(spec.config, rate, acceptance,
                                             controller, child, admit_wall);
    ASSERT_TRUE(session.ok()) << session.status().ToString();

    const int64_t admit_edge = EdgeCeil(spec.admit_hours, bucket);
    struct Event {
      int64_t edge = 0;
      bool retire = false;
    };
    std::vector<Event> events;
    if (spec.swap_hours >= 0.0) {
      events.push_back(
          {std::max(EdgeCeil(spec.swap_hours, bucket), admit_edge), false});
    }
    if (spec.retire_hours >= 0.0) {
      events.push_back(
          {std::max(EdgeCeil(spec.retire_hours, bucket), admit_edge), true});
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const Event& a, const Event& b) {
                       return a.edge < b.edge;
                     });

    bool event_retired = false;
    serving::CampaignState final_state = serving::CampaignState::kLive;
    for (const Event& event : events) {
      const double edge_wall = static_cast<double>(event.edge) * bucket;
      ASSERT_TRUE(session->AdvanceUntil(edge_wall).ok());
      if (session->done()) break;
      if (event.retire) {
        ASSERT_TRUE(client->Retire(ids[i]).ok());
        ASSERT_TRUE(session->Curtail(edge_wall).ok());
        final_state = serving::CampaignState::kRetiredExplicit;
        event_retired = true;
        break;
      }
      ASSERT_TRUE(client->SwapArtifactShared(ids[i], swap_artifact).ok());
    }
    if (!event_retired) {
      ASSERT_TRUE(session->AdvanceUntil(session->end_hours()).ok());
      const auto ticked = client->Tick(ids[i], session->end_hours(),
                                       session->remaining_tasks());
      ASSERT_TRUE(ticked.ok()) << ticked.status().ToString();
      final_state = *ticked;
    } else {
      ++want_event_retired;
    }

    const auto got = std::move(session.value()).TakeResult();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(want[i].admit_hours, admit_wall) << "campaign " << i;
    EXPECT_EQ(want[i].final_state, final_state) << "campaign " << i;
    ExpectBitIdentical(*got, want[i].result, static_cast<int>(i));
  }

  // Lifecycle churn reconciles with the reference run and the router's
  // own books.
  size_t reference_event_retired = 0;
  for (const FleetOutcome& outcome : want) {
    if (outcome.final_state == serving::CampaignState::kRetiredExplicit) {
      ++reference_event_retired;
    }
  }
  EXPECT_EQ(want_event_retired, reference_event_retired);
  EXPECT_EQ(router->live_campaigns(), 0u);
  for (int b = 0; b < kBackends; ++b) {
    EXPECT_EQ(maps[b]->live_campaigns(), 0u) << names[b];
  }
  const RouterStats stats = router->stats();
  EXPECT_EQ(stats.rebalances, 1u);
  EXPECT_EQ(stats.migrations, migrated);
  EXPECT_EQ(stats.lost_campaigns, 0u);
  EXPECT_EQ(stats.unavailable, 0u);
  EXPECT_GT(stats.decide_requests, 0u);
  EXPECT_GE(stats.control_ops, static_cast<uint64_t>(kCampaigns) * 2);

  ASSERT_TRUE(front->Stop().ok());
  for (auto& backend : backends) {
    ASSERT_TRUE(backend->Stop().ok());
  }
}

TEST(RouterSoakTest, StreamingScheduleBitIdenticalThroughThreeBackends) {
  RunStreamingSoak(net::TlsOptions{}, net::TlsOptions{});
}

TEST(RouterSoakTest, StreamingScheduleBitIdenticalOverTls) {
  if (!net::TlsSupported()) GTEST_SKIP() << "no OpenSSL in this build";
#if CROWDPRICE_HAVE_OPENSSL
  tls_test::TestCa ca;
  const tls_test::TestIdentity identity = ca.MintLeaf("soak");
  net::TlsOptions server_tls;
  server_tls.cert_file = identity.cert_file;
  server_tls.key_file = identity.key_file;
  net::TlsOptions client_tls;
  client_tls.ca_file = ca.ca_file();
  RunStreamingSoak(server_tls, client_tls);
#endif
}

}  // namespace
}  // namespace crowdprice::router
