#include "choice/utility_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/regression.h"
#include "util/rng.h"

namespace crowdprice::choice {
namespace {

TEST(MultinomialLogitTest, EmptyErrors) {
  EXPECT_TRUE(MultinomialLogitProbabilities({}).status().IsInvalidArgument());
}

TEST(MultinomialLogitTest, UniformForEqualUtilities) {
  auto p = MultinomialLogitProbabilities({1.0, 1.0, 1.0, 1.0}).value();
  for (double x : p) EXPECT_NEAR(x, 0.25, 1e-12);
}

TEST(MultinomialLogitTest, ClosedFormTwoTasks) {
  auto p = MultinomialLogitProbabilities({2.0, 0.0}).value();
  EXPECT_NEAR(p[0], std::exp(2.0) / (std::exp(2.0) + 1.0), 1e-12);
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
}

TEST(MultinomialLogitTest, StableForLargeUtilities) {
  auto p = MultinomialLogitProbabilities({1000.0, 999.0}).value();
  EXPECT_NEAR(p[0], std::exp(1.0) / (std::exp(1.0) + 1.0), 1e-9);
}

TEST(SimulateGumbelChoiceTest, Validation) {
  Rng rng(1);
  EXPECT_TRUE(SimulateGumbelChoice({1.0}, 3, 10, rng).status().IsOutOfRange());
  EXPECT_TRUE(SimulateGumbelChoice({1.0}, 0, 0, rng).status().IsInvalidArgument());
}

TEST(SimulateGumbelChoiceTest, ConvergesToMnlFormula) {
  // McFadden: with Gumbel noise, win probabilities are exactly MNL.
  const std::vector<double> utils{0.5, 0.0, -0.7, 1.2};
  auto exact = MultinomialLogitProbabilities(utils).value();
  Rng rng(2);
  for (size_t target = 0; target < utils.size(); ++target) {
    const double freq = SimulateGumbelChoice(utils, target, 60000, rng).value();
    EXPECT_NEAR(freq, exact[target], 0.01) << "target " << target;
  }
}

TEST(MarketUtilitySimulatorTest, CreateValidation) {
  Rng rng(3);
  UtilityMarketConfig config;
  config.num_tasks = 1;
  EXPECT_TRUE(MarketUtilitySimulator::Create(config, rng).status().IsInvalidArgument());
  config = UtilityMarketConfig{};
  config.reward_scale = 0.0;
  EXPECT_TRUE(MarketUtilitySimulator::Create(config, rng).status().IsInvalidArgument());
}

// A market where the acceptance transition happens inside c in [0, 100]:
// our mean utility c/20 - 1 crosses the strongest competitor (~1.4 here)
// around c ~ 50.
UtilityMarketConfig StrongSignalConfig() {
  UtilityMarketConfig config;
  config.reward_scale = 20.0;
  config.competitor_mu_sd = 0.5;
  return config;
}

TEST(MarketUtilitySimulatorTest, AcceptanceIncreasesWithReward) {
  Rng rng(4);
  auto sim = MarketUtilitySimulator::Create(StrongSignalConfig(), rng).value();
  Rng trial_rng(5);
  const double p_low = sim.EstimateAcceptance(20.0, 20000, trial_rng).value();
  const double p_mid = sim.EstimateAcceptance(60.0, 20000, trial_rng).value();
  const double p_high = sim.EstimateAcceptance(100.0, 20000, trial_rng).value();
  EXPECT_LT(p_low, p_mid);
  EXPECT_LT(p_mid, p_high);
}

TEST(MarketUtilitySimulatorTest, Section511CurveFitsLogitForm) {
  // The paper's Fig. 5 protocol: simulate p-hat(c) over a reward sweep and
  // fit the logit form of Eq. 2; with Normal (not Gumbel) noise the fit is
  // approximate but strong (the paper draws the same conclusion).
  Rng rng(6);
  auto sim = MarketUtilitySimulator::Create(StrongSignalConfig(), rng).value();
  Rng trial_rng(7);
  std::vector<double> rewards, probs;
  for (double c = 20.0; c <= 100.0; c += 10.0) {
    rewards.push_back(c);
    probs.push_back(sim.EstimateAcceptance(c, 40000, trial_rng).value());
  }
  auto fit = stats::FitLogitAcceptance(rewards, probs, /*fixed_m=*/99.0);
  ASSERT_TRUE(fit.ok());
  // Normal noise is not exactly Gumbel, so the logit fit is good but not
  // perfect (r^2 ~ 0.87 here); the exact-MNL case is covered by
  // SimulateGumbelChoiceTest.ConvergesToMnlFormula.
  EXPECT_GT(fit->r_squared, 0.8);
}

TEST(MarketUtilitySimulatorTest, TrialsValidation) {
  Rng rng(8);
  auto sim = MarketUtilitySimulator::Create(UtilityMarketConfig{}, rng).value();
  EXPECT_TRUE(sim.EstimateAcceptance(10.0, 0, rng).status().IsInvalidArgument());
}

}  // namespace
}  // namespace crowdprice::choice
