// Multi-type end-to-end: a solved §6 joint policy played through the
// OfferSheet surface against the joint-logit marketplace it was planned
// for. The per-type completions of the simulated campaigns must match the
// plan's nominal forward prediction (EvaluateMultiTypeNominal) within
// sampling tolerance -- the multi-type analogue of the single-type
// simulator/policy-eval agreement tests.

#include "market/multitype_sim.h"

#include <cmath>

#include <gtest/gtest.h>

#include "arrival/rate_function.h"
#include "engine/engine.h"
#include "pricing/controller.h"
#include "pricing/multitype.h"
#include "stats/descriptive.h"
#include "util/rng.h"

namespace crowdprice::market {
namespace {

engine::MultiTypeSpec TwoTypeSpec() {
  engine::MultiTypeSpec spec;
  spec.s1 = 10.0;
  spec.b1 = 1.4;
  spec.s2 = 10.0;
  spec.b2 = 1.0;
  spec.m = 150.0;
  spec.problem.num_tasks_1 = 8;
  spec.problem.num_tasks_2 = 8;
  spec.problem.num_intervals = 6;
  spec.problem.penalty_1_cents = 250.0;
  spec.problem.penalty_2_cents = 180.0;
  spec.problem.max_price_cents = 24;
  spec.problem.price_stride = 4;
  spec.interval_lambdas.assign(6, 25.0);
  return spec;
}

MultiTypeSimConfig TwoTypeConfig() {
  MultiTypeSimConfig config;
  config.tasks_per_type = {8, 8};
  config.horizon_hours = 6.0;
  config.decision_interval_hours = 1.0;  // one decision per plan interval
  return config;
}

TEST(MultiTypeSimConfigTest, Validation) {
  EXPECT_TRUE(TwoTypeConfig().Validate().ok());
  MultiTypeSimConfig config = TwoTypeConfig();
  config.tasks_per_type.clear();
  EXPECT_TRUE(config.Validate().IsInvalidArgument());
  config = TwoTypeConfig();
  config.tasks_per_type = {0, 0};
  EXPECT_TRUE(config.Validate().IsInvalidArgument());
  config = TwoTypeConfig();
  config.tasks_per_type = {-1, 5};
  EXPECT_TRUE(config.Validate().IsInvalidArgument());
  config = TwoTypeConfig();
  config.horizon_hours = 0.0;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());
  config = TwoTypeConfig();
  config.decision_interval_hours = 0.0;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());
}

TEST(RunMultiTypeSimulationTest, RejectsMismatchedControllers) {
  const auto rate =
      arrival::PiecewiseConstantRate::Constant(25.0, 6.0).value();
  auto joint = pricing::JointLogitAcceptance::Create(10.0, 1.4, 10.0, 1.0,
                                                     150.0)
                   .value();
  pricing::JointLogitSheetAcceptance acceptance(joint);
  FixedOfferController single(Offer{10.0, 1});
  Rng rng(1);
  EXPECT_TRUE(RunMultiTypeSimulation(TwoTypeConfig(), rate, acceptance,
                                     single, rng)
                  .status()
                  .IsInvalidArgument());
}

TEST(RunMultiTypeSimulationTest, DeterministicGivenSeed) {
  const engine::PolicyArtifact artifact =
      engine::Engine::Solve(TwoTypeSpec()).value();
  auto c1 = artifact.MakeController(6.0).value();
  auto c2 = artifact.MakeController(6.0).value();
  const auto rate =
      arrival::PiecewiseConstantRate::Constant(25.0, 6.0).value();
  auto joint = pricing::JointLogitAcceptance::Create(10.0, 1.4, 10.0, 1.0,
                                                     150.0)
                   .value();
  pricing::JointLogitSheetAcceptance acceptance(joint);
  Rng a(42), b(42);
  const auto ra =
      RunMultiTypeSimulation(TwoTypeConfig(), rate, acceptance, *c1, a)
          .value();
  const auto rb =
      RunMultiTypeSimulation(TwoTypeConfig(), rate, acceptance, *c2, b)
          .value();
  EXPECT_EQ(ra.worker_arrivals, rb.worker_arrivals);
  EXPECT_EQ(ra.total_cost_cents, rb.total_cost_cents);
  ASSERT_EQ(ra.types.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(ra.types[i].tasks_assigned, rb.types[i].tasks_assigned);
    EXPECT_EQ(ra.types[i].cost_cents, rb.types[i].cost_cents);
  }
}

// The acceptance-criteria test: simulated per-type completions match the
// MultiTypePlan's nominal prediction within sampling tolerance.
TEST(RunMultiTypeSimulationTest, PerTypeCompletionsMatchNominalPrediction) {
  const engine::MultiTypeSpec spec = TwoTypeSpec();
  const engine::PolicyArtifact artifact =
      engine::Engine::Solve(spec).value();
  const pricing::MultiTypePlan& plan = *artifact.multitype_plan().value();

  auto joint = pricing::JointLogitAcceptance::Create(spec.s1, spec.b1,
                                                     spec.s2, spec.b2, spec.m)
                   .value();
  const pricing::MultiTypeEvaluation nominal =
      pricing::EvaluateMultiTypeNominal(plan, joint).value();
  ASSERT_EQ(nominal.expected_completed.size(), 2u);
  // The policy should be doing real work on both types.
  EXPECT_GT(nominal.expected_completed[0], 1.0);
  EXPECT_GT(nominal.expected_completed[1], 1.0);

  const auto rate =
      arrival::PiecewiseConstantRate::Constant(25.0, 6.0).value();
  pricing::JointLogitSheetAcceptance acceptance(joint);

  constexpr int kReplicates = 400;
  stats::RunningStats done1, done2, cost;
  Rng master(2026);
  for (int rep = 0; rep < kReplicates; ++rep) {
    auto controller = artifact.MakeController(6.0).value();
    Rng child = master.Fork();
    const MultiTypeSimResult result =
        RunMultiTypeSimulation(TwoTypeConfig(), rate, acceptance,
                               *controller, child)
            .value();
    ASSERT_EQ(result.types.size(), 2u);
    EXPECT_EQ(result.types[0].tasks_assigned +
                  result.types[0].tasks_unassigned,
              8);
    EXPECT_EQ(result.types[1].tasks_assigned +
                  result.types[1].tasks_unassigned,
              8);
    done1.Add(static_cast<double>(result.types[0].tasks_assigned));
    done2.Add(static_cast<double>(result.types[1].tasks_assigned));
    cost.Add(result.total_cost_cents);
  }

  EXPECT_NEAR(done1.mean(), nominal.expected_completed[0],
              5.0 * done1.stderr_mean() + 0.15)
      << "type-1 completions diverge from the nominal prediction";
  EXPECT_NEAR(done2.mean(), nominal.expected_completed[1],
              5.0 * done2.stderr_mean() + 0.15)
      << "type-2 completions diverge from the nominal prediction";
  EXPECT_NEAR(cost.mean(), nominal.expected_cost_cents,
              5.0 * cost.stderr_mean() + 2.0)
      << "reward outlay diverges from the nominal prediction";
}

}  // namespace
}  // namespace crowdprice::market
