#include "stats/poisson.h"

#include <cmath>
#include <numeric>
#include <tuple>

#include <gtest/gtest.h>

#include "stats/descriptive.h"
#include "util/rng.h"

namespace crowdprice::stats {
namespace {

TEST(PoissonPmfTest, ZeroLambdaIsPointMassAtZero) {
  EXPECT_DOUBLE_EQ(PoissonPmf(0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(PoissonPmf(1, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(PoissonPmf(5, 0.0), 0.0);
}

TEST(PoissonPmfTest, NegativeKIsZero) {
  EXPECT_DOUBLE_EQ(PoissonPmf(-1, 3.0), 0.0);
  EXPECT_TRUE(std::isinf(PoissonLogPmf(-1, 3.0)));
}

TEST(PoissonPmfTest, MatchesClosedForm) {
  // pmf(k) = e^-lambda lambda^k / k!
  EXPECT_NEAR(PoissonPmf(0, 2.0), std::exp(-2.0), 1e-15);
  EXPECT_NEAR(PoissonPmf(1, 2.0), 2.0 * std::exp(-2.0), 1e-15);
  EXPECT_NEAR(PoissonPmf(2, 2.0), 2.0 * std::exp(-2.0), 1e-15);
  EXPECT_NEAR(PoissonPmf(3, 2.0), 4.0 / 3.0 * std::exp(-2.0), 1e-15);
}

TEST(PoissonPmfTest, LargeArgumentsStayFinite) {
  const double p = PoissonPmf(100000, 100000.0);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1.0);
  // Stirling: mode pmf ~ 1/sqrt(2 pi lambda).
  EXPECT_NEAR(p, 1.0 / std::sqrt(2.0 * M_PI * 100000.0), 1e-6);
}

class PoissonSumToOneTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonSumToOneTest, PmfSumsToOne) {
  const double lambda = GetParam();
  double sum = 0.0;
  for (int k = 0; k < 400; ++k) sum += PoissonPmf(k, lambda);
  EXPECT_NEAR(sum, 1.0, 1e-10) << "lambda = " << lambda;
}

TEST_P(PoissonSumToOneTest, CdfSfComplementarity) {
  const double lambda = GetParam();
  for (int k : {0, 1, 2, 5, 10, 50, 200}) {
    auto cdf = PoissonCdf(k, lambda);
    auto sf = PoissonSf(k + 1, lambda);
    ASSERT_TRUE(cdf.ok());
    ASSERT_TRUE(sf.ok());
    EXPECT_NEAR(cdf.value() + sf.value(), 1.0, 1e-10)
        << "lambda = " << lambda << ", k = " << k;
  }
}

TEST_P(PoissonSumToOneTest, CdfMatchesPartialSums) {
  const double lambda = GetParam();
  double partial = 0.0;
  for (int k = 0; k <= 60; ++k) {
    partial += PoissonPmf(k, lambda);
    auto cdf = PoissonCdf(k, lambda);
    ASSERT_TRUE(cdf.ok());
    ASSERT_NEAR(cdf.value(), partial, 1e-9)
        << "lambda = " << lambda << ", k = " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(LambdaGrid, PoissonSumToOneTest,
                         ::testing::Values(0.01, 0.5, 1.0, 3.0, 10.0, 25.0, 80.0,
                                           150.0));

TEST(PoissonCdfTest, InvalidArguments) {
  EXPECT_TRUE(PoissonCdf(3, -1.0).status().IsInvalidArgument());
  EXPECT_TRUE(PoissonCdf(3, std::nan("")).status().IsInvalidArgument());
  EXPECT_TRUE(PoissonSf(3, -1.0).status().IsInvalidArgument());
}

TEST(PoissonCdfTest, Boundaries) {
  EXPECT_DOUBLE_EQ(PoissonCdf(-1, 4.0).value(), 0.0);
  EXPECT_DOUBLE_EQ(PoissonSf(0, 4.0).value(), 1.0);
  EXPECT_DOUBLE_EQ(PoissonSf(-3, 4.0).value(), 1.0);
  EXPECT_DOUBLE_EQ(PoissonCdf(10, 0.0).value(), 1.0);
  EXPECT_DOUBLE_EQ(PoissonSf(1, 0.0).value(), 0.0);
}

// Paper Table 1: s0 values for epsilon = 1e-9.
TEST(TruncationPointTest, ReproducesPaperTable1) {
  EXPECT_EQ(PoissonTruncationPoint(10.0, 1e-9).value(), 35);
  EXPECT_EQ(PoissonTruncationPoint(20.0, 1e-9).value(), 53);
  EXPECT_EQ(PoissonTruncationPoint(50.0, 1e-9).value(), 99);
}

TEST(TruncationPointTest, InvalidEpsilon) {
  EXPECT_TRUE(PoissonTruncationPoint(5.0, 0.0).status().IsInvalidArgument());
  EXPECT_TRUE(PoissonTruncationPoint(5.0, 1.0).status().IsInvalidArgument());
  EXPECT_TRUE(PoissonTruncationPoint(5.0, -0.1).status().IsInvalidArgument());
}

TEST(TruncationPointTest, ZeroLambda) {
  EXPECT_EQ(PoissonTruncationPoint(0.0, 1e-9).value(), 1);
}

class TruncationPointPropertyTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(TruncationPointPropertyTest, IsMinimalSatisfyingPoint) {
  const auto [lambda, epsilon] = GetParam();
  auto s0 = PoissonTruncationPoint(lambda, epsilon);
  ASSERT_TRUE(s0.ok());
  // Pr[X >= s0] <= epsilon and Pr[X >= s0 - 1] > epsilon (minimality).
  EXPECT_LE(PoissonSf(s0.value(), lambda).value(), epsilon);
  if (s0.value() > 1) {
    EXPECT_GT(PoissonSf(s0.value() - 1, lambda).value(), epsilon);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TruncationPointPropertyTest,
    ::testing::Combine(::testing::Values(0.1, 1.0, 5.0, 17.3, 64.0, 500.0),
                       ::testing::Values(1e-3, 1e-6, 1e-9, 1e-12)));

TEST(TruncatedPoissonTest, MassPlusTailIsOne) {
  for (double lambda : {0.0, 0.3, 2.0, 15.0, 90.0}) {
    auto tp = MakeTruncatedPoisson(lambda, 1e-9);
    ASSERT_TRUE(tp.ok());
    const double mass =
        std::accumulate(tp->pmf.begin(), tp->pmf.end(), 0.0);
    EXPECT_NEAR(mass + tp->tail_mass, 1.0, 1e-12) << "lambda = " << lambda;
    EXPECT_LE(tp->tail_mass, 1e-9 + 1e-12);
  }
}

TEST(TruncatedPoissonTest, EntriesMatchPmf) {
  auto tp = MakeTruncatedPoisson(7.5, 1e-9);
  ASSERT_TRUE(tp.ok());
  for (size_t k = 0; k < tp->pmf.size(); ++k) {
    EXPECT_NEAR(tp->pmf[k], PoissonPmf(static_cast<int>(k), 7.5), 1e-13);
  }
}

TEST(TruncatedPoissonTest, ZeroLambdaSingleEntry) {
  auto tp = MakeTruncatedPoisson(0.0, 1e-9);
  ASSERT_TRUE(tp.ok());
  ASSERT_EQ(tp->pmf.size(), 1u);
  EXPECT_DOUBLE_EQ(tp->pmf[0], 1.0);
  EXPECT_DOUBLE_EQ(tp->tail_mass, 0.0);
}

TEST(QuantizedRateKeyTest, NearEqualRatesShareABucket) {
  // The regression this guards: 6100 * p computed along two code paths can
  // differ in the last ulp, and the cache used to build two full tables.
  const double rate = 6100.0 * 0.31728394612873;
  const double wobbled = rate * (1.0 + 1e-15);
  ASSERT_NE(rate, wobbled);  // genuinely distinct doubles
  EXPECT_EQ(QuantizedRateKey(rate), QuantizedRateKey(wobbled));
  EXPECT_EQ(SnapRate(rate), SnapRate(wobbled));
  // Snapping is idempotent and ulp-scale: relative error far below the
  // truncation epsilons in use.
  EXPECT_EQ(SnapRate(SnapRate(rate)), SnapRate(rate));
  EXPECT_NEAR(SnapRate(rate) / rate, 1.0, 1e-11);
  // Round constants used throughout the tests are already representable
  // with clear low mantissa bits; snapping must not move them.
  for (double exact : {0.0, 1.0, 90.0, 610.0, 6100.0, 0.5, 0.25}) {
    EXPECT_EQ(SnapRate(exact), exact) << exact;
  }
}

TEST(TruncatedPoissonCacheTest, NearEqualRatesShareOneTable) {
  TruncatedPoissonCache cache(1e-9);
  const double rate = 6100.0 * 0.31728394612873;
  auto a = cache.Get(rate);
  ASSERT_TRUE(a.ok());
  auto b = cache.Get(rate * (1.0 + 1e-15));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);  // literally the same table
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), 1);
  // A genuinely different rate still gets its own table.
  auto c = cache.Get(rate * 1.5);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(*a, *c);
  EXPECT_EQ(cache.entries(), 2u);
}

TEST(TruncatedPoissonCacheTest, RejectsInvalidRates) {
  TruncatedPoissonCache cache(1e-9);
  EXPECT_TRUE(cache.Get(-1.0).status().IsInvalidArgument());
  EXPECT_TRUE(cache.Get(std::nan("")).status().IsInvalidArgument());
}

class PoissonSamplerTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonSamplerTest, MomentsMatch) {
  const double lambda = GetParam();
  Rng rng(1234);
  RunningStats stats;
  const int n = lambda < 1.0 ? 400000 : 120000;
  for (int i = 0; i < n; ++i) {
    stats.Add(static_cast<double>(SamplePoisson(rng, lambda)));
  }
  // Mean and variance of Poisson are both lambda; allow 5-sigma slack.
  const double mean_tol = 5.0 * std::sqrt(lambda / n) + 1e-9;
  EXPECT_NEAR(stats.mean(), lambda, mean_tol) << "lambda = " << lambda;
  EXPECT_NEAR(stats.variance(), lambda, 0.05 * lambda + 0.01)
      << "lambda = " << lambda;
}

INSTANTIATE_TEST_SUITE_P(LambdaGrid, PoissonSamplerTest,
                         ::testing::Values(0.1, 0.9, 3.0, 9.9,  // inversion
                                           10.1, 30.0, 87.0, 400.0,  // PTRS
                                           2000.0));

TEST(PoissonSamplerTest, ZeroAndNegativeLambda) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(SamplePoisson(rng, 0.0), 0);
    EXPECT_EQ(SamplePoisson(rng, -2.0), 0);
  }
}

TEST(PoissonSamplerTest, DistributionMatchesPmfChiSquared) {
  // Goodness-of-fit at lambda = 15 (PTRS path): compare bin frequencies to
  // the exact pmf; crude 6-sigma bound per bin.
  const double lambda = 15.0;
  Rng rng(777);
  const int n = 200000;
  std::vector<int> counts(61, 0);
  for (int i = 0; i < n; ++i) {
    const int k = SamplePoisson(rng, lambda);
    if (k <= 60) ++counts[static_cast<size_t>(k)];
  }
  for (int k = 5; k <= 30; ++k) {
    const double expect = n * PoissonPmf(k, lambda);
    EXPECT_NEAR(static_cast<double>(counts[static_cast<size_t>(k)]), expect,
                6.0 * std::sqrt(expect))
        << "k = " << k;
  }
}

TEST(PoissonSamplerTest, DeterministicAcrossRuns) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(SamplePoisson(a, 33.3), SamplePoisson(b, 33.3));
  }
}

}  // namespace
}  // namespace crowdprice::stats
