#include "pricing/fixed_price.h"

#include <cmath>

#include <gtest/gtest.h>

#include "choice/acceptance.h"
#include "pricing/penalty_search.h"
#include "stats/poisson.h"

namespace crowdprice::pricing {
namespace {

choice::LogitAcceptance Paper() { return choice::LogitAcceptance::Paper2014(); }

// The paper's headline setting (§5.2.1): N = 200 tasks, 24 h horizon, and a
// marketplace whose total worker arrivals over the horizon make c0 ~ 12.
std::vector<double> PaperLambdas(int nt = 72, double total = 122000.0) {
  return std::vector<double>(static_cast<size_t>(nt), total / nt);
}

TEST(EvaluateFixedPriceTest, Validation) {
  auto acc = Paper();
  EXPECT_TRUE(
      EvaluateFixedPrice(10, 0, PaperLambdas(), acc).status().IsInvalidArgument());
  EXPECT_TRUE(EvaluateFixedPrice(10, 5, {}, acc).status().IsInvalidArgument());
  EXPECT_TRUE(EvaluateFixedPrice(-1, 5, PaperLambdas(), acc)
                  .status()
                  .IsInvalidArgument());
}

TEST(EvaluateFixedPriceTest, SingleTaskAnalytic) {
  auto acc = Paper();
  const std::vector<double> lambdas{100.0};
  auto sol = EvaluateFixedPrice(10, 1, lambdas, acc).value();
  const double rate = 100.0 * acc.ProbabilityAt(10.0);
  EXPECT_NEAR(sol.expected_remaining, std::exp(-rate), 1e-9);
  EXPECT_NEAR(sol.prob_finish, 1.0 - std::exp(-rate), 1e-9);
  EXPECT_NEAR(sol.expected_cost_cents, 10.0 * (1.0 - std::exp(-rate)), 1e-8);
}

TEST(EvaluateFixedPriceTest, RemainingDecreasesWithPrice) {
  auto acc = Paper();
  double prev = 1e18;
  for (int c = 0; c <= 30; c += 5) {
    auto sol = EvaluateFixedPrice(c, 200, PaperLambdas(), acc).value();
    EXPECT_LE(sol.expected_remaining, prev + 1e-9);
    prev = sol.expected_remaining;
  }
}

TEST(TheoreticalMinimumPriceTest, ReproducesPaperC0OfTwelve) {
  // §5.2.1: "In our experiment, c0 ~ 12".
  auto c0 = TheoreticalMinimumPrice(200, PaperLambdas(), Paper(), 50);
  ASSERT_TRUE(c0.ok());
  EXPECT_EQ(c0.value(), 12);
}

TEST(TheoreticalMinimumPriceTest, Minimality) {
  auto acc = Paper();
  const auto lambdas = PaperLambdas();
  const int c0 = TheoreticalMinimumPrice(200, lambdas, acc, 50).value();
  double total = 0.0;
  for (double l : lambdas) total += l;
  EXPECT_GE(acc.ProbabilityAt(static_cast<double>(c0)), 200.0 / total);
  EXPECT_LT(acc.ProbabilityAt(static_cast<double>(c0 - 1)), 200.0 / total);
}

TEST(SolveFixedForQuantileTest, ReproducesPaperPriceOfSixteen) {
  // §5.2.1: the fixed strategy needs c = 16 for the 99.9% guarantee, a 33%
  // premium over the dynamic policy's ~12.
  auto sol = SolveFixedForQuantile(200, PaperLambdas(), Paper(), 50, 0.999);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->price_cents, 16);
  EXPECT_GE(sol->prob_finish, 0.999);
}

TEST(SolveFixedForQuantileTest, MinimalityAndValidation) {
  auto acc = Paper();
  const auto lambdas = PaperLambdas();
  auto sol = SolveFixedForQuantile(200, lambdas, acc, 50, 0.999).value();
  auto below = EvaluateFixedPrice(sol.price_cents - 1, 200, lambdas, acc).value();
  EXPECT_LT(below.prob_finish, 0.999);
  EXPECT_TRUE(SolveFixedForQuantile(200, lambdas, acc, 50, 0.0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(SolveFixedForQuantile(200, lambdas, acc, 50, 1.0)
                  .status()
                  .IsInvalidArgument());
}

TEST(SolveFixedForQuantileTest, UnreachableCeiling) {
  EXPECT_TRUE(SolveFixedForQuantile(200, PaperLambdas(), Paper(), 5, 0.999)
                  .status()
                  .IsOutOfRange());
}

TEST(SolveFixedForExpectedCompletionTest, FaridaniCriterion) {
  auto acc = Paper();
  const auto lambdas = PaperLambdas();
  auto sol = SolveFixedForExpectedCompletion(200, lambdas, acc, 50).value();
  // E[X] >= N at the solution but not one cent below.
  double total = 0.0;
  for (double l : lambdas) total += l;
  EXPECT_GE(total * acc.ProbabilityAt(sol.price_cents), 200.0);
  EXPECT_LT(total * acc.ProbabilityAt(sol.price_cents - 1), 200.0);
  // The expectation criterion coincides with c0.
  EXPECT_EQ(sol.price_cents,
            TheoreticalMinimumPrice(200, lambdas, acc, 50).value());
}

TEST(SolveFixedForExpectedRemainingTest, MeetsBoundMinimally) {
  auto acc = Paper();
  const auto lambdas = PaperLambdas();
  for (double bound : {0.1, 1.0, 5.0}) {
    auto sol =
        SolveFixedForExpectedRemaining(200, lambdas, acc, 50, bound).value();
    EXPECT_LE(sol.expected_remaining, bound);
    auto below =
        EvaluateFixedPrice(sol.price_cents - 1, 200, lambdas, acc).value();
    EXPECT_GT(below.expected_remaining, bound);
  }
}

// --- Expected finish time (Faridani's original criterion) -------------------

TEST(ExpectedFinishTimeTest, Validation) {
  auto rate = arrival::PiecewiseConstantRate::Constant(100.0, 1.0).value();
  EXPECT_TRUE(ExpectedFinishTimeHours(0, rate, 0.5).status().IsInvalidArgument());
  EXPECT_TRUE(ExpectedFinishTimeHours(5, rate, 1.5).status().IsInvalidArgument());
  EXPECT_TRUE(
      ExpectedFinishTimeHours(5, rate, 0.0).status().IsFailedPrecondition());
}

TEST(ExpectedFinishTimeTest, SingleTaskIsExponentialMean) {
  // Homogeneous rate 100/h, p = 0.2: first completion ~ Exp(20/h),
  // E[T_1] = 1/20 h.
  auto rate = arrival::PiecewiseConstantRate::Constant(100.0, 0.01).value();
  EXPECT_NEAR(ExpectedFinishTimeHours(1, rate, 0.2).value(), 1.0 / 20.0, 5e-3);
}

TEST(ExpectedFinishTimeTest, ErlangMeanForManyTasks) {
  // N-th completion of a homogeneous Poisson(rate*p) process has mean N/mu.
  auto rate = arrival::PiecewiseConstantRate::Constant(1000.0, 0.02).value();
  const double mu = 1000.0 * 0.1;
  for (int n : {5, 50, 200}) {
    EXPECT_NEAR(ExpectedFinishTimeHours(n, rate, 0.1).value(),
                static_cast<double>(n) / mu, 0.02 * n / mu + 0.02)
        << "n = " << n;
  }
}

TEST(ExpectedFinishTimeTest, DeadNightsAddTheirLength) {
  // Day/night rate (fast 12 h, dead 12 h): a batch needing ~18 productive
  // hours must sit through one dead night, so E[T] exceeds the always-on
  // equivalent by roughly the night's length.
  std::vector<double> day_night;
  for (int h = 0; h < 12; ++h) day_night.push_back(1000.0);
  for (int h = 0; h < 12; ++h) day_night.push_back(0.0);
  auto bursty = arrival::PiecewiseConstantRate::Create(day_night, 1.0).value();
  auto always_on = arrival::PiecewiseConstantRate::Constant(1000.0, 1.0).value();
  const double t_bursty = ExpectedFinishTimeHours(180, bursty, 0.01).value();
  const double t_always = ExpectedFinishTimeHours(180, always_on, 0.01).value();
  // ~18 h of productive time either way; the bursty market inserts the
  // 12-hour night between hours 12 and 24.
  EXPECT_NEAR(t_always, 18.0, 0.5);
  EXPECT_NEAR(t_bursty, t_always + 12.0, 0.75);
}

TEST(SolveFixedForExpectedFinishTimeTest, MinimalAndFeasible) {
  auto acc = Paper();
  auto rate = arrival::PiecewiseConstantRate::Constant(5083.0, 24.0).value();
  auto sol = SolveFixedForExpectedFinishTime(200, rate, 24.0, acc, 50).value();
  const double p = acc.ProbabilityAt(sol.price_cents);
  EXPECT_LE(ExpectedFinishTimeHours(200, rate, p).value(), 24.0);
  if (sol.price_cents > 0) {
    const double p_below = acc.ProbabilityAt(sol.price_cents - 1);
    EXPECT_GT(ExpectedFinishTimeHours(200, rate, p_below).value(), 24.0);
  }
  // The expectation criterion is weaker than the 99.9% quantile one, so its
  // price is no higher (the original Faridani scheme's known weakness).
  auto strict =
      SolveFixedForQuantile(200, std::vector<double>(72, 5083.0 * 24.0 / 72.0),
                            acc, 50, 0.999)
          .value();
  EXPECT_LE(sol.price_cents, strict.price_cents);
}

// --- Penalty search (Theorem 2) ---------------------------------------------

TEST(PenaltySearchTest, Validation) {
  auto acc = Paper();
  auto actions = ActionSet::FromPriceGrid(40, acc).value();
  DeadlineProblem p;
  p.num_tasks = 20;
  p.num_intervals = 6;
  auto lambdas = std::vector<double>(6, 800.0);
  EXPECT_TRUE(SolveForExpectedRemaining(p, lambdas, actions, -1.0)
                  .status()
                  .IsInvalidArgument());
  BoundSolveOptions bad;
  bad.max_iterations = 0;
  EXPECT_TRUE(SolveForExpectedRemaining(p, lambdas, actions, 1.0, bad)
                  .status()
                  .IsInvalidArgument());
}

TEST(PenaltySearchTest, MeetsBound) {
  auto acc = Paper();
  auto actions = ActionSet::FromPriceGrid(40, acc).value();
  DeadlineProblem p;
  p.num_tasks = 30;
  p.num_intervals = 8;
  auto lambdas = std::vector<double>(8, 900.0);
  for (double bound : {0.25, 1.0, 4.0}) {
    auto result = SolveForExpectedRemaining(p, lambdas, actions, bound).value();
    EXPECT_LE(result.evaluation.expected_remaining, bound) << "bound " << bound;
    EXPECT_GT(result.penalty_used, 0.0);
    EXPECT_GT(result.dp_solves, 1);
  }
}

TEST(PenaltySearchTest, TighterBoundCostsMore) {
  auto acc = Paper();
  auto actions = ActionSet::FromPriceGrid(40, acc).value();
  DeadlineProblem p;
  p.num_tasks = 30;
  p.num_intervals = 8;
  auto lambdas = std::vector<double>(8, 900.0);
  auto tight = SolveForExpectedRemaining(p, lambdas, actions, 0.1).value();
  auto loose = SolveForExpectedRemaining(p, lambdas, actions, 3.0).value();
  EXPECT_GE(tight.evaluation.expected_cost_cents,
            loose.evaluation.expected_cost_cents - 1e-9);
  EXPECT_GE(tight.penalty_used, loose.penalty_used);
}

TEST(PenaltySearchTest, UnreachableBoundFailsCleanly) {
  auto acc = Paper();
  // Price ceiling of 2 cents: nearly no workers accept, so E[remaining]
  // cannot be pushed near zero.
  auto actions = ActionSet::FromPriceGrid(2, acc).value();
  DeadlineProblem p;
  p.num_tasks = 50;
  p.num_intervals = 4;
  auto lambdas = std::vector<double>(4, 50.0);
  auto result = SolveForExpectedRemaining(p, lambdas, actions, 0.001);
  EXPECT_TRUE(result.status().IsFailedPrecondition());
}

TEST(PenaltySearchTest, DynamicBeatsFixedAtMatchedBound) {
  // The core claim of §5.2: at the same E[remaining] threshold, the dynamic
  // policy spends less than the binary-search fixed price.
  auto acc = Paper();
  auto actions = ActionSet::FromPriceGrid(50, acc).value();
  DeadlineProblem p;
  p.num_tasks = 50;
  p.num_intervals = 24;
  auto lambdas = std::vector<double>(24, 122000.0 / 72.0 * (50.0 / 200.0) * 3.0);
  const double bound = 0.5;
  auto dynamic = SolveForExpectedRemaining(p, lambdas, actions, bound).value();
  auto fixed =
      SolveFixedForExpectedRemaining(50, lambdas, acc, 50, bound).value();
  EXPECT_LE(dynamic.evaluation.expected_remaining, bound);
  EXPECT_LT(dynamic.evaluation.expected_cost_cents, fixed.expected_cost_cents);
}

}  // namespace
}  // namespace crowdprice::pricing
