#include <algorithm>

#include <gtest/gtest.h>

#include "arrival/rate_function.h"
#include "choice/acceptance.h"
#include "market/controller.h"
#include "market/simulator.h"
#include "pricing/budget.h"
#include "stats/descriptive.h"
#include "util/rng.h"

#include "test_util.h"

namespace crowdprice::market {
namespace {

class LinearAcceptance final : public choice::AcceptanceFunction {
 public:
  double ProbabilityAt(double reward_cents) const override {
    return std::clamp(reward_cents / 100.0, 0.0, 1.0);
  }
};

TEST(SemiStaticControllerTest, Validation) {
  EXPECT_TRUE(SemiStaticController::Create({}).status().IsInvalidArgument());
  EXPECT_TRUE(
      SemiStaticController::Create({10.0, -1.0}).status().IsInvalidArgument());
  EXPECT_TRUE(SemiStaticController::Create({10.0, 20.0}).ok());
}

TEST(SemiStaticControllerTest, WalksSequenceByCompletionCount) {
  auto ctl = SemiStaticController::Create({5.0, 9.0, 2.0}).value();
  // 3 tasks total; the k-th pickup (0-based completed count) gets prices_[k].
  EXPECT_DOUBLE_EQ(test_util::SingleOffer(ctl, 0.0, 3).value().per_task_reward_cents, 5.0);
  EXPECT_DOUBLE_EQ(test_util::SingleOffer(ctl, 1.0, 2).value().per_task_reward_cents, 9.0);
  EXPECT_DOUBLE_EQ(test_util::SingleOffer(ctl, 2.0, 1).value().per_task_reward_cents, 2.0);
  EXPECT_TRUE(test_util::SingleOffer(ctl, 0.0, 0).status().IsOutOfRange());
  EXPECT_TRUE(test_util::SingleOffer(ctl, 0.0, 4).status().IsOutOfRange());
}

// Theorem 5 by simulation: E[W] = sum 1/p(c_i), invariant under permutation
// of the price sequence.
TEST(SemiStaticControllerTest, Theorem5ExpectedWorkersOrderInvariant) {
  auto rate = arrival::PiecewiseConstantRate::Constant(2000.0, 24.0).value();
  LinearAcceptance acceptance;
  SimulatorConfig config;
  config.total_tasks = 30;
  config.horizon_hours = 3000.0;
  config.decision_interval_hours = 10.0;
  config.decide_on_every_assignment = true;

  // 10 tasks at 10c (p=.1), 10 at 25c (p=.25), 10 at 50c (p=.5).
  std::vector<double> base;
  for (int i = 0; i < 10; ++i) base.push_back(10.0);
  for (int i = 0; i < 10; ++i) base.push_back(25.0);
  for (int i = 0; i < 10; ++i) base.push_back(50.0);
  const double theory = 10.0 / 0.1 + 10.0 / 0.25 + 10.0 / 0.5;  // 160

  Rng rng(17);
  for (int variant = 0; variant < 3; ++variant) {
    std::vector<double> prices = base;
    if (variant == 1) std::reverse(prices.begin(), prices.end());
    if (variant == 2) {
      // Interleave: a decidedly non-monotone order.
      std::vector<double> mixed;
      for (int i = 0; i < 10; ++i) {
        mixed.push_back(prices[static_cast<size_t>(i)]);
        mixed.push_back(prices[static_cast<size_t>(10 + i)]);
        mixed.push_back(prices[static_cast<size_t>(20 + i)]);
      }
      prices = mixed;
    }
    stats::RunningStats arrivals;
    for (int rep = 0; rep < 250; ++rep) {
      auto ctl = SemiStaticController::Create(prices).value();
      Rng child = rng.Fork();
      auto result = RunSimulation(config, rate, acceptance, ctl, child).value();
      ASSERT_TRUE(result.finished);
      arrivals.Add(static_cast<double>(result.worker_arrivals));
    }
    EXPECT_NEAR(arrivals.mean(), theory, 5.0 * arrivals.stderr_mean() + 2.0)
        << "variant " << variant;
  }
}

// A static (descending) semi-static sequence is exactly the tier strategy.
TEST(SemiStaticControllerTest, DescendingSequenceMatchesTiers) {
  auto rate = arrival::PiecewiseConstantRate::Constant(2000.0, 24.0).value();
  LinearAcceptance acceptance;
  SimulatorConfig config;
  config.total_tasks = 20;
  config.horizon_hours = 2000.0;
  config.decision_interval_hours = 10.0;
  config.decide_on_every_assignment = true;

  std::vector<double> descending;
  for (int i = 0; i < 10; ++i) descending.push_back(40.0);
  for (int i = 0; i < 10; ++i) descending.push_back(10.0);

  Rng rng(19);
  stats::RunningStats semi_w, tier_w;
  for (int rep = 0; rep < 200; ++rep) {
    auto semi = SemiStaticController::Create(descending).value();
    Rng c1 = rng.Fork();
    auto r1 = RunSimulation(config, rate, acceptance, semi, c1).value();
    semi_w.Add(static_cast<double>(r1.worker_arrivals));

    auto tiers = StaticTierController::Create({{40.0, 10}, {10.0, 10}}).value();
    Rng c2 = rng.Fork();
    auto r2 = RunSimulation(config, rate, acceptance, tiers, c2).value();
    tier_w.Add(static_cast<double>(r2.worker_arrivals));
  }
  EXPECT_NEAR(semi_w.mean(), tier_w.mean(),
              5.0 * (semi_w.stderr_mean() + tier_w.stderr_mean()) + 2.0);
}

// The LP solution played as a semi-static sequence matches its predicted
// E[W] (ties §4.3 to Theorem 5).
TEST(SemiStaticControllerTest, BudgetLpPredictionHolds) {
  auto acceptance = choice::LogitAcceptance::Paper2014();
  auto assignment = pricing::SolveBudgetLp(40, 500.0, acceptance, 50).value();
  std::vector<double> prices;
  for (const auto& alloc : assignment.allocations) {
    for (int64_t i = 0; i < alloc.count; ++i) {
      prices.push_back(static_cast<double>(alloc.price_cents));
    }
  }
  ASSERT_EQ(prices.size(), 40u);

  auto rate = arrival::PiecewiseConstantRate::Constant(5000.0, 24.0).value();
  SimulatorConfig config;
  config.total_tasks = 40;
  config.horizon_hours = 24.0 * 40.0;
  config.decision_interval_hours = 5.0;
  config.decide_on_every_assignment = true;
  Rng rng(23);
  stats::RunningStats arrivals;
  for (int rep = 0; rep < 120; ++rep) {
    auto ctl = SemiStaticController::Create(prices).value();
    Rng child = rng.Fork();
    auto result = RunSimulation(config, rate, acceptance, ctl, child).value();
    ASSERT_TRUE(result.finished);
    arrivals.Add(static_cast<double>(result.worker_arrivals));
  }
  EXPECT_NEAR(arrivals.mean(), assignment.expected_worker_arrivals,
              5.0 * arrivals.stderr_mean() + 10.0);
}

}  // namespace
}  // namespace crowdprice::market
