// Engine, SolverRegistry and PolicyArtifact tests: every built-in kind
// solves through Engine::Solve, artifacts play as controllers, and the
// persistable kinds round-trip through Serialize/Deserialize with
// bit-identical Decide outputs.

#include "engine/engine.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "choice/acceptance.h"
#include "pricing/policy_eval.h"

#include "test_util.h"

namespace crowdprice::engine {
namespace {

const choice::LogitAcceptance& PaperAcceptance() {
  static const choice::LogitAcceptance acceptance =
      choice::LogitAcceptance::Paper2014();
  return acceptance;
}

DeadlineDpSpec SmallDeadlineSpec() {
  DeadlineDpSpec spec;
  spec.problem.num_tasks = 25;
  spec.problem.num_intervals = 6;
  spec.problem.penalty_cents = 180.0;
  spec.interval_lambdas.assign(6, 1600.0);
  spec.actions = pricing::ActionSet::FromPriceGrid(30, PaperAcceptance()).value();
  return spec;
}

// Compares two controllers' Decide outputs over a grid of single-type
// states (via the test_util::SingleOffer sheet helper).
void ExpectIdenticalDecisions(market::PricingController& a,
                              market::PricingController& b,
                              double horizon_hours, int max_tasks) {
  for (double now : {0.0, horizon_hours * 0.3, horizon_hours * 0.9}) {
    for (int remaining = 1; remaining <= max_tasks; remaining += 3) {
      auto offer_a = test_util::SingleOffer(a, now, remaining);
      auto offer_b = test_util::SingleOffer(b, now, remaining);
      ASSERT_TRUE(offer_a.ok()) << offer_a.status();
      ASSERT_TRUE(offer_b.ok()) << offer_b.status();
      EXPECT_EQ(offer_a->per_task_reward_cents, offer_b->per_task_reward_cents)
          << "at now=" << now << " remaining=" << remaining;
      EXPECT_EQ(offer_a->group_size, offer_b->group_size);
    }
  }
}

TEST(SolverRegistryTest, GlobalRegistryKnowsEveryBuiltInKind) {
  for (PolicyKind kind :
       {PolicyKind::kDeadlineDp, PolicyKind::kBudgetStatic,
        PolicyKind::kFixedPrice, PolicyKind::kAdaptive, PolicyKind::kMultiType,
        PolicyKind::kTradeoff}) {
    EXPECT_TRUE(SolverRegistry::Global().Find(kind).ok())
        << "missing solver for " << KindName(kind);
  }
  EXPECT_EQ(SolverRegistry::Global().Describe().size(), 6u);
}

TEST(SolverRegistryTest, SideRegistryOverridesWithoutTouchingGlobal) {
  SolverRegistry side;
  EXPECT_TRUE(side.Find(PolicyKind::kFixedPrice).status().IsNotFound());
  ASSERT_TRUE(side.Register(PolicyKind::kFixedPrice, "stub",
                            [](const PolicySpec&) -> Result<PolicyArtifact> {
                              pricing::FixedPriceSolution fixed;
                              fixed.price_cents = 42;
                              return PolicyArtifact(fixed);
                            })
                  .ok());
  FixedPriceSpec spec;
  spec.num_tasks = 10;
  spec.interval_lambdas.assign(4, 2000.0);
  spec.acceptance = &PaperAcceptance();
  spec.max_price_cents = 50;
  auto artifact = Engine::Solve(side, spec);
  ASSERT_TRUE(artifact.ok()) << artifact.status();
  EXPECT_EQ((*artifact->fixed_price())->price_cents, 42);
  // The global registry is unaffected: it still solves properly.
  auto real = Engine::Solve(spec);
  ASSERT_TRUE(real.ok()) << real.status();
  EXPECT_NE((*real->fixed_price())->price_cents, 42);
}

TEST(SolverRegistryTest, RejectsNullSolver) {
  SolverRegistry side;
  EXPECT_TRUE(side.Register(PolicyKind::kDeadlineDp, "null", nullptr)
                  .IsInvalidArgument());
}

TEST(EngineTest, DeadlineSpecSolvesAndScores) {
  auto artifact = Solve(SmallDeadlineSpec());
  ASSERT_TRUE(artifact.ok()) << artifact.status();
  EXPECT_EQ(artifact->kind(), PolicyKind::kDeadlineDp);
  auto plan = artifact->deadline_plan();
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->num_tasks(), 25);
  // Fixed-penalty solves have no cached evaluation but Evaluate() works.
  EXPECT_TRUE(artifact->deadline_evaluation().status().IsFailedPrecondition());
  auto eval = artifact->Evaluate();
  ASSERT_TRUE(eval.ok()) << eval.status();
  EXPECT_GT(eval->expected_cost_cents, 0.0);
  // Wrong-kind accessors fail cleanly.
  EXPECT_TRUE(artifact->budget_assignment().status().IsFailedPrecondition());
  EXPECT_TRUE(artifact->tradeoff().status().IsFailedPrecondition());
}

TEST(EngineTest, DeadlineSpecRequiresActions) {
  DeadlineDpSpec spec = SmallDeadlineSpec();
  spec.actions.reset();
  EXPECT_TRUE(Solve(spec).status().IsInvalidArgument());
}

TEST(EngineTest, BoundedDeadlineSpecCachesEvaluation) {
  DeadlineDpSpec spec = SmallDeadlineSpec();
  spec.expected_remaining_bound = 0.5;
  auto artifact = Solve(spec);
  ASSERT_TRUE(artifact.ok()) << artifact.status();
  auto eval = artifact->deadline_evaluation();
  ASSERT_TRUE(eval.ok()) << eval.status();
  EXPECT_LE((*eval)->expected_remaining, 0.5);
  EXPECT_GT(artifact->penalty_used(), 0.0);
  EXPECT_GT(artifact->dp_solves(), 1);
}

TEST(EngineTest, DeadlineAlgorithmsMatchThroughTheEngine) {
  DeadlineDpSpec spec = SmallDeadlineSpec();
  spec.algorithm = DeadlineDpSpec::Algorithm::kSimple;
  auto simple = Solve(spec);
  spec.algorithm = DeadlineDpSpec::Algorithm::kImproved;
  auto improved = Solve(spec);
  ASSERT_TRUE(simple.ok() && improved.ok());
  const pricing::DeadlinePlan& a = **simple->deadline_plan();
  const pricing::DeadlinePlan& b = **improved->deadline_plan();
  for (int t = 0; t < a.num_intervals(); ++t) {
    for (int n = 1; n <= a.num_tasks(); ++n) {
      ASSERT_EQ(a.ActionIndexUnchecked(n, t), b.ActionIndexUnchecked(n, t));
    }
  }
}

TEST(EngineTest, BoundedDeadlineHonorsSimpleAlgorithmForBundledActions) {
  // Bundled (multi-task HIT) actions are outside Algorithm 2's premise;
  // the bound-mode bisection must honor Algorithm::kSimple for them.
  std::vector<pricing::PricingAction> raw;
  for (int g : {1, 2, 5}) {
    pricing::PricingAction a;
    a.cost_per_task_cents = 10.0 / g;
    a.bundle = g;
    a.acceptance = PaperAcceptance().ProbabilityAt(a.cost_per_task_cents);
    raw.push_back(a);
  }
  DeadlineDpSpec spec;
  spec.problem.num_tasks = 30;
  spec.problem.num_intervals = 5;
  spec.interval_lambdas.assign(5, 4000.0);
  spec.actions = pricing::ActionSet::FromActions(raw).value();
  spec.algorithm = DeadlineDpSpec::Algorithm::kSimple;
  spec.expected_remaining_bound = 2.0;
  auto artifact = Solve(spec);
  ASSERT_TRUE(artifact.ok()) << artifact.status();
  EXPECT_LE((*artifact->deadline_evaluation())->expected_remaining, 2.0);
  // The improved algorithm rejects the same bundled set with a clear error.
  spec.algorithm = DeadlineDpSpec::Algorithm::kImproved;
  EXPECT_TRUE(Solve(spec).status().IsFailedPrecondition());
}

TEST(EngineTest, DeadlineRoundTripPreservesDecideOutputs) {
  DeadlineDpSpec spec = SmallDeadlineSpec();
  spec.expected_remaining_bound = 1.0;
  auto artifact = Solve(spec);
  ASSERT_TRUE(artifact.ok()) << artifact.status();
  auto text = artifact->Serialize();
  ASSERT_TRUE(text.ok()) << text.status();
  auto restored = PolicyArtifact::Deserialize(*text);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->kind(), PolicyKind::kDeadlineDp);
  EXPECT_EQ(restored->penalty_used(), artifact->penalty_used());
  EXPECT_EQ(restored->dp_solves(), artifact->dp_solves());
  auto a = artifact->MakeController(24.0);
  auto b = restored->MakeController(24.0);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectIdenticalDecisions(**a, **b, 24.0, 25);
  // The reloaded table is bit-exact, so nominal scoring agrees too.
  auto eval_a = artifact->Evaluate();
  auto eval_b = restored->Evaluate();
  ASSERT_TRUE(eval_a.ok() && eval_b.ok());
  EXPECT_EQ(eval_a->expected_objective, eval_b->expected_objective);
}

TEST(EngineTest, BudgetSpecSolvesAndRoundTrips) {
  BudgetStaticSpec spec;
  spec.num_tasks = 200;
  spec.budget_cents = 2500.0;
  spec.acceptance = &PaperAcceptance();
  spec.max_price_cents = 50;
  auto artifact = Solve(spec);
  ASSERT_TRUE(artifact.ok()) << artifact.status();
  auto assignment = artifact->budget_assignment();
  ASSERT_TRUE(assignment.ok());
  EXPECT_LE((*assignment)->allocations.size(), 2u);  // Theorem 7: two prices
  EXPECT_LE((*assignment)->total_cost_cents, 2500.0 + 1e-9);

  auto text = artifact->Serialize();
  ASSERT_TRUE(text.ok()) << text.status();
  auto restored = PolicyArtifact::Deserialize(*text);
  ASSERT_TRUE(restored.ok()) << restored.status();
  const auto& original = **artifact->budget_assignment();
  const auto& reloaded = **restored->budget_assignment();
  ASSERT_EQ(original.allocations.size(), reloaded.allocations.size());
  for (size_t i = 0; i < original.allocations.size(); ++i) {
    EXPECT_EQ(original.allocations[i].price_cents,
              reloaded.allocations[i].price_cents);
    EXPECT_EQ(original.allocations[i].count, reloaded.allocations[i].count);
  }
  EXPECT_EQ(original.expected_worker_arrivals, reloaded.expected_worker_arrivals);
  auto a = artifact->MakeController(24.0);
  auto b = restored->MakeController(24.0);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectIdenticalDecisions(**a, **b, 24.0, 200);
}

TEST(EngineTest, ExactBudgetMethodNeverWorseThanLp) {
  BudgetStaticSpec spec;
  spec.num_tasks = 60;
  spec.budget_cents = 800.0;
  spec.acceptance = &PaperAcceptance();
  spec.max_price_cents = 40;
  auto lp = Solve(spec);
  spec.method = BudgetStaticSpec::Method::kExactDp;
  auto exact = Solve(spec);
  ASSERT_TRUE(lp.ok() && exact.ok());
  EXPECT_LE((*exact->budget_assignment())->expected_worker_arrivals,
            (*lp->budget_assignment())->expected_worker_arrivals + 1e-9);
}

TEST(EngineTest, FixedPriceSpecRoundTripsAndPlays) {
  FixedPriceSpec spec;
  spec.num_tasks = 100;
  spec.interval_lambdas.assign(24, 2000.0);
  spec.acceptance = &PaperAcceptance();
  spec.max_price_cents = 50;
  spec.criterion = FixedPriceSpec::Criterion::kQuantile;
  spec.threshold = 0.999;
  auto artifact = Solve(spec);
  ASSERT_TRUE(artifact.ok()) << artifact.status();
  auto fixed = artifact->fixed_price();
  ASSERT_TRUE(fixed.ok());
  EXPECT_GE((*fixed)->prob_finish, 0.999);

  auto text = artifact->Serialize();
  ASSERT_TRUE(text.ok());
  auto restored = PolicyArtifact::Deserialize(*text);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ((*restored->fixed_price())->price_cents, (*fixed)->price_cents);
  EXPECT_EQ((*restored->fixed_price())->expected_remaining,
            (*fixed)->expected_remaining);
  auto a = artifact->MakeController(24.0);
  auto b = restored->MakeController(24.0);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectIdenticalDecisions(**a, **b, 24.0, 100);
}

TEST(EngineTest, TradeoffSpecRoundTrips) {
  TradeoffSpec spec;
  spec.rate = 5083.0;
  spec.acceptance = &PaperAcceptance();
  spec.alpha = 32.0;
  spec.max_price_cents = 60;
  auto artifact = Solve(spec);
  ASSERT_TRUE(artifact.ok()) << artifact.status();
  auto text = artifact->Serialize();
  ASSERT_TRUE(text.ok());
  auto restored = PolicyArtifact::Deserialize(*text);
  ASSERT_TRUE(restored.ok()) << restored.status();
  const auto& original = **artifact->tradeoff();
  const auto& reloaded = **restored->tradeoff();
  EXPECT_EQ(original.price_cents, reloaded.price_cents);
  EXPECT_EQ(original.objective_per_task, reloaded.objective_per_task);
  ASSERT_EQ(original.objective_curve.size(), reloaded.objective_curve.size());
  for (size_t i = 0; i < original.objective_curve.size(); ++i) {
    EXPECT_EQ(original.objective_curve[i], reloaded.objective_curve[i]);
  }
  auto a = artifact->MakeController(24.0);
  auto b = restored->MakeController(24.0);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectIdenticalDecisions(**a, **b, 24.0, 30);
}

TEST(EngineTest, AdaptiveSpecMakesReplanningControllers) {
  AdaptiveSpec spec;
  spec.problem.num_tasks = 20;
  spec.problem.num_intervals = 5;
  spec.problem.penalty_cents = 120.0;
  spec.believed_lambdas.assign(5, 300.0);
  spec.actions = pricing::ActionSet::FromPriceGrid(25, PaperAcceptance()).value();
  spec.horizon_hours = 10.0;
  auto artifact = Solve(spec);
  ASSERT_TRUE(artifact.ok()) << artifact.status();
  EXPECT_EQ(artifact->kind(), PolicyKind::kAdaptive);
  auto controller = artifact->MakeAdaptiveController();
  ASSERT_TRUE(controller.ok()) << controller.status();
  auto offer = test_util::SingleOffer(*controller, 0.0, 20);
  ASSERT_TRUE(offer.ok()) << offer.status();
  EXPECT_GE(offer->per_task_reward_cents, 0.0);
  // The belief state (priors, not in-flight campaign state) checkpoints.
  auto text = artifact->Serialize();
  ASSERT_TRUE(text.ok()) << text.status();
  auto restored = PolicyArtifact::Deserialize(*text);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->kind(), PolicyKind::kAdaptive);
}

TEST(EngineTest, AdaptiveSpecValidatesEagerly) {
  AdaptiveSpec spec;
  spec.problem.num_tasks = 20;
  spec.problem.num_intervals = 5;
  spec.believed_lambdas.assign(3, 300.0);  // wrong length
  spec.actions = pricing::ActionSet::FromPriceGrid(25, PaperAcceptance()).value();
  spec.horizon_hours = 10.0;
  EXPECT_TRUE(Solve(spec).status().IsInvalidArgument());
}

MultiTypeSpec SmallMultiTypeSpec() {
  MultiTypeSpec spec;
  spec.s1 = 10.0;
  spec.b1 = 1.2;
  spec.s2 = 10.0;
  spec.b2 = 1.0;
  spec.m = 200.0;
  spec.problem.num_tasks_1 = 4;
  spec.problem.num_tasks_2 = 4;
  spec.problem.num_intervals = 3;
  spec.problem.penalty_1_cents = 100.0;
  spec.problem.penalty_2_cents = 100.0;
  spec.problem.max_price_cents = 20;
  spec.problem.price_stride = 4;
  spec.interval_lambdas.assign(3, 30.0);
  return spec;
}

TEST(EngineTest, MultiTypeSpecSolvesAndPlays) {
  auto artifact = Solve(SmallMultiTypeSpec());
  ASSERT_TRUE(artifact.ok()) << artifact.status();
  auto plan = artifact->multitype_plan();
  ASSERT_TRUE(plan.ok());
  EXPECT_GT((*plan)->TotalObjective(), 0.0);

  // Multitype artifacts answer 2-offer sheets through the same controller
  // surface as every other kind.
  auto controller = artifact->MakeController(6.0);
  ASSERT_TRUE(controller.ok()) << controller.status();
  EXPECT_EQ((*controller)->num_types(), 2);
  market::DecisionRequest request;
  request.campaign_hours = 0.0;
  request.remaining = {4, 4};
  auto sheet = (*controller)->Decide(request);
  ASSERT_TRUE(sheet.ok()) << sheet.status();
  ASSERT_EQ(sheet->num_types(), 2);
  auto prices = (*plan)->PricesAt(4, 4, 0).value();
  EXPECT_DOUBLE_EQ(sheet->offers[0].per_task_reward_cents, prices.first);
  EXPECT_DOUBLE_EQ(sheet->offers[1].per_task_reward_cents, prices.second);
  // A single-type request cannot drive a 2-offer policy.
  EXPECT_TRUE(test_util::SingleOffer(**controller, 0.0, 4)
                  .status()
                  .IsInvalidArgument());
}

TEST(EngineTest, EveryPolicyKindIsPlayable) {
  // The ROADMAP "engine coverage" criterion: MakeController succeeds for
  // all six kinds -- no Unimplemented path left.
  std::vector<PolicySpec> specs;
  specs.push_back(SmallDeadlineSpec());
  BudgetStaticSpec budget;
  budget.num_tasks = 40;
  budget.budget_cents = 600.0;
  budget.acceptance = &PaperAcceptance();
  budget.max_price_cents = 40;
  specs.push_back(budget);
  FixedPriceSpec fixed;
  fixed.num_tasks = 20;
  fixed.interval_lambdas.assign(6, 1500.0);
  fixed.acceptance = &PaperAcceptance();
  fixed.max_price_cents = 40;
  specs.push_back(fixed);
  AdaptiveSpec adaptive;
  adaptive.problem.num_tasks = 15;
  adaptive.problem.num_intervals = 4;
  adaptive.problem.penalty_cents = 120.0;
  adaptive.believed_lambdas.assign(4, 300.0);
  adaptive.actions =
      pricing::ActionSet::FromPriceGrid(25, PaperAcceptance()).value();
  adaptive.horizon_hours = 8.0;
  specs.push_back(adaptive);
  specs.push_back(SmallMultiTypeSpec());
  TradeoffSpec tradeoff;
  tradeoff.rate = 5083.0;
  tradeoff.acceptance = &PaperAcceptance();
  tradeoff.alpha = 32.0;
  tradeoff.max_price_cents = 60;
  specs.push_back(tradeoff);

  for (const PolicySpec& spec : specs) {
    auto artifact = Solve(spec);
    ASSERT_TRUE(artifact.ok())
        << KindName(spec.kind()) << ": " << artifact.status();
    auto controller = artifact->MakeController(8.0);
    ASSERT_TRUE(controller.ok())
        << KindName(spec.kind()) << ": " << controller.status();
    // Every kind answers a sheet sized to its type count.
    market::DecisionRequest request;
    request.remaining.assign(
        static_cast<size_t>((*controller)->num_types()), 4);
    auto sheet = (*controller)->Decide(request);
    ASSERT_TRUE(sheet.ok())
        << KindName(spec.kind()) << ": " << sheet.status();
    EXPECT_EQ(sheet->num_types(), (*controller)->num_types());
  }
}

TEST(PolicyArtifactTest, RecordsKernelBackendMetadata) {
  // Solves that run on the kernel layer record which backend produced the
  // tables; forcing "scalar" must be visible in the artifact.
  DeadlineDpSpec deadline = SmallDeadlineSpec();
  deadline.dp_options.kernel_backend = "scalar";
  auto artifact = Solve(deadline);
  ASSERT_TRUE(artifact.ok()) << artifact.status();
  EXPECT_EQ(artifact->kernel_backend(), "scalar");

  // Unforced solves record whatever the registry picked.
  auto auto_artifact = Solve(SmallDeadlineSpec());
  ASSERT_TRUE(auto_artifact.ok());
  EXPECT_FALSE(auto_artifact->kernel_backend().empty());

  // Unknown backends fail the solve instead of silently falling back.
  DeadlineDpSpec bad = SmallDeadlineSpec();
  bad.dp_options.kernel_backend = "warp9";
  EXPECT_TRUE(Solve(bad).status().IsNotFound());

  MultiTypeSpec multi = SmallMultiTypeSpec();
  multi.kernel_backend = "scalar";
  auto multi_artifact = Solve(multi);
  ASSERT_TRUE(multi_artifact.ok()) << multi_artifact.status();
  EXPECT_EQ(multi_artifact->kernel_backend(), "scalar");

  // Kinds without a kernel-backed solve report no backend.
  BudgetStaticSpec budget;
  budget.num_tasks = 40;
  budget.budget_cents = 600.0;
  budget.acceptance = &PaperAcceptance();
  budget.max_price_cents = 25;
  auto budget_artifact = Solve(budget);
  ASSERT_TRUE(budget_artifact.ok()) << budget_artifact.status();
  EXPECT_EQ(budget_artifact->kernel_backend(), "");
}

TEST(PolicyArtifactTest, DeserializeRejectsGarbage) {
  EXPECT_TRUE(PolicyArtifact::Deserialize("").status().IsInvalidArgument());
  EXPECT_TRUE(
      PolicyArtifact::Deserialize("not an artifact\n").status().IsInvalidArgument());
  EXPECT_TRUE(PolicyArtifact::Deserialize("crowdprice-artifact v1\nkind bogus\n")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(PolicyArtifact::Deserialize(
                  "crowdprice-artifact v1\nkind fixed-price\nfixed 12\n")
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace crowdprice::engine
