#!/usr/bin/env bash
# Mints a throwaway CA plus server and client leaf certificates for
# local TLS runs of crowdprice_serve / crowdprice_router and for the CI
# TLS fixture. NOT for production use: 1-day validity, no hostname
# constraints (the transport's identity model is CA possession -- see
# src/net/transport.h).
#
#   tests/gen_test_certs.sh [OUT_DIR]    # default: ./test-certs
#
# Produces: ca.pem, server.pem/server.key, client.pem/client.key.
set -euo pipefail

out="${1:-test-certs}"
mkdir -p "$out"

openssl ecparam -name prime256v1 -genkey -noout -out "$out/ca.key"
openssl req -new -x509 -key "$out/ca.key" -subj "/CN=crowdprice-test-ca" \
    -days 1 -out "$out/ca.pem"

for role in server client; do
  openssl ecparam -name prime256v1 -genkey -noout -out "$out/$role.key"
  openssl req -new -key "$out/$role.key" -subj "/CN=crowdprice-$role" \
      -out "$out/$role.csr"
  openssl x509 -req -in "$out/$role.csr" -CA "$out/ca.pem" \
      -CAkey "$out/ca.key" -CAcreateserial -days 1 -out "$out/$role.pem"
  rm -f "$out/$role.csr"
done
rm -f "$out/ca.srl"

echo "wrote $out/{ca.pem,server.pem,server.key,client.pem,client.key}"
