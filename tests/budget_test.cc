#include "pricing/budget.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "choice/acceptance.h"

namespace crowdprice::pricing {
namespace {

choice::LogitAcceptance Paper() { return choice::LogitAcceptance::Paper2014(); }

TEST(SemiStaticExpectedWorkersTest, MatchesTheorem5Formula) {
  auto acc = Paper();
  const std::vector<double> prices{10.0, 14.0, 14.0, 20.0};
  double expected = 0.0;
  for (double c : prices) expected += 1.0 / acc.ProbabilityAt(c);
  EXPECT_NEAR(SemiStaticExpectedWorkers(prices, acc).value(), expected, 1e-9);
}

TEST(SemiStaticExpectedWorkersTest, OrderInvariance) {
  // Theorem 5: E[W] does not depend on the order of the price sequence.
  auto acc = Paper();
  std::vector<double> prices{5.0, 25.0, 10.0, 18.0, 12.0};
  const double base = SemiStaticExpectedWorkers(prices, acc).value();
  std::sort(prices.begin(), prices.end());
  EXPECT_NEAR(SemiStaticExpectedWorkers(prices, acc).value(), base, 1e-9);
  std::reverse(prices.begin(), prices.end());
  EXPECT_NEAR(SemiStaticExpectedWorkers(prices, acc).value(), base, 1e-9);
}

TEST(SemiStaticExpectedWorkersTest, Validation) {
  auto acc = Paper();
  EXPECT_TRUE(SemiStaticExpectedWorkers({}, acc).status().IsInvalidArgument());
  auto zero = choice::TabulatedAcceptance::Create({0.0, 10.0}, {0.0, 0.5}).value();
  EXPECT_TRUE(
      SemiStaticExpectedWorkers({0.0}, zero).status().IsFailedPrecondition());
}

TEST(SolveBudgetLpTest, Validation) {
  auto acc = Paper();
  EXPECT_TRUE(SolveBudgetLp(0, 100.0, acc, 50).status().IsInvalidArgument());
  EXPECT_TRUE(SolveBudgetLp(10, -1.0, acc, 50).status().IsInvalidArgument());
  EXPECT_TRUE(SolveBudgetLp(10, 100.0, acc, -1).status().IsInvalidArgument());
}

TEST(SolveBudgetLpTest, PaperFig11Setting) {
  // N = 200, B = 2500 cents (§5.3). For the Eq. 13 logit, 1/p(c) is convex,
  // so every grid price is a hull vertex and the two chosen prices bracket
  // B/N = 12.5: 100 tasks at 12 and 100 at 13.
  auto acc = Paper();
  auto sol = SolveBudgetLp(200, 2500.0, acc, 50).value();
  ASSERT_EQ(sol.allocations.size(), 2u);
  EXPECT_EQ(sol.allocations[0].price_cents, 13);  // descending order
  EXPECT_EQ(sol.allocations[0].count, 100);
  EXPECT_EQ(sol.allocations[1].price_cents, 12);
  EXPECT_EQ(sol.allocations[1].count, 100);
  EXPECT_LE(sol.total_cost_cents, 2500.0 + 1e-9);
  const double expected_w =
      100.0 / acc.ProbabilityAt(12.0) + 100.0 / acc.ProbabilityAt(13.0);
  EXPECT_NEAR(sol.expected_worker_arrivals, expected_w, 1e-6);
}

TEST(SolveBudgetLpTest, StructureAcrossBudgets) {
  auto acc = Paper();
  for (double budget : {500.0, 1234.0, 2500.0, 4999.0, 9000.0}) {
    auto sol = SolveBudgetLp(200, budget, acc, 50).value();
    ASSERT_LE(sol.allocations.size(), 2u) << "budget " << budget;
    int64_t total = 0;
    for (const auto& a : sol.allocations) total += a.count;
    EXPECT_EQ(total, 200);
    EXPECT_LE(sol.total_cost_cents, budget + 1e-9);
    if (sol.allocations.size() == 2) {
      const double ratio = budget / 200.0;
      EXPECT_LE(sol.allocations[1].price_cents, ratio);
      EXPECT_GT(sol.allocations[0].price_cents, ratio);
    }
  }
}

TEST(SolveBudgetLpTest, AbundantBudgetUsesTopPrice) {
  auto acc = Paper();
  auto sol = SolveBudgetLp(10, 10000.0, acc, 50).value();
  ASSERT_EQ(sol.allocations.size(), 1u);
  EXPECT_EQ(sol.allocations[0].price_cents, 50);
  EXPECT_EQ(sol.allocations[0].count, 10);
}

TEST(SolveBudgetLpTest, InfeasibleBudgetFails) {
  // Cheapest usable price is 3 cents here; budget covers only 2/task.
  auto tab = choice::TabulatedAcceptance::Create({3.0, 10.0}, {0.1, 0.4}).value();
  // Prices 0..2 have p > 0 via clamping in TabulatedAcceptance, so use a
  // logit whose p(c) is astronomically small but positive -- the LP is
  // feasible there. True infeasibility needs p == 0 below the ratio:
  auto zero_low =
      choice::TabulatedAcceptance::Create({0.0, 5.0, 10.0}, {0.0, 0.0, 0.5}).value();
  auto sol = SolveBudgetLp(10, 20.0, zero_low, 10);
  EXPECT_TRUE(sol.status().IsFailedPrecondition());
  (void)tab;
}

TEST(SolveBudgetLpTest, ExpectedLatency) {
  auto acc = Paper();
  auto sol = SolveBudgetLp(200, 2500.0, acc, 50).value();
  const double rate = 5000.0;
  EXPECT_NEAR(sol.ExpectedLatencyHours(rate).value(),
              sol.expected_worker_arrivals / rate, 1e-9);
  EXPECT_TRUE(sol.ExpectedLatencyHours(0.0).status().IsInvalidArgument());
}

// Brute-force enumeration of all two-price-or-fewer assignments cannot beat
// the exact DP, and the DP cannot beat the LP relaxation by more than the
// Theorem 8 bound.
TEST(SolveBudgetExactDpTest, MatchesBruteForceSmallInstance) {
  auto acc = Paper();
  const int n = 4, budget = 30, max_price = 12;
  auto dp = SolveBudgetExactDp(n, budget, acc, max_price).value();
  // Brute force over all multisets via recursion.
  double best = 1e300;
  std::function<void(int, int, int, double)> rec = [&](int i, int min_c,
                                                       int left, double w) {
    if (i == n) {
      best = std::min(best, w);
      return;
    }
    for (int c = min_c; c <= max_price && c <= left; ++c) {
      rec(i + 1, c, left - c, w + 1.0 / acc.ProbabilityAt(c));
    }
  };
  rec(0, 0, budget, 0.0);
  EXPECT_NEAR(dp.expected_worker_arrivals, best, 1e-9);
}

TEST(SolveBudgetExactDpTest, NeverWorseThanLpRounding) {
  auto acc = Paper();
  for (double budget : {800.0, 1500.0, 2500.0}) {
    auto lp = SolveBudgetLp(100, budget, acc, 40).value();
    auto dp =
        SolveBudgetExactDp(100, static_cast<int>(budget), acc, 40).value();
    EXPECT_LE(dp.expected_worker_arrivals,
              lp.expected_worker_arrivals + 1e-9);
    // Theorem 8: the LP-rounded solution is within 1/p(c1) - 1/p(c2).
    const double gap = LpRoundingGapBound(lp, acc).value();
    EXPECT_LE(lp.expected_worker_arrivals,
              dp.expected_worker_arrivals + gap + 1e-9);
  }
}

TEST(SolveBudgetExactDpTest, BudgetExhaustionInfeasible) {
  auto zero_low =
      choice::TabulatedAcceptance::Create({0.0, 5.0, 10.0}, {0.0, 0.0, 0.5}).value();
  EXPECT_TRUE(
      SolveBudgetExactDp(10, 20, zero_low, 10).status().IsFailedPrecondition());
}

TEST(SolveBudgetExactDpTest, RejectsHugeTables) {
  auto acc = Paper();
  EXPECT_TRUE(
      SolveBudgetExactDp(100000, 2000000, acc, 50).status().IsInvalidArgument());
}

TEST(LpRoundingGapBoundTest, SinglePriceIsZero) {
  auto acc = Paper();
  auto sol = SolveBudgetLp(10, 10000.0, acc, 50).value();
  EXPECT_DOUBLE_EQ(LpRoundingGapBound(sol, acc).value(), 0.0);
}

// Theorems 3/4 numerically: the *fully dynamic* budget MDP -- states
// (remaining tasks, remaining budget), per-arrival transitions
//   (n, b) -> (n-1, b-c) w.p. p(c),  (n, b) -> (n, b) w.p. 1 - p(c),
// every transition costing one worker arrival -- is solved by value
// iteration and must equal the optimal *static* assignment's E[W] from the
// Theorem-6 DP. (The paper proves optimal dynamic = semi-static = static.)
TEST(DynamicBudgetMdpTest, ValueIterationMatchesStaticOptimum) {
  auto acc = Paper();
  const int n_tasks = 4, budget = 150, max_price = 30;
  // Value iteration on V(n, b): V(0, *) = 0,
  // V(n, b) = min_c [ 1 + p(c) V(n-1, b-c) + (1 - p(c)) V(n, b) ].
  // Starting from 0 the iterates increase monotonically to the fixed point;
  // the per-sweep contraction is (1 - p), so small acceptance probabilities
  // need thousands of sweeps -- that slowness is exactly why the paper's
  // closed forms matter.
  const size_t width = budget + 1;
  std::vector<double> v((n_tasks + 1) * width, 0.0);
  for (int iter = 0; iter < 200000; ++iter) {
    double delta = 0.0;
    for (int n = 1; n <= n_tasks; ++n) {
      for (int b = 0; b <= budget; ++b) {
        double best = 1e18;
        for (int c = 0; c <= max_price && c <= b; ++c) {
          const double p = acc.ProbabilityAt(c);
          if (!(p > 0.0)) continue;
          const double stay = v[static_cast<size_t>(n) * width + b];
          const double go = v[static_cast<size_t>(n - 1) * width + (b - c)];
          best = std::min(best, 1.0 + p * go + (1.0 - p) * stay);
        }
        const size_t idx = static_cast<size_t>(n) * width + b;
        delta = std::max(delta, std::fabs(v[idx] - best));
        v[idx] = best;
      }
    }
    if (delta < 1e-8) break;
  }
  const double dynamic_optimum =
      v[static_cast<size_t>(n_tasks) * width + budget];
  auto static_dp = SolveBudgetExactDp(n_tasks, budget, acc, max_price).value();
  EXPECT_NEAR(dynamic_optimum, static_dp.expected_worker_arrivals,
              1e-3 * static_dp.expected_worker_arrivals)
      << "dynamic pricing freedom must buy nothing under a budget "
         "(Theorems 3/4)";
}

TEST(SolveBudgetLpTest, MoreBudgetNeverSlower) {
  auto acc = Paper();
  double prev = 1e300;
  for (double budget = 600.0; budget <= 6000.0; budget += 300.0) {
    auto sol = SolveBudgetLp(200, budget, acc, 50).value();
    EXPECT_LE(sol.expected_worker_arrivals, prev + 1e-9) << "budget " << budget;
    prev = sol.expected_worker_arrivals;
  }
}

}  // namespace
}  // namespace crowdprice::pricing
