// TLS transport: the full failure-mode matrix from ISSUE -- handshake
// success serves bit-exact decides, a wrong CA and an expired
// certificate are Unauthenticated at Connect, a plaintext client
// against a TLS server (and the reverse) fails with a clean Status and
// never hangs, mutual TLS demands the client certificate, and
// Reconnect re-runs the TLS handshake. Certificates are minted
// in-process (tests/tls_test_util.h); every test skips cleanly on a
// build without OpenSSL.

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "choice/acceptance.h"
#include "engine/engine.h"
#include "net/client.h"
#include "net/server.h"
#include "net/tls_transport.h"
#include "serving/campaign_shard_map.h"
#include "tls_test_util.h"

namespace crowdprice::net {
namespace {

#if CROWDPRICE_HAVE_OPENSSL

engine::PolicyArtifact SmallDeadlineArtifact() {
  engine::DeadlineDpSpec spec;
  spec.problem.num_tasks = 20;
  spec.problem.num_intervals = 8;
  spec.problem.penalty_cents = 150.0;
  spec.interval_lambdas.assign(8, 60.0);
  spec.actions = pricing::ActionSet::FromPriceGrid(
                     30, choice::LogitAcceptance::Paper2014())
                     .value();
  return engine::Engine::Solve(spec).value();
}

serving::CampaignLimits SmallLimits() {
  serving::CampaignLimits limits;
  limits.total_tasks = 20;
  limits.deadline_hours = 8.0;
  return limits;
}

/// One TLS server over a fresh map, with `identity` as its certificate.
/// Tests must ASSERT_TRUE(harness.ok()) before using it.
struct TlsHarness {
  TlsHarness(const tls_test::TestIdentity& identity,
             const std::string& client_ca_file = "") {
    map = std::make_unique<serving::CampaignShardMap>(
        serving::CampaignShardMap::Create(2).value());
    ServerOptions options;
    options.port = 0;
    options.num_workers = 2;
    options.tls.cert_file = identity.cert_file;
    options.tls.key_file = identity.key_file;
    options.tls.ca_file = client_ca_file;  // non-empty => mutual TLS
    auto created = PricingServer::Create(map.get(), options);
    if (!created.ok()) {
      ADD_FAILURE() << created.status();
      return;
    }
    server = std::make_unique<PricingServer>(std::move(created).value());
    started = server->Start().ok();
  }

  bool ok() const { return server != nullptr && started; }

  ~TlsHarness() {
    if (server != nullptr && server->running()) {
      const Status stopped = server->Stop();
      static_cast<void>(stopped);
    }
  }

  std::unique_ptr<serving::CampaignShardMap> map;
  std::unique_ptr<PricingServer> server;
  bool started = false;
};

ClientOptions TrustingClient(const std::string& ca_file) {
  ClientOptions options;
  options.tls.ca_file = ca_file;
  options.connect_timeout_ms = 5000;
  options.io_timeout_ms = 5000;
  return options;
}

TEST(TlsTransportTest, BadMaterialFailsAtCreateNotStart) {
  ASSERT_TRUE(TlsSupported());
  auto map = serving::CampaignShardMap::Create(2);
  ASSERT_TRUE(map.ok());
  ServerOptions options;
  options.tls.cert_file = "/nonexistent/cert.pem";
  options.tls.key_file = "/nonexistent/key.pem";
  const auto server = PricingServer::Create(&map.value(), options);
  ASSERT_FALSE(server.ok());
  EXPECT_TRUE(server.status().IsInvalidArgument()) << server.status();

  // Cert without key is a configuration error too.
  tls_test::TestCa ca;
  const tls_test::TestIdentity leaf = ca.MintLeaf("server");
  ServerOptions half;
  half.tls.cert_file = leaf.cert_file;
  const auto half_server = PricingServer::Create(&map.value(), half);
  ASSERT_FALSE(half_server.ok());
  EXPECT_TRUE(half_server.status().IsInvalidArgument())
      << half_server.status();

  // A TLS client with no CA has nothing to verify the server against.
  ClientOptions client_options;
  client_options.tls.cert_file = leaf.cert_file;
  client_options.tls.key_file = leaf.key_file;
  const auto client =
      PricingClient::Connect("127.0.0.1", 7710, client_options);
  ASSERT_FALSE(client.ok());
  EXPECT_TRUE(client.status().IsInvalidArgument()) << client.status();
}

TEST(TlsTransportTest, HandshakeSucceedsAndServesBitExactDecides) {
  ASSERT_TRUE(TlsSupported());
  tls_test::TestCa ca;
  TlsHarness harness(ca.MintLeaf("server"));
  ASSERT_TRUE(harness.ok());
  auto client = PricingClient::Connect("127.0.0.1", harness.server->port(),
                                       TrustingClient(ca.ca_file()));
  ASSERT_TRUE(client.ok()) << client.status();
  EXPECT_TRUE(client->Ping().ok());

  const auto artifact =
      std::make_shared<const engine::PolicyArtifact>(SmallDeadlineArtifact());
  const auto id = client->AdmitShared(artifact, SmallLimits());
  ASSERT_TRUE(id.ok()) << id.status();
  std::vector<serving::DecideRequest> batch;
  for (int i = 0; i < 16; ++i) {
    batch.push_back(
        serving::DecideRequest::Single(*id, 0.5 * (i % 8), 1 + i % 20));
  }
  const auto responses = client->DecideBatch(batch);
  ASSERT_TRUE(responses.ok()) << responses.status();
  ASSERT_EQ(responses->size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE((*responses)[i].status.ok()) << (*responses)[i].status;
    const auto direct = harness.map->Decide(*id, batch[i].request);
    ASSERT_TRUE(direct.ok());
    ASSERT_EQ((*responses)[i].sheet.offers.size(), direct->offers.size());
    for (size_t o = 0; o < direct->offers.size(); ++o) {
      EXPECT_EQ((*responses)[i].sheet.offers[o].per_task_reward_cents,
                direct->offers[o].per_task_reward_cents);
    }
  }
  EXPECT_EQ(harness.server->stats().tls_handshake_failures, 0u);
}

TEST(TlsTransportTest, WrongCaIsUnauthenticated) {
  ASSERT_TRUE(TlsSupported());
  tls_test::TestCa server_ca;
  tls_test::TestCa other_ca;
  TlsHarness harness(server_ca.MintLeaf("server"));
  ASSERT_TRUE(harness.ok());
  const auto client =
      PricingClient::Connect("127.0.0.1", harness.server->port(),
                             TrustingClient(other_ca.ca_file()));
  ASSERT_FALSE(client.ok());
  EXPECT_TRUE(client.status().IsUnauthenticated()) << client.status();
}

TEST(TlsTransportTest, ExpiredCertificateIsUnauthenticated) {
  ASSERT_TRUE(TlsSupported());
  tls_test::TestCa ca;
  TlsHarness harness(ca.MintLeaf("expired", /*not_before_secs=*/-7200,
                                 /*not_after_secs=*/-3600));
  ASSERT_TRUE(harness.ok());
  const auto client = PricingClient::Connect(
      "127.0.0.1", harness.server->port(), TrustingClient(ca.ca_file()));
  ASSERT_FALSE(client.ok());
  EXPECT_TRUE(client.status().IsUnauthenticated()) << client.status();
  EXPECT_NE(client.status().message().find("expired"), std::string::npos)
      << client.status();
}

TEST(TlsTransportTest, PlaintextClientAgainstTlsServerFailsCleanly) {
  ASSERT_TRUE(TlsSupported());
  tls_test::TestCa ca;
  TlsHarness harness(ca.MintLeaf("server"));
  ASSERT_TRUE(harness.ok());

  // A plain-TCP client: the dial succeeds (TCP accepts), but its first
  // frame reads as a broken TLS record -- the server must fail that one
  // handshake, count it, and keep serving everyone else.
  ClientOptions plain;
  plain.connect_timeout_ms = 5000;
  plain.io_timeout_ms = 2000;
  auto client = PricingClient::Connect("127.0.0.1", harness.server->port(),
                                       plain);
  if (client.ok()) {
    const auto start = std::chrono::steady_clock::now();
    const Status pong = client->Ping();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    ASSERT_FALSE(pong.ok());
    EXPECT_TRUE(pong.IsUnavailable()) << pong;
    EXPECT_LT(
        std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
        10);
  } else {
    EXPECT_TRUE(client.status().IsUnavailable()) << client.status();
  }

  // The failure was that connection's alone: a proper TLS client works,
  // and the failure is visible in the stats.
  auto tls_client = PricingClient::Connect(
      "127.0.0.1", harness.server->port(), TrustingClient(ca.ca_file()));
  ASSERT_TRUE(tls_client.ok()) << tls_client.status();
  EXPECT_TRUE(tls_client->Ping().ok());
  EXPECT_GE(harness.server->stats().tls_handshake_failures, 1u);
}

TEST(TlsTransportTest, TlsClientAgainstPlainServerFailsCleanly) {
  ASSERT_TRUE(TlsSupported());
  tls_test::TestCa ca;
  auto map = serving::CampaignShardMap::Create(2);
  ASSERT_TRUE(map.ok());
  ServerOptions options;
  options.port = 0;
  options.num_workers = 2;
  auto server = PricingServer::Create(&map.value(), options);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server->Start().ok());

  const auto start = std::chrono::steady_clock::now();
  const auto client = PricingClient::Connect("127.0.0.1", server->port(),
                                             TrustingClient(ca.ca_file()));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(client.ok());
  EXPECT_TRUE(client.status().IsUnavailable()) << client.status();
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            10);
  ASSERT_TRUE(server->Stop().ok());
}

TEST(TlsTransportTest, MutualTlsDemandsTheClientCertificate) {
  ASSERT_TRUE(TlsSupported());
  tls_test::TestCa ca;
  TlsHarness harness(ca.MintLeaf("server"), /*client_ca_file=*/ca.ca_file());
  ASSERT_TRUE(harness.ok());

  // No client certificate: the handshake (or, under TLS 1.3, the first
  // round trip) must fail -- never serve.
  auto bare = PricingClient::Connect("127.0.0.1", harness.server->port(),
                                     TrustingClient(ca.ca_file()));
  if (bare.ok()) {
    EXPECT_FALSE(bare->Ping().ok());
  } else {
    EXPECT_FALSE(bare.status().ok());
  }

  // With a CA-signed client certificate the same dial serves.
  const tls_test::TestIdentity client_identity = ca.MintLeaf("client");
  ClientOptions with_cert = TrustingClient(ca.ca_file());
  with_cert.tls.cert_file = client_identity.cert_file;
  with_cert.tls.key_file = client_identity.key_file;
  auto client = PricingClient::Connect("127.0.0.1", harness.server->port(),
                                       with_cert);
  ASSERT_TRUE(client.ok()) << client.status();
  EXPECT_TRUE(client->Ping().ok());
  EXPECT_GE(harness.server->stats().tls_handshake_failures, 1u);
}

TEST(TlsTransportTest, ReconnectRerunsTheTlsHandshake) {
  ASSERT_TRUE(TlsSupported());
  tls_test::TestCa ca;
  TlsHarness harness(ca.MintLeaf("server"));
  ASSERT_TRUE(harness.ok());
  auto client = PricingClient::Connect("127.0.0.1", harness.server->port(),
                                       TrustingClient(ca.ca_file()));
  ASSERT_TRUE(client.ok()) << client.status();
  EXPECT_TRUE(client->Ping().ok());
  client->Close();
  EXPECT_FALSE(client->connected());
  ASSERT_TRUE(client->Reconnect().ok());
  EXPECT_TRUE(client->Ping().ok());
}

#else  // !CROWDPRICE_HAVE_OPENSSL

TEST(TlsTransportTest, TlsConfigurationIsUnimplementedWithoutOpenSsl) {
  ASSERT_FALSE(TlsSupported());
  ClientOptions options;
  options.tls.ca_file = "/nonexistent/ca.pem";
  const auto client = PricingClient::Connect("127.0.0.1", 7710, options);
  ASSERT_FALSE(client.ok());
  EXPECT_TRUE(client.status().IsUnimplemented()) << client.status();
}

#endif  // CROWDPRICE_HAVE_OPENSSL

}  // namespace
}  // namespace crowdprice::net
