// End-to-end pipelines: trace -> estimation -> planning -> simulation.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "crowdprice.h"
#include "stats/descriptive.h"

namespace crowdprice {
namespace {

// A realistic 4-week marketplace, scaled so that a 24 h campaign of 200
// tasks prices around 12 cents (the paper's headline setting).
arrival::SyntheticTraceConfig MarketConfig() {
  arrival::SyntheticTraceConfig config;
  config.num_weeks = 4;
  config.bucket_minutes = 20;
  config.base_rate_per_hour = 5083.0;  // ~122k arrivals per 24 h
  return config;
}

TEST(IntegrationTest, DeadlinePipelineEndToEnd) {
  Rng rng(1001);
  // 1. Historical trace and weekly rate estimate.
  auto trace =
      arrival::SyntheticTraceGenerator::Generate(MarketConfig(), rng).value();
  auto weekly = arrival::EstimateWeeklyProfile(trace).value();

  // 2. Plan a 24 h campaign of 200 tasks with at most ~1 expected leftover.
  auto acceptance = choice::LogitAcceptance::Paper2014();
  auto actions = pricing::ActionSet::FromPriceGrid(50, acceptance).value();
  auto lambdas = weekly.IntervalMeans(24.0, 72).value();
  pricing::DeadlineProblem problem;
  problem.num_tasks = 200;
  problem.num_intervals = 72;
  auto solved =
      pricing::SolveForExpectedRemaining(problem, lambdas, actions, 0.5).value();
  EXPECT_LE(solved.evaluation.expected_remaining, 0.5);

  // 3. The plan's average reward must be near the theoretical floor c0 and
  // clearly below the fixed-price 99.9% solution (the paper's Fig. 7a).
  const int c0 =
      pricing::TheoreticalMinimumPrice(200, lambdas, acceptance, 50).value();
  auto fixed =
      pricing::SolveFixedForQuantile(200, lambdas, acceptance, 50, 0.999).value();
  EXPECT_GE(solved.evaluation.average_reward_per_task, c0 * 0.95);
  EXPECT_LT(solved.evaluation.average_reward_per_task,
            static_cast<double>(fixed.price_cents));

  // 4. Simulate the campaign on the true (not estimated) rate.
  auto true_rate =
      arrival::SyntheticTraceGenerator::TrueRate(MarketConfig()).value();
  market::SimulatorConfig sim;
  sim.total_tasks = 200;
  sim.horizon_hours = 24.0;
  sim.decision_interval_hours = 24.0 / 72.0;
  sim.service_minutes_per_task = 2.0;
  stats::RunningStats remaining, cost;
  for (int rep = 0; rep < 30; ++rep) {
    auto controller =
        pricing::PlanController::Create(&solved.plan, 24.0).value();
    Rng child = rng.Fork();
    auto result =
        market::RunSimulation(sim, true_rate, acceptance, controller, child)
            .value();
    remaining.Add(static_cast<double>(sim.total_tasks - result.tasks_assigned));
    cost.Add(result.total_cost_cents);
  }
  // Nearly every replicate assigns all tasks; costs sit near 200 * c0.
  EXPECT_LT(remaining.mean(), 2.0);
  EXPECT_GT(cost.mean(), 200.0 * (c0 - 3));
  EXPECT_LT(cost.mean(), 200.0 * (fixed.price_cents + 2));
}

TEST(IntegrationTest, BudgetPipelineEndToEnd) {
  Rng rng(2002);
  auto acceptance = choice::LogitAcceptance::Paper2014();
  // Plan: 200 tasks, 2500 cent budget (the paper's Fig. 11 setting).
  auto assignment = pricing::SolveBudgetLp(200, 2500.0, acceptance, 50).value();
  ASSERT_LE(assignment.allocations.size(), 2u);

  auto true_rate =
      arrival::SyntheticTraceGenerator::TrueRate(MarketConfig()).value();
  const double mean_rate = true_rate.MeanRate();
  const double predicted_hours =
      assignment.ExpectedLatencyHours(mean_rate).value();

  market::SimulatorConfig sim;
  sim.total_tasks = 200;
  sim.horizon_hours = 24.0 * 21.0;  // generous; we early-stop when done
  sim.decision_interval_hours = 1.0;
  sim.decide_on_every_assignment = true;  // tier switches are instantaneous
  sim.service_minutes_per_task = 0.0;

  stats::RunningStats completion_hours;
  for (int rep = 0; rep < 25; ++rep) {
    std::vector<market::StaticTierController::Tier> tiers;
    for (const auto& alloc : assignment.allocations) {
      tiers.push_back({static_cast<double>(alloc.price_cents), alloc.count});
    }
    auto controller = market::StaticTierController::Create(tiers).value();
    Rng child = rng.Fork();
    auto result =
        market::RunSimulation(sim, true_rate, acceptance, controller, child)
            .value();
    ASSERT_TRUE(result.finished);
    EXPECT_LE(result.total_cost_cents, 2500.0 + 1e-9);
    completion_hours.Add(result.completion_time_hours);
  }
  // The §4.2.2 linearity prediction should land within ~20% of simulation
  // (diurnal structure makes it approximate).
  EXPECT_NEAR(completion_hours.mean(), predicted_hours,
              0.25 * predicted_hours);
}

TEST(IntegrationTest, RobustnessToMisestimatedAcceptance) {
  // Fig. 9's core claim: trained on wrong p(c), the dynamic policy still
  // finishes (it adapts prices), while the fixed price fails outright.
  auto true_acceptance = choice::LogitAcceptance::Paper2014();
  // Planner believes workers are 30% more willing than they are.
  auto optimistic =
      choice::LogitAcceptance::Create(15.0, -0.39, 2000.0 * 0.7).value();
  auto actions = pricing::ActionSet::FromPriceGrid(50, optimistic).value();
  std::vector<double> lambdas(72, 122000.0 / 72.0);
  pricing::DeadlineProblem problem;
  problem.num_tasks = 200;
  problem.num_intervals = 72;
  auto solved =
      pricing::SolveForExpectedRemaining(problem, lambdas, actions, 0.2).value();
  // Evaluate both under the true market.
  auto dynamic_true =
      pricing::EvaluatePolicyUnderMarket(solved.plan, lambdas, true_acceptance)
          .value();
  auto fixed =
      pricing::SolveFixedForQuantile(200, lambdas, optimistic, 50, 0.999).value();
  auto fixed_true = pricing::EvaluateFixedPrice(fixed.price_cents, 200, lambdas,
                                                true_acceptance)
                        .value();
  // Dynamic adapts: far fewer leftovers than the fixed baseline (it ends up
  // ~1% of the batch vs ~12% for fixed under this 30% optimism error).
  EXPECT_LT(dynamic_true.expected_remaining, 5.0);
  EXPECT_GT(fixed_true.expected_remaining,
            5.0 * std::max(dynamic_true.expected_remaining, 0.05));
}

TEST(IntegrationTest, QualityControlledDeadlineCampaign) {
  // §6 integration: 40 filtering items, best-of-3 majority, deadline pricing
  // over the virtual question count.
  auto acceptance = choice::LogitAcceptance::Paper2014();
  auto actions = pricing::ActionSet::FromPriceGrid(40, acceptance).value();
  auto strategy = pricing::QualityStrategy::MajorityVote(3).value();
  const int items = 40;
  pricing::DeadlineProblem problem;
  problem.num_tasks = items * 3;
  problem.num_intervals = 12;
  problem.penalty_cents = 500.0;
  std::vector<double> lambdas(12, 20000.0);
  auto plan = pricing::SolveImprovedDp(problem, lambdas, actions).value();
  std::vector<double> probs;
  for (const auto& a : plan.actions().actions()) probs.push_back(a.acceptance);
  Rng rng(3003);
  auto result = pricing::SimulateQualityPricing(plan, strategy, items, 0.5, 0.92,
                                                lambdas, probs, rng)
                    .value();
  EXPECT_GT(result.items_decided, items * 9 / 10);
  EXPECT_GT(static_cast<double>(result.correct_decisions) /
                std::max(1, result.items_decided),
            0.9);
}

}  // namespace
}  // namespace crowdprice
