// CampaignShardMap tests: batched serving equals serial serving
// bit-for-bit across shard counts, lifecycle retires campaigns on
// completion/deadline, stats track load, and admission stays safe under
// concurrent serving (the TSan CI job runs the threaded stress).

#include "serving/campaign_shard_map.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "choice/acceptance.h"
#include "engine/engine.h"
#include "market/controller.h"

#include "test_util.h"

namespace crowdprice::serving {
namespace {

const choice::LogitAcceptance& PaperAcceptance() {
  static const choice::LogitAcceptance acceptance =
      choice::LogitAcceptance::Paper2014();
  return acceptance;
}

engine::PolicyArtifact SmallDeadlineArtifact() {
  engine::DeadlineDpSpec spec;
  spec.problem.num_tasks = 25;
  spec.problem.num_intervals = 6;
  spec.problem.penalty_cents = 180.0;
  spec.interval_lambdas.assign(6, 1600.0);
  spec.actions = pricing::ActionSet::FromPriceGrid(30, PaperAcceptance()).value();
  return engine::Engine::Solve(spec).value();
}

CampaignLimits SmallLimits() {
  CampaignLimits limits;
  limits.total_tasks = 25;
  limits.deadline_hours = 12.0;
  return limits;
}

std::unique_ptr<market::PricingController> FixedController(double cents) {
  return std::make_unique<market::FixedOfferController>(
      market::Offer{cents, 1});
}

// Every mutation below goes through Apply, the map's single control
// surface; these shims keep the old wrapper spellings readable in tests.
Result<CampaignId> Admit(CampaignShardMap& map, engine::PolicyArtifact artifact,
                         const CampaignLimits& limits) {
  CP_ASSIGN_OR_RETURN(
      const ControlOutcome outcome,
      map.Apply(ControlOp::Admit(std::move(artifact), limits)));
  return outcome.id;
}

Result<CampaignId> AdmitShared(
    CampaignShardMap& map,
    std::shared_ptr<const engine::PolicyArtifact> artifact,
    const CampaignLimits& limits) {
  CP_ASSIGN_OR_RETURN(
      const ControlOutcome outcome,
      map.Apply(ControlOp::AdmitShared(std::move(artifact), limits)));
  return outcome.id;
}

Result<CampaignId> AdmitController(
    CampaignShardMap& map,
    std::unique_ptr<market::PricingController> controller,
    const CampaignLimits& limits) {
  CP_ASSIGN_OR_RETURN(
      const ControlOutcome outcome,
      map.Apply(ControlOp::AdmitController(std::move(controller), limits)));
  return outcome.id;
}

Result<CampaignState> Tick(CampaignShardMap& map, CampaignId id,
                           double now_hours, int64_t remaining_tasks) {
  CP_ASSIGN_OR_RETURN(
      const ControlOutcome outcome,
      map.Apply(ControlOp::Tick(id, now_hours, remaining_tasks)));
  return outcome.state;
}

Status Retire(CampaignShardMap& map, CampaignId id) {
  return map.Apply(ControlOp::Retire(id)).status();
}

Status SwapArtifact(CampaignShardMap& map, CampaignId id,
                    engine::PolicyArtifact artifact) {
  return map.Apply(ControlOp::SwapArtifact(id, std::move(artifact))).status();
}

Status SwapArtifactShared(
    CampaignShardMap& map, CampaignId id,
    std::shared_ptr<const engine::PolicyArtifact> artifact) {
  return map.Apply(ControlOp::SwapArtifactShared(id, std::move(artifact)))
      .status();
}

// Single-type lookup through the sheet surface: the request/offers[0]
// spelling the removed single-offer shim forwarded to.
Result<market::Offer> MapOffer(CampaignShardMap& map, CampaignId id,
                               double now_hours, int64_t remaining_tasks) {
  CP_ASSIGN_OR_RETURN(
      market::OfferSheet sheet,
      map.Decide(id, market::DecisionRequest::Single(now_hours,
                                                     remaining_tasks)));
  return sheet.offers[0];
}

TEST(CampaignLimitsTest, Validation) {
  EXPECT_TRUE(SmallLimits().Validate().ok());
  CampaignLimits limits = SmallLimits();
  limits.total_tasks = 0;
  EXPECT_TRUE(limits.Validate().IsInvalidArgument());
  limits = SmallLimits();
  limits.deadline_hours = 0.0;
  EXPECT_TRUE(limits.Validate().IsInvalidArgument());
}

TEST(CampaignShardMapTest, CreateRejectsBadShardCounts) {
  EXPECT_TRUE(CampaignShardMap::Create(0).status().IsInvalidArgument());
  EXPECT_TRUE(CampaignShardMap::Create(-3).status().IsInvalidArgument());
  EXPECT_TRUE(CampaignShardMap::Create(5000).status().IsInvalidArgument());
  EXPECT_TRUE(CampaignShardMap::Create(1).ok());
}

TEST(CampaignShardMapTest, AdmitAndDecideServesArtifactPolicy) {
  CampaignShardMap map = CampaignShardMap::Create(3).value();
  // The reference controller may point into its artifact, so it plays from
  // a copy that stays alive; the map gets its own moved-in artifact.
  const engine::PolicyArtifact reference_artifact = SmallDeadlineArtifact();
  engine::PolicyArtifact artifact = reference_artifact;
  auto reference =
      reference_artifact.MakeController(SmallLimits().deadline_hours).value();

  const CampaignId id = Admit(map,std::move(artifact), SmallLimits()).value();
  EXPECT_TRUE(map.Contains(id));
  EXPECT_EQ(map.live_campaigns(), 1u);

  for (double now : {0.0, 3.0, 11.0}) {
    for (int64_t remaining : {25, 12, 1}) {
      // The sheet surface agrees with the reference controller.
      const market::OfferSheet sheet =
          map.Decide(id, market::DecisionRequest::Single(now, remaining))
              .value();
      ASSERT_EQ(sheet.num_types(), 1);
      const market::Offer got = MapOffer(map, id, now, remaining).value();
      const market::Offer want =
          test_util::SingleOffer(*reference, now, remaining).value();
      EXPECT_EQ(got.per_task_reward_cents, want.per_task_reward_cents);
      EXPECT_EQ(got.group_size, want.group_size);
      EXPECT_EQ(sheet.offers[0].per_task_reward_cents,
                want.per_task_reward_cents);
    }
  }
  EXPECT_TRUE(MapOffer(map, id + 999, 0.0, 5).status().IsNotFound());
}

TEST(CampaignShardMapTest, TickRetiresOnCompletionAndDeadline) {
  CampaignShardMap map = CampaignShardMap::Create(2).value();
  const CampaignId done_id =
      AdmitController(map,FixedController(10.0), SmallLimits()).value();
  const CampaignId late_id =
      AdmitController(map,FixedController(10.0), SmallLimits()).value();
  EXPECT_EQ(map.live_campaigns(), 2u);

  // Progress mid-campaign keeps it live.
  EXPECT_EQ(Tick(map,done_id, 3.0, 10).value(), CampaignState::kLive);
  // The batch drains -> retired completed; the id stops serving.
  EXPECT_EQ(Tick(map,done_id, 5.0, 0).value(),
            CampaignState::kRetiredCompleted);
  EXPECT_FALSE(map.Contains(done_id));
  EXPECT_TRUE(MapOffer(map, done_id, 5.0, 1).status().IsNotFound());
  EXPECT_TRUE(Tick(map,done_id, 5.0, 0).status().IsNotFound());

  // The deadline passes with work left -> retired deadline.
  EXPECT_EQ(Tick(map,late_id, SmallLimits().deadline_hours, 7).value(),
            CampaignState::kRetiredDeadline);
  EXPECT_FALSE(map.Contains(late_id));
  EXPECT_EQ(map.live_campaigns(), 0u);

  const ShardStats total = map.TotalStats();
  EXPECT_EQ(total.admitted, 2u);
  EXPECT_EQ(total.retired_completed, 1u);
  EXPECT_EQ(total.retired_deadline, 1u);
  EXPECT_EQ(total.live, 0);
}

TEST(CampaignShardMapTest, RetireRemovesExplicitly) {
  CampaignShardMap map = CampaignShardMap::Create(1).value();
  const CampaignId id =
      AdmitController(map,FixedController(5.0), SmallLimits()).value();
  EXPECT_TRUE(Retire(map,id).ok());
  EXPECT_TRUE(Retire(map,id).IsNotFound());
  EXPECT_EQ(map.TotalStats().retired_explicit, 1u);
}

// The serving correctness harness: for every shard count, a batched pass
// answers exactly what per-campaign serial Decide answers, bit-for-bit.
TEST(CampaignShardMapStressTest, DecideBatchMatchesSerialDecideAcrossShards) {
  constexpr int kCampaigns = 120;
  engine::PolicyArtifact solved = SmallDeadlineArtifact();
  const auto shared =
      std::make_shared<const engine::PolicyArtifact>(solved);

  for (int num_shards : {1, 2, 3, 8, 32}) {
    CampaignShardMap map = CampaignShardMap::Create(num_shards).value();
    std::vector<CampaignId> ids;
    for (int i = 0; i < kCampaigns; ++i) {
      // Mix plain-controller, owned-artifact and shared-artifact
      // campaigns.
      if (i % 3 == 0) {
        ids.push_back(
            AdmitController(map,FixedController(5.0 + i % 7), SmallLimits())
                .value());
      } else if (i % 3 == 1) {
        engine::PolicyArtifact copy = solved;
        ids.push_back(Admit(map,std::move(copy), SmallLimits()).value());
      } else {
        ids.push_back(AdmitShared(map,shared, SmallLimits()).value());
      }
    }

    std::vector<DecideRequest> requests;
    for (int i = 0; i < kCampaigns; ++i) {
      requests.push_back(DecideRequest::Single(ids[static_cast<size_t>(i)],
                                               (i % 12) * 0.9, 1 + i % 25));
    }
    // One unknown campaign in the middle of the batch.
    requests.push_back(DecideRequest::Single(999999, 0.0, 5));

    const std::vector<DecideResponse> responses = map.DecideBatch(requests);
    ASSERT_EQ(responses.size(), requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      const Result<market::OfferSheet> serial =
          map.Decide(requests[i].campaign_id, requests[i].request);
      ASSERT_EQ(responses[i].status.ok(), serial.ok())
          << "shards=" << num_shards << " i=" << i;
      if (!serial.ok()) {
        EXPECT_TRUE(responses[i].status.IsNotFound());
        continue;
      }
      ASSERT_EQ(responses[i].sheet.num_types(), serial->num_types());
      EXPECT_EQ(responses[i].sheet.offers[0].per_task_reward_cents,
                serial->offers[0].per_task_reward_cents)
          << "shards=" << num_shards << " i=" << i;
      EXPECT_EQ(responses[i].sheet.offers[0].group_size,
                serial->offers[0].group_size);
    }

    const ShardStats total = map.TotalStats();
    EXPECT_EQ(total.admitted, static_cast<uint64_t>(kCampaigns));
    // Every live request served twice (batch + serial), once per path.
    EXPECT_EQ(total.batch_requests, static_cast<uint64_t>(kCampaigns));
    EXPECT_EQ(total.decides, static_cast<uint64_t>(2 * kCampaigns));
  }
}

// Admission, serving, ticking and retiring race from several threads; TSan
// (CI job clang-tsan) checks the shard locking, the asserts check
// accounting.
TEST(CampaignShardMapStressTest, AdmitAndServeUnderConcurrentLoad) {
  constexpr int kAdmitters = 3;
  constexpr int kPerAdmitter = 40;
  CampaignShardMap map = CampaignShardMap::Create(8).value();

  std::atomic<bool> stop{false};
  std::atomic<int> batch_errors{0};

  std::thread server([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<DecideRequest> requests;
      for (CampaignId id = 1; id <= kAdmitters * kPerAdmitter; ++id) {
        requests.push_back(DecideRequest::Single(id, 1.0, 5));
      }
      for (const DecideResponse& response : map.DecideBatch(requests)) {
        // Unknown ids are expected while admission races; anything else
        // is a bug.
        if (!response.status.ok() && !response.status.IsNotFound()) {
          batch_errors.fetch_add(1);
        }
      }
    }
  });

  std::vector<std::thread> admitters;
  for (int a = 0; a < kAdmitters; ++a) {
    admitters.emplace_back([&map, a] {
      for (int i = 0; i < kPerAdmitter; ++i) {
        const CampaignId id =
            AdmitController(map,FixedController(4.0 + a), SmallLimits())
                .value();
        // Half the campaigns complete immediately, exercising retire
        // while the server thread batches.
        if (i % 2 == 0) {
          ASSERT_TRUE(Tick(map,id, 1.0, 0).ok());
        }
      }
    });
  }
  for (std::thread& thread : admitters) thread.join();
  stop.store(true, std::memory_order_release);
  server.join();

  EXPECT_EQ(batch_errors.load(), 0);
  const ShardStats total = map.TotalStats();
  EXPECT_EQ(total.admitted,
            static_cast<uint64_t>(kAdmitters * kPerAdmitter));
  EXPECT_EQ(total.retired_completed,
            static_cast<uint64_t>(kAdmitters * kPerAdmitter / 2));
  EXPECT_EQ(static_cast<uint64_t>(total.live),
            total.admitted - total.retired_completed);
  EXPECT_EQ(map.live_campaigns(), static_cast<size_t>(total.live));
}

TEST(CampaignShardMapTest, TickUsesWallClockDeadlineForStreamingAdmissions) {
  // A campaign admitted mid-run carries its admission time in its limits:
  // the controller horizon stays the campaign *duration*, while Tick
  // retires against the wall-clock deadline admit + duration.
  CampaignShardMap map = CampaignShardMap::Create(2).value();
  CampaignLimits limits;
  limits.total_tasks = 10;
  limits.deadline_hours = 4.0;
  limits.admit_hours = 10.0;
  ASSERT_TRUE(limits.Validate().ok());
  const CampaignId id =
      AdmitController(map,FixedController(10.0), limits).value();

  // The campaign-clock deadline value is mid-campaign on the wall clock.
  EXPECT_EQ(Tick(map,id, 4.0, 5).value(), CampaignState::kLive);
  EXPECT_EQ(Tick(map,id, 13.9, 5).value(), CampaignState::kLive);
  EXPECT_EQ(Tick(map,id, 14.0, 5).value(), CampaignState::kRetiredDeadline);

  CampaignLimits bad = limits;
  bad.admit_hours = -1.0;
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());
}

TEST(CampaignShardMapTest, DecideRebasesWallClockOntoCampaignClock) {
  // A streaming campaign admitted at wall-clock 10 must be priced on its
  // own clock: a lookup at wall 11 answers like a t=0-admitted campaign's
  // lookup at 1 -- for both Decide and DecideBatch.
  CampaignShardMap map = CampaignShardMap::Create(2).value();
  const engine::PolicyArtifact solved = SmallDeadlineArtifact();

  CampaignLimits at_zero = SmallLimits();
  engine::PolicyArtifact copy = solved;
  const CampaignId reference = Admit(map,std::move(copy), at_zero).value();

  CampaignLimits streamed = SmallLimits();
  streamed.admit_hours = 10.0;
  copy = solved;
  const CampaignId late = Admit(map,std::move(copy), streamed).value();

  for (const double local : {0.0, 1.0, 4.5, 11.0}) {
    const market::Offer want = MapOffer(map, reference, local, 12).value();
    const market::Offer got = MapOffer(map, late, 10.0 + local, 12).value();
    EXPECT_EQ(got.per_task_reward_cents, want.per_task_reward_cents)
        << "campaign hour " << local;
    EXPECT_EQ(got.group_size, want.group_size);

    const std::vector<DecideResponse> batched =
        map.DecideBatch({DecideRequest::Single(late, 10.0 + local, 12)});
    ASSERT_TRUE(batched[0].status.ok());
    EXPECT_EQ(batched[0].sheet.offers[0].per_task_reward_cents,
              want.per_task_reward_cents);
  }
  // Skewed callers (wall clock before the admission) clamp to campaign
  // hour 0 instead of indexing a negative interval.
  EXPECT_EQ(MapOffer(map, late, 2.0, 12).value().per_task_reward_cents,
            MapOffer(map, reference, 0.0, 12).value().per_task_reward_cents);
}

TEST(CampaignShardMapTest, PeakLiveTracksChurnHighWaterMark) {
  CampaignShardMap map = CampaignShardMap::Create(1).value();
  const CampaignId a =
      AdmitController(map,FixedController(5.0), SmallLimits()).value();
  const CampaignId b =
      AdmitController(map,FixedController(5.0), SmallLimits()).value();
  ASSERT_TRUE(Retire(map,a).ok());
  ASSERT_TRUE(Retire(map,b).ok());
  // Two were live at once; none are now -- the peak remembers the churn.
  const ShardStats total = map.TotalStats();
  EXPECT_EQ(total.peak_live, 2);
  EXPECT_EQ(total.live, 0);
  const CampaignId c =
      AdmitController(map,FixedController(5.0), SmallLimits()).value();
  EXPECT_TRUE(map.Contains(c));
  EXPECT_EQ(map.TotalStats().peak_live, 2);  // 1 live never beats the peak.
}

// The streaming-fleet serving race: admissions (owned + shared artifact),
// hot swaps and retirements churn the map from several threads while
// DecideBatch traffic is continuously in flight. TSan (CI job clang-tsan)
// checks the locking; the asserts check that the churn counters reconcile
// exactly once the map quiesces: admitted == retired + live.
TEST(CampaignShardMapStressTest, ChurnRacesDecideBatchAndCountersReconcile) {
  constexpr int kChurners = 4;
  constexpr int kPerChurner = 32;
  CampaignShardMap map = CampaignShardMap::Create(8).value();
  const engine::PolicyArtifact solved = SmallDeadlineArtifact();
  const auto shared = std::make_shared<const engine::PolicyArtifact>(solved);

  std::atomic<bool> stop{false};
  std::atomic<int> batch_errors{0};
  std::atomic<uint64_t> highest_id{0};

  std::thread server([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const CampaignId top = highest_id.load(std::memory_order_acquire);
      std::vector<DecideRequest> requests;
      for (CampaignId id = 1; id <= top; ++id) {
        requests.push_back(DecideRequest::Single(id, 1.0, 5));
      }
      if (requests.empty()) continue;
      for (const DecideResponse& response : map.DecideBatch(requests)) {
        // Campaigns retire while the batch is built, so NotFound is
        // expected; anything else is a torn campaign.
        if (!response.status.ok() && !response.status.IsNotFound()) {
          batch_errors.fetch_add(1);
        }
      }
    }
  });

  std::vector<std::thread> churners;
  for (int c = 0; c < kChurners; ++c) {
    churners.emplace_back([&map, &shared, &solved, &highest_id, c] {
      for (int i = 0; i < kPerChurner; ++i) {
        CampaignLimits limits = SmallLimits();
        limits.admit_hours = 0.25 * i;  // Staggered streaming admissions.
        CampaignId id = 0;
        if (i % 3 == 0) {
          engine::PolicyArtifact copy = solved;
          id = Admit(map,std::move(copy), limits).value();
        } else if (i % 3 == 1) {
          id = AdmitShared(map,shared, limits).value();
        } else {
          id = AdmitController(map,FixedController(4.0 + c), limits).value();
        }
        // Publish a monotone id bound for the server's request sweep.
        uint64_t seen = highest_id.load(std::memory_order_relaxed);
        while (seen < id && !highest_id.compare_exchange_weak(
                                seen, id, std::memory_order_release)) {
        }
        switch (i % 4) {
          case 0:  // Complete under traffic.
            ASSERT_TRUE(Tick(map,id, limits.admit_hours + 1.0, 0).ok());
            break;
          case 1: {  // Hot-swap, then expire at the wall-clock deadline.
            pricing::FixedPriceSolution fixed;
            fixed.price_cents = 30 + i % 5;
            ASSERT_TRUE(
                SwapArtifact(map,id, engine::PolicyArtifact(fixed)).ok());
            ASSERT_TRUE(
                Tick(map,id,
                         limits.admit_hours + limits.deadline_hours, 3)
                    .ok());
            break;
          }
          case 2:  // Pull explicitly.
            ASSERT_TRUE(Retire(map,id).ok());
            break;
          default:  // Stay live through the quiesce.
            break;
        }
      }
    });
  }
  for (std::thread& thread : churners) thread.join();
  stop.store(true, std::memory_order_release);
  server.join();

  EXPECT_EQ(batch_errors.load(), 0);
  const ShardStats total = map.TotalStats();
  constexpr uint64_t kTotal =
      static_cast<uint64_t>(kChurners) * kPerChurner;
  EXPECT_EQ(total.admitted, kTotal);
  // The churn invariant at quiesce: every admission is accounted for.
  EXPECT_EQ(total.retired_completed + total.retired_deadline +
                total.retired_explicit + static_cast<uint64_t>(total.live),
            kTotal);
  EXPECT_EQ(total.retired_completed, kTotal / 4);
  EXPECT_EQ(total.retired_deadline, kTotal / 4);
  EXPECT_EQ(total.retired_explicit, kTotal / 4);
  EXPECT_EQ(total.swapped, kTotal / 4);
  EXPECT_EQ(map.live_campaigns(), static_cast<size_t>(total.live));
  EXPECT_GE(total.peak_live, total.live);
  EXPECT_LE(total.peak_live, static_cast<int64_t>(kTotal));

  // Snapshot reclamation reconciles at quiesce: every snapshot ever
  // published (one per admission, one per swap) is either fully freed or
  // backing a still-live campaign.
  map.QuiesceReclamation();
  const SnapshotStats snapshots = map.snapshot_stats();
  EXPECT_EQ(snapshots.published, total.admitted + total.swapped);
  EXPECT_EQ(snapshots.live_campaigns, static_cast<uint64_t>(total.live));
  EXPECT_EQ(snapshots.published,
            snapshots.reclaimed + snapshots.live_campaigns);
}

TEST(CampaignShardMapTest, SwapArtifactChangesDecisionsAtTheBoundary) {
  CampaignShardMap map = CampaignShardMap::Create(2).value();
  const CampaignId id = Admit(map,SmallDeadlineArtifact(), SmallLimits())
                            .value();

  // Mid-campaign: the live policy answers; record a pre-swap decision.
  const market::Offer before = MapOffer(map, id, 3.0, 20).value();

  // Hot-swap to an unmistakably different policy (a solved fixed-price
  // artifact would also do; a distinctive fixed reward makes the boundary
  // observable).
  pricing::FixedPriceSolution fixed;
  fixed.price_cents = 77;
  const Status swapped = SwapArtifact(map,id, engine::PolicyArtifact(fixed));
  ASSERT_TRUE(swapped.ok()) << swapped;

  // Decisions change exactly at the swap boundary...
  const market::Offer after = MapOffer(map, id, 3.0, 20).value();
  EXPECT_DOUBLE_EQ(after.per_task_reward_cents, 77.0);
  EXPECT_NE(after.per_task_reward_cents, before.per_task_reward_cents);

  // ...while the campaign's identity and stats stay continuous.
  EXPECT_TRUE(map.Contains(id));
  const ShardStats total = map.TotalStats();
  EXPECT_EQ(total.admitted, 1u);
  EXPECT_EQ(total.swapped, 1u);
  EXPECT_EQ(total.decides, 2u);
  EXPECT_EQ(total.live, 1);

  // The swapped campaign still ticks and retires normally.
  EXPECT_EQ(Tick(map,id, 4.0, 10).value(), CampaignState::kLive);
  EXPECT_EQ(Tick(map,id, 5.0, 0).value(), CampaignState::kRetiredCompleted);

  // Swapping a retired or unknown campaign fails NotFound.
  pricing::FixedPriceSolution other;
  other.price_cents = 5;
  EXPECT_TRUE(
      SwapArtifact(map,id, engine::PolicyArtifact(other)).IsNotFound());
}

TEST(CampaignShardMapTest, SwapArtifactRejectsNullAndKeepsOldPolicyOnError) {
  CampaignShardMap map = CampaignShardMap::Create(1).value();
  const CampaignId id =
      AdmitController(map,FixedController(10.0), SmallLimits()).value();
  EXPECT_TRUE(SwapArtifactShared(map,id, nullptr).IsInvalidArgument());
  // The campaign still serves its original policy.
  EXPECT_DOUBLE_EQ(MapOffer(map, id, 0.0, 5).value().per_task_reward_cents,
                   10.0);
  EXPECT_EQ(map.TotalStats().swapped, 0u);
}

TEST(CampaignShardMapTest, MultiTypeArtifactServesSheets) {
  // A §6 multitype artifact is admitted and served through the same
  // DecideBatch surface as single-type campaigns.
  engine::MultiTypeSpec spec;
  spec.s1 = 10.0;
  spec.b1 = 1.2;
  spec.s2 = 10.0;
  spec.b2 = 1.0;
  spec.m = 200.0;
  spec.problem.num_tasks_1 = 5;
  spec.problem.num_tasks_2 = 5;
  spec.problem.num_intervals = 4;
  spec.problem.penalty_1_cents = 120.0;
  spec.problem.penalty_2_cents = 120.0;
  spec.problem.max_price_cents = 20;
  spec.problem.price_stride = 4;
  spec.interval_lambdas.assign(4, 40.0);
  engine::PolicyArtifact artifact = engine::Engine::Solve(spec).value();
  const pricing::MultiTypePlan plan = *artifact.multitype_plan().value();

  CampaignShardMap map = CampaignShardMap::Create(2).value();
  CampaignLimits limits;
  limits.total_tasks = 10;
  limits.deadline_hours = 8.0;
  const CampaignId id = Admit(map,std::move(artifact), limits).value();

  DecideRequest request;
  request.campaign_id = id;
  request.request.campaign_hours = 0.0;
  request.request.remaining = {5, 3};
  const std::vector<DecideResponse> responses = map.DecideBatch({request});
  ASSERT_EQ(responses.size(), 1u);
  ASSERT_TRUE(responses[0].status.ok()) << responses[0].status;
  ASSERT_EQ(responses[0].sheet.num_types(), 2);
  const auto prices = plan.PricesAt(5, 3, 0).value();
  EXPECT_DOUBLE_EQ(responses[0].sheet.offers[0].per_task_reward_cents,
                   prices.first);
  EXPECT_DOUBLE_EQ(responses[0].sheet.offers[1].per_task_reward_cents,
                   prices.second);
  // The single-type shim reports the mismatch instead of guessing a type.
  EXPECT_FALSE(MapOffer(map, id, 0.0, 5).ok());
}

// Swaps race batched serving and ticking from several threads; the TSan CI
// job certifies the under-lock swap, the asserts check accounting.
TEST(CampaignShardMapStressTest, SwapArtifactUnderConcurrentServing) {
  constexpr int kCampaigns = 32;
  constexpr int kSwapsPerCampaign = 25;
  CampaignShardMap map = CampaignShardMap::Create(4).value();
  const auto shared = std::make_shared<const engine::PolicyArtifact>(
      SmallDeadlineArtifact());

  std::vector<CampaignId> ids;
  for (int i = 0; i < kCampaigns; ++i) {
    ids.push_back(AdmitShared(map,shared, SmallLimits()).value());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> serve_errors{0};
  std::thread server([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<DecideRequest> requests;
      for (CampaignId id : ids) {
        requests.push_back(DecideRequest::Single(id, 2.0, 12));
      }
      for (const DecideResponse& response : map.DecideBatch(requests)) {
        // Every campaign stays live throughout; any failure is a swap
        // tearing a campaign mid-decision.
        if (!response.status.ok()) serve_errors.fetch_add(1);
        // Both policies in rotation post 1-offer sheets.
        if (response.status.ok() && response.sheet.num_types() != 1) {
          serve_errors.fetch_add(1);
        }
      }
    }
  });

  std::vector<std::thread> swappers;
  for (int half = 0; half < 2; ++half) {
    swappers.emplace_back([&map, &ids, half] {
      for (int round = 0; round < kSwapsPerCampaign; ++round) {
        for (size_t i = static_cast<size_t>(half); i < ids.size(); i += 2) {
          pricing::FixedPriceSolution fixed;
          fixed.price_cents = 20 + round % 10;
          EXPECT_TRUE(
              SwapArtifact(map,ids[i], engine::PolicyArtifact(fixed)).ok());
        }
      }
    });
  }
  for (std::thread& thread : swappers) thread.join();
  stop.store(true, std::memory_order_release);
  server.join();

  EXPECT_EQ(serve_errors.load(), 0);
  const ShardStats total = map.TotalStats();
  EXPECT_EQ(total.swapped,
            static_cast<uint64_t>(kCampaigns) * kSwapsPerCampaign);
  EXPECT_EQ(map.live_campaigns(), static_cast<size_t>(kCampaigns));
  // After the dust settles every campaign serves the last-swapped policy.
  for (CampaignId id : ids) {
    const market::Offer offer = MapOffer(map, id, 2.0, 12).value();
    EXPECT_GE(offer.per_task_reward_cents, 20.0);
    EXPECT_LE(offer.per_task_reward_cents, 29.0);
  }
}

// The sharpest race the snapshot read path must win: SwapArtifact and
// Retire hammering the SAME campaigns that in-flight Decide/DecideBatch
// passes are serving. Every successful response must come wholly from one
// published policy -- the initial controller or one of the two swap
// targets; any other price is a torn snapshot -- and after quiesce the
// reclamation ledger must balance: snapshots published == reclaimed +
// live. (The TSan CI job additionally proves the grace-period frees race
// no in-flight read.)
TEST(CampaignShardMapStressTest, SameCampaignSwapRetireRacesDecideBatch) {
  constexpr int kCampaigns = 8;
  constexpr int kSwapsPerCampaign = 24;
  constexpr double kInitialPrice = 55.0;
  constexpr double kSwapPriceA = 77.0;
  constexpr double kSwapPriceB = 88.0;

  CampaignShardMap map = CampaignShardMap::Create(4).value();
  std::vector<CampaignId> ids;
  for (int i = 0; i < kCampaigns; ++i) {
    ids.push_back(
        AdmitController(map,FixedController(kInitialPrice), SmallLimits())
            .value());
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  std::atomic<uint64_t> served{0};

  auto check = [&](const DecideResponse& response) {
    if (response.status.IsNotFound()) return;  // Retired mid-race: fine.
    if (!response.status.ok()) {
      torn.fetch_add(1);
      return;
    }
    const double price = response.sheet.offers[0].per_task_reward_cents;
    if (price != kInitialPrice && price != kSwapPriceA &&
        price != kSwapPriceB) {
      torn.fetch_add(1);
    }
    served.fetch_add(1);
  };

  std::thread server([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<DecideRequest> requests;
      for (CampaignId id : ids) {
        requests.push_back(DecideRequest::Single(id, 1.0, 5));
      }
      for (const DecideResponse& response : map.DecideBatch(requests)) {
        check(response);
      }
      // Single-decide lane: same campaigns, unbatched read path.
      for (CampaignId id : ids) {
        DecideResponse response;
        response.campaign_id = id;
        Result<market::OfferSheet> sheet =
            map.Decide(id, market::DecisionRequest::Single(1.0, 5));
        if (sheet.ok()) {
          response.sheet = *sheet;
        } else {
          response.status = sheet.status();
        }
        check(response);
      }
    }
  });

  std::vector<std::thread> churners;
  for (int half = 0; half < 2; ++half) {
    churners.emplace_back([&map, &ids, half] {
      for (size_t i = static_cast<size_t>(half); i < ids.size(); i += 2) {
        for (int s = 0; s < kSwapsPerCampaign; ++s) {
          pricing::FixedPriceSolution fixed;
          fixed.price_cents = s % 2 == 0 ? kSwapPriceA : kSwapPriceB;
          ASSERT_TRUE(
              SwapArtifact(map,ids[i], engine::PolicyArtifact(fixed)).ok());
        }
        ASSERT_TRUE(Retire(map,ids[i]).ok());
      }
    });
  }
  for (std::thread& thread : churners) thread.join();
  stop.store(true, std::memory_order_release);
  server.join();

  EXPECT_EQ(torn.load(), 0u);
  const ShardStats total = map.TotalStats();
  EXPECT_EQ(total.swapped,
            static_cast<uint64_t>(kCampaigns) * kSwapsPerCampaign);
  EXPECT_EQ(total.retired_explicit, static_cast<uint64_t>(kCampaigns));
  EXPECT_EQ(map.live_campaigns(), 0u);

  // Reclamation reconciles: one snapshot per admission plus one per swap,
  // all freed once the grace period drains (no borrows outstanding).
  map.QuiesceReclamation();
  const SnapshotStats snapshots = map.snapshot_stats();
  EXPECT_EQ(snapshots.published,
            static_cast<uint64_t>(kCampaigns) * (1 + kSwapsPerCampaign));
  EXPECT_EQ(snapshots.live_campaigns, 0u);
  EXPECT_EQ(snapshots.published, snapshots.reclaimed);
}

}  // namespace
}  // namespace crowdprice::serving
