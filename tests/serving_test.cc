// CampaignShardMap tests: batched serving equals serial serving
// bit-for-bit across shard counts, lifecycle retires campaigns on
// completion/deadline, stats track load, and admission stays safe under
// concurrent serving (the TSan CI job runs the threaded stress).

#include "serving/campaign_shard_map.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "choice/acceptance.h"
#include "engine/engine.h"
#include "market/controller.h"

namespace crowdprice::serving {
namespace {

const choice::LogitAcceptance& PaperAcceptance() {
  static const choice::LogitAcceptance acceptance =
      choice::LogitAcceptance::Paper2014();
  return acceptance;
}

engine::PolicyArtifact SmallDeadlineArtifact() {
  engine::DeadlineDpSpec spec;
  spec.problem.num_tasks = 25;
  spec.problem.num_intervals = 6;
  spec.problem.penalty_cents = 180.0;
  spec.interval_lambdas.assign(6, 1600.0);
  spec.actions = pricing::ActionSet::FromPriceGrid(30, PaperAcceptance()).value();
  return engine::Engine::Solve(spec).value();
}

CampaignLimits SmallLimits() {
  CampaignLimits limits;
  limits.total_tasks = 25;
  limits.deadline_hours = 12.0;
  return limits;
}

std::unique_ptr<market::PricingController> FixedController(double cents) {
  return std::make_unique<market::FixedOfferController>(
      market::Offer{cents, 1});
}

TEST(CampaignLimitsTest, Validation) {
  EXPECT_TRUE(SmallLimits().Validate().ok());
  CampaignLimits limits = SmallLimits();
  limits.total_tasks = 0;
  EXPECT_TRUE(limits.Validate().IsInvalidArgument());
  limits = SmallLimits();
  limits.deadline_hours = 0.0;
  EXPECT_TRUE(limits.Validate().IsInvalidArgument());
}

TEST(CampaignShardMapTest, CreateRejectsBadShardCounts) {
  EXPECT_TRUE(CampaignShardMap::Create(0).status().IsInvalidArgument());
  EXPECT_TRUE(CampaignShardMap::Create(-3).status().IsInvalidArgument());
  EXPECT_TRUE(CampaignShardMap::Create(5000).status().IsInvalidArgument());
  EXPECT_TRUE(CampaignShardMap::Create(1).ok());
}

TEST(CampaignShardMapTest, AdmitAndDecideServesArtifactPolicy) {
  CampaignShardMap map = CampaignShardMap::Create(3).value();
  // The reference controller may point into its artifact, so it plays from
  // a copy that stays alive; the map gets its own moved-in artifact.
  const engine::PolicyArtifact reference_artifact = SmallDeadlineArtifact();
  engine::PolicyArtifact artifact = reference_artifact;
  auto reference =
      reference_artifact.MakeController(SmallLimits().deadline_hours).value();

  const CampaignId id = map.Admit(std::move(artifact), SmallLimits()).value();
  EXPECT_TRUE(map.Contains(id));
  EXPECT_EQ(map.live_campaigns(), 1u);

  for (double now : {0.0, 3.0, 11.0}) {
    for (int64_t remaining : {25, 12, 1}) {
      const market::Offer got = map.Decide(id, now, remaining).value();
      const market::Offer want = reference->Decide(now, remaining).value();
      EXPECT_EQ(got.per_task_reward_cents, want.per_task_reward_cents);
      EXPECT_EQ(got.group_size, want.group_size);
    }
  }
  EXPECT_TRUE(map.Decide(id + 999, 0.0, 5).status().IsNotFound());
}

TEST(CampaignShardMapTest, TickRetiresOnCompletionAndDeadline) {
  CampaignShardMap map = CampaignShardMap::Create(2).value();
  const CampaignId done_id =
      map.AdmitController(FixedController(10.0), SmallLimits()).value();
  const CampaignId late_id =
      map.AdmitController(FixedController(10.0), SmallLimits()).value();
  EXPECT_EQ(map.live_campaigns(), 2u);

  // Progress mid-campaign keeps it live.
  EXPECT_EQ(map.Tick(done_id, 3.0, 10).value(), CampaignState::kLive);
  // The batch drains -> retired completed; the id stops serving.
  EXPECT_EQ(map.Tick(done_id, 5.0, 0).value(),
            CampaignState::kRetiredCompleted);
  EXPECT_FALSE(map.Contains(done_id));
  EXPECT_TRUE(map.Decide(done_id, 5.0, 1).status().IsNotFound());
  EXPECT_TRUE(map.Tick(done_id, 5.0, 0).status().IsNotFound());

  // The deadline passes with work left -> retired deadline.
  EXPECT_EQ(map.Tick(late_id, SmallLimits().deadline_hours, 7).value(),
            CampaignState::kRetiredDeadline);
  EXPECT_FALSE(map.Contains(late_id));
  EXPECT_EQ(map.live_campaigns(), 0u);

  const ShardStats total = map.TotalStats();
  EXPECT_EQ(total.admitted, 2u);
  EXPECT_EQ(total.retired_completed, 1u);
  EXPECT_EQ(total.retired_deadline, 1u);
  EXPECT_EQ(total.live, 0);
}

TEST(CampaignShardMapTest, RetireRemovesExplicitly) {
  CampaignShardMap map = CampaignShardMap::Create(1).value();
  const CampaignId id =
      map.AdmitController(FixedController(5.0), SmallLimits()).value();
  EXPECT_TRUE(map.Retire(id).ok());
  EXPECT_TRUE(map.Retire(id).IsNotFound());
  EXPECT_EQ(map.TotalStats().retired_explicit, 1u);
}

// The serving correctness harness: for every shard count, a batched pass
// answers exactly what per-campaign serial Decide answers, bit-for-bit.
TEST(CampaignShardMapStressTest, DecideBatchMatchesSerialDecideAcrossShards) {
  constexpr int kCampaigns = 120;
  engine::PolicyArtifact solved = SmallDeadlineArtifact();
  const auto shared =
      std::make_shared<const engine::PolicyArtifact>(solved);

  for (int num_shards : {1, 2, 3, 8, 32}) {
    CampaignShardMap map = CampaignShardMap::Create(num_shards).value();
    std::vector<CampaignId> ids;
    for (int i = 0; i < kCampaigns; ++i) {
      // Mix plain-controller, owned-artifact and shared-artifact
      // campaigns.
      if (i % 3 == 0) {
        ids.push_back(
            map.AdmitController(FixedController(5.0 + i % 7), SmallLimits())
                .value());
      } else if (i % 3 == 1) {
        engine::PolicyArtifact copy = solved;
        ids.push_back(map.Admit(std::move(copy), SmallLimits()).value());
      } else {
        ids.push_back(map.AdmitShared(shared, SmallLimits()).value());
      }
    }

    std::vector<DecideRequest> requests;
    for (int i = 0; i < kCampaigns; ++i) {
      DecideRequest request;
      request.campaign_id = ids[static_cast<size_t>(i)];
      request.now_hours = (i % 12) * 0.9;
      request.remaining_tasks = 1 + i % 25;
      requests.push_back(request);
    }
    // One unknown campaign in the middle of the batch.
    requests.push_back(DecideRequest{999999, 0.0, 5});

    const std::vector<DecideResponse> responses = map.DecideBatch(requests);
    ASSERT_EQ(responses.size(), requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      const Result<market::Offer> serial = map.Decide(
          requests[i].campaign_id, requests[i].now_hours,
          requests[i].remaining_tasks);
      ASSERT_EQ(responses[i].status.ok(), serial.ok())
          << "shards=" << num_shards << " i=" << i;
      if (!serial.ok()) {
        EXPECT_TRUE(responses[i].status.IsNotFound());
        continue;
      }
      EXPECT_EQ(responses[i].offer.per_task_reward_cents,
                serial->per_task_reward_cents)
          << "shards=" << num_shards << " i=" << i;
      EXPECT_EQ(responses[i].offer.group_size, serial->group_size);
    }

    const ShardStats total = map.TotalStats();
    EXPECT_EQ(total.admitted, static_cast<uint64_t>(kCampaigns));
    // Every live request served twice (batch + serial), once per path.
    EXPECT_EQ(total.batch_requests, static_cast<uint64_t>(kCampaigns));
    EXPECT_EQ(total.decides, static_cast<uint64_t>(2 * kCampaigns));
  }
}

// Admission, serving, ticking and retiring race from several threads; TSan
// (CI job clang-tsan) checks the shard locking, the asserts check
// accounting.
TEST(CampaignShardMapStressTest, AdmitAndServeUnderConcurrentLoad) {
  constexpr int kAdmitters = 3;
  constexpr int kPerAdmitter = 40;
  CampaignShardMap map = CampaignShardMap::Create(8).value();

  std::atomic<bool> stop{false};
  std::atomic<int> batch_errors{0};

  std::thread server([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<DecideRequest> requests;
      for (CampaignId id = 1; id <= kAdmitters * kPerAdmitter; ++id) {
        requests.push_back(DecideRequest{id, 1.0, 5});
      }
      for (const DecideResponse& response : map.DecideBatch(requests)) {
        // Unknown ids are expected while admission races; anything else
        // is a bug.
        if (!response.status.ok() && !response.status.IsNotFound()) {
          batch_errors.fetch_add(1);
        }
      }
    }
  });

  std::vector<std::thread> admitters;
  for (int a = 0; a < kAdmitters; ++a) {
    admitters.emplace_back([&map, a] {
      for (int i = 0; i < kPerAdmitter; ++i) {
        const CampaignId id =
            map.AdmitController(FixedController(4.0 + a), SmallLimits())
                .value();
        // Half the campaigns complete immediately, exercising retire
        // while the server thread batches.
        if (i % 2 == 0) {
          ASSERT_TRUE(map.Tick(id, 1.0, 0).ok());
        }
      }
    });
  }
  for (std::thread& thread : admitters) thread.join();
  stop.store(true, std::memory_order_release);
  server.join();

  EXPECT_EQ(batch_errors.load(), 0);
  const ShardStats total = map.TotalStats();
  EXPECT_EQ(total.admitted,
            static_cast<uint64_t>(kAdmitters * kPerAdmitter));
  EXPECT_EQ(total.retired_completed,
            static_cast<uint64_t>(kAdmitters * kPerAdmitter / 2));
  EXPECT_EQ(static_cast<uint64_t>(total.live),
            total.admitted - total.retired_completed);
  EXPECT_EQ(map.live_campaigns(), static_cast<size_t>(total.live));
}

}  // namespace
}  // namespace crowdprice::serving
