#include "market/simulator.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "arrival/rate_function.h"
#include "choice/acceptance.h"
#include "market/controller.h"
#include "stats/descriptive.h"
#include "util/rng.h"

#include "test_util.h"

namespace crowdprice::market {
namespace {

arrival::PiecewiseConstantRate ConstantRate(double per_hour, double span = 24.0) {
  return arrival::PiecewiseConstantRate::Constant(per_hour, span).value();
}

// Acceptance that is simply min(1, c / 100): easy to reason about.
class LinearAcceptance final : public choice::AcceptanceFunction {
 public:
  double ProbabilityAt(double reward_cents) const override {
    return std::clamp(reward_cents / 100.0, 0.0, 1.0);
  }
};

SimulatorConfig BaseConfig(int64_t tasks = 100, double horizon = 10.0) {
  SimulatorConfig config;
  config.total_tasks = tasks;
  config.horizon_hours = horizon;
  config.decision_interval_hours = 1.0;
  config.service_minutes_per_task = 0.0;
  return config;
}

TEST(SimulatorConfigTest, Validation) {
  SimulatorConfig c = BaseConfig();
  c.total_tasks = 0;
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
  c = BaseConfig();
  c.horizon_hours = 0.0;
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
  c = BaseConfig();
  c.decision_interval_hours = 0.0;
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
  c = BaseConfig();
  c.retention.max_rate = 1.0;
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
  c = BaseConfig();
  c.accuracy.enabled = true;
  c.accuracy.beta_alpha = 0.0;
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
  EXPECT_TRUE(BaseConfig().Validate().ok());
}

TEST(RetentionModelTest, Shape) {
  RetentionModel off;
  EXPECT_DOUBLE_EQ(off.ProbabilityAt(50.0), 0.0);
  RetentionModel on{0.8, 10.0};
  EXPECT_DOUBLE_EQ(on.ProbabilityAt(0.0), 0.0);
  EXPECT_NEAR(on.ProbabilityAt(10.0), 0.4, 1e-12);  // half-saturation
  EXPECT_LT(on.ProbabilityAt(1000.0), 0.8);
  EXPECT_GT(on.ProbabilityAt(1000.0), 0.75);
}

TEST(RunSimulationTest, CompletionsMatchThinnedProcess) {
  // Rate 500/h over 10 h, p = 0.3: expected pickups 1500 >> 100 tasks, so
  // the batch finishes; with p = 0.01, expected pickups = 50 < 100.
  auto rate = ConstantRate(500.0);
  LinearAcceptance acceptance;
  Rng rng(1);
  FixedOfferController rich(Offer{30.0, 1});
  auto result = RunSimulation(BaseConfig(), rate, acceptance, rich, rng).value();
  EXPECT_TRUE(result.finished);
  EXPECT_EQ(result.tasks_assigned, 100);
  EXPECT_EQ(result.tasks_completed_by_horizon, 100);
  EXPECT_DOUBLE_EQ(result.total_cost_cents, 100 * 30.0);

  FixedOfferController poor(Offer{1.0, 1});
  Rng rng2(2);
  auto starved = RunSimulation(BaseConfig(), rate, acceptance, poor, rng2).value();
  EXPECT_FALSE(starved.finished);
  EXPECT_GT(starved.tasks_unassigned, 0);
  EXPECT_NEAR(static_cast<double>(starved.tasks_assigned), 50.0, 25.0);
}

TEST(RunSimulationTest, DeterministicGivenSeed) {
  auto rate = ConstantRate(300.0);
  LinearAcceptance acceptance;
  FixedOfferController c1(Offer{20.0, 1});
  FixedOfferController c2(Offer{20.0, 1});
  Rng a(7), b(7);
  auto ra = RunSimulation(BaseConfig(), rate, acceptance, c1, a).value();
  auto rb = RunSimulation(BaseConfig(), rate, acceptance, c2, b).value();
  EXPECT_EQ(ra.tasks_assigned, rb.tasks_assigned);
  EXPECT_DOUBLE_EQ(ra.total_cost_cents, rb.total_cost_cents);
  EXPECT_EQ(ra.events.size(), rb.events.size());
  EXPECT_EQ(ra.worker_arrivals, rb.worker_arrivals);
}

TEST(RunSimulationTest, ExpectedWorkerArrivalsMatchOneOverP) {
  // Theorem 5 with a single price: E[W] = N / p(c).
  auto rate = ConstantRate(2000.0, 24.0);
  LinearAcceptance acceptance;  // p(20) = 0.2
  SimulatorConfig config = BaseConfig(50, 500.0);
  Rng rng(11);
  stats::RunningStats arrivals;
  for (int rep = 0; rep < 300; ++rep) {
    FixedOfferController ctl(Offer{20.0, 1});
    Rng child = rng.Fork();
    auto res = RunSimulation(config, rate, acceptance, ctl, child).value();
    ASSERT_TRUE(res.finished);
    arrivals.Add(static_cast<double>(res.worker_arrivals));
  }
  EXPECT_NEAR(arrivals.mean(), 50.0 / 0.2, 5.0 * arrivals.stderr_mean() + 1.0);
}

TEST(RunSimulationTest, SemiStaticOrderInvariance) {
  // Theorem 5: E[W] of a semi-static sequence does not depend on order.
  // Simulate tiers in descending and (via a custom controller) ascending
  // price order and compare mean worker arrivals.
  auto rate = ConstantRate(2000.0, 24.0);
  LinearAcceptance acceptance;
  SimulatorConfig config = BaseConfig(40, 2000.0);
  config.decide_on_every_assignment = true;

  class AscendingTiers final : public PricingController {
   public:
    Result<OfferSheet> Decide(const DecisionRequest& request) override {
      // First 20 tasks at 10 cents (p=0.1), then 20 at 40 cents (p=0.4).
      const int64_t taken = 40 - request.remaining[0];
      return OfferSheet::Single(Offer{taken < 20 ? 10.0 : 40.0, 1});
    }
  };

  Rng rng(13);
  stats::RunningStats asc_w, desc_w;
  for (int rep = 0; rep < 250; ++rep) {
    AscendingTiers asc;
    Rng child = rng.Fork();
    auto res = RunSimulation(config, rate, acceptance, asc, child).value();
    ASSERT_TRUE(res.finished);
    asc_w.Add(static_cast<double>(res.worker_arrivals));

    auto desc = StaticTierController::Create(
                    {{40.0, 20}, {10.0, 20}})
                    .value();
    Rng child2 = rng.Fork();
    auto res2 = RunSimulation(config, rate, acceptance, desc, child2).value();
    ASSERT_TRUE(res2.finished);
    desc_w.Add(static_cast<double>(res2.worker_arrivals));
  }
  const double theory = 20.0 / 0.1 + 20.0 / 0.4;
  EXPECT_NEAR(asc_w.mean(), theory, 5.0 * asc_w.stderr_mean() + 2.0);
  EXPECT_NEAR(desc_w.mean(), theory, 5.0 * desc_w.stderr_mean() + 2.0);
}

TEST(RunSimulationTest, GroupSizeBundlesTasks) {
  auto rate = ConstantRate(500.0);
  LinearAcceptance acceptance;
  FixedOfferController ctl(Offer{30.0, 7});
  Rng rng(17);
  SimulatorConfig config = BaseConfig(100);
  auto result = RunSimulation(config, rate, acceptance, ctl, rng).value();
  ASSERT_TRUE(result.finished);
  for (const auto& ev : result.events) {
    EXPECT_LE(ev.tasks, 7);
    EXPECT_EQ(ev.group_size, 7);
  }
  // All full groups except possibly the tail: 100 = 14 * 7 + 2.
  int full = 0, partial = 0;
  for (const auto& ev : result.events) {
    (ev.tasks == 7 ? full : partial) += 1;
  }
  EXPECT_EQ(full, 14);
  EXPECT_EQ(partial, 1);
}

TEST(RunSimulationTest, ServiceTimeDelaysCompletion) {
  auto rate = ConstantRate(500.0);
  LinearAcceptance acceptance;
  SimulatorConfig config = BaseConfig(50, 10.0);
  config.service_minutes_per_task = 30.0;  // half hour per task
  FixedOfferController ctl(Offer{50.0, 1});
  Rng rng(19);
  auto result = RunSimulation(config, rate, acceptance, ctl, rng).value();
  for (const auto& ev : result.events) {
    // Completion strictly after assignment (which is within the horizon).
    EXPECT_GE(ev.time_hours, 0.5);
  }
}

TEST(RunSimulationTest, RetentionIncreasesHitsPerWorker) {
  auto rate = ConstantRate(200.0, 24.0);
  LinearAcceptance acceptance;
  SimulatorConfig sticky = BaseConfig(2000, 40.0);
  sticky.retention.max_rate = 0.8;
  sticky.retention.half_price_cents = 5.0;
  FixedOfferController ctl(Offer{50.0, 1});
  Rng rng(23);
  auto result = RunSimulation(sticky, rate, acceptance, ctl, rng).value();
  stats::RunningStats hits;
  for (const auto& w : result.workers) hits.Add(static_cast<double>(w.hits));
  // rho(50) = 0.8 * 50/55 ~ 0.727 => mean session length ~ 1/(1-rho) ~ 3.7.
  EXPECT_GT(hits.mean(), 2.5);
  EXPECT_LT(hits.mean(), 5.0);
}

TEST(RunSimulationTest, RetentionGrowsWithPrice) {
  // Fig. 15's qualitative shape: higher price => more HITs per worker.
  auto rate = ConstantRate(200.0, 24.0);
  LinearAcceptance acceptance;
  Rng rng(29);
  double means[2] = {0.0, 0.0};
  const double prices[2] = {10.0, 80.0};
  for (int i = 0; i < 2; ++i) {
    SimulatorConfig config = BaseConfig(3000, 48.0);
    config.retention.max_rate = 0.85;
    config.retention.half_price_cents = 20.0;
    FixedOfferController ctl(Offer{prices[i], 1});
    Rng child = rng.Fork();
    auto result = RunSimulation(config, rate, acceptance, ctl, child).value();
    stats::RunningStats hits;
    for (const auto& w : result.workers) hits.Add(static_cast<double>(w.hits));
    means[i] = hits.mean();
  }
  EXPECT_GT(means[1], means[0] * 1.5);
}

TEST(RunSimulationTest, AccuracyModelRecordsAnswers) {
  auto rate = ConstantRate(500.0);
  LinearAcceptance acceptance;
  SimulatorConfig config = BaseConfig(500, 20.0);
  config.accuracy.enabled = true;
  config.accuracy.beta_alpha = 30.0;
  config.accuracy.beta_beta = 3.0;
  FixedOfferController ctl(Offer{40.0, 5});
  Rng rng(31);
  auto result = RunSimulation(config, rate, acceptance, ctl, rng).value();
  ASSERT_TRUE(result.finished);
  int64_t total_correct = 0, total_tasks = 0;
  for (const auto& w : result.workers) {
    EXPECT_GE(w.correct, 0);
    EXPECT_LE(w.correct, w.tasks);
    EXPECT_GT(w.true_accuracy, 0.0);
    EXPECT_LT(w.true_accuracy, 1.0);
    total_correct += w.correct;
    total_tasks += w.tasks;
  }
  EXPECT_EQ(total_tasks, 500);
  // Beta(30, 3) mean ~ 0.909.
  EXPECT_NEAR(static_cast<double>(total_correct) / total_tasks, 0.909, 0.05);
}

TEST(RunSimulationTest, CompletionsPerBucket) {
  auto rate = ConstantRate(500.0);
  LinearAcceptance acceptance;
  FixedOfferController ctl(Offer{30.0, 1});
  Rng rng(37);
  auto result = RunSimulation(BaseConfig(), rate, acceptance, ctl, rng).value();
  auto buckets = result.CompletionsPerBucket(1.0, 10.0).value();
  ASSERT_EQ(buckets.size(), 10u);
  int64_t total = 0;
  for (int64_t b : buckets) total += b;
  EXPECT_EQ(total, result.tasks_completed_by_horizon);
  EXPECT_TRUE(result.CompletionsPerBucket(0.0, 10.0).status().IsInvalidArgument());
}

TEST(RunSimulationTest, InvalidControllerOfferSurfaces) {
  class BadController final : public PricingController {
   public:
    Result<OfferSheet> Decide(const DecisionRequest&) override {
      return OfferSheet::Single(Offer{-5.0, 1});
    }
  };
  auto rate = ConstantRate(500.0);
  LinearAcceptance acceptance;
  BadController bad;
  Rng rng(41);
  EXPECT_TRUE(RunSimulation(BaseConfig(), rate, acceptance, bad, rng)
                  .status()
                  .IsInvalidArgument());
}

TEST(RunReplicatesTest, ProducesIndependentRuns) {
  auto rate = ConstantRate(500.0);
  LinearAcceptance acceptance;
  Rng rng(43);
  auto results = RunReplicates(
                     BaseConfig(), rate, acceptance,
                     [] { return std::make_unique<FixedOfferController>(Offer{15.0, 1}); },
                     20, rng)
                     .value();
  ASSERT_EQ(results.size(), 20u);
  // Worker-arrival counts vary across independent replicates even when
  // every replicate finishes the batch.
  bool any_diff = false;
  for (size_t i = 1; i < results.size(); ++i) {
    if (results[i].worker_arrivals != results[0].worker_arrivals) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
  Rng bad(1);
  EXPECT_TRUE(RunReplicates(
                  BaseConfig(), rate, acceptance,
                  [] { return std::make_unique<FixedOfferController>(Offer{15.0, 1}); },
                  0, bad)
                  .status()
                  .IsInvalidArgument());
}

TEST(RunSimulationTest, ZeroRateMarketAssignsNothing) {
  auto rate = ConstantRate(0.0);
  LinearAcceptance acceptance;
  FixedOfferController ctl(Offer{50.0, 1});
  Rng rng(53);
  auto result = RunSimulation(BaseConfig(), rate, acceptance, ctl, rng).value();
  EXPECT_EQ(result.tasks_assigned, 0);
  EXPECT_EQ(result.worker_arrivals, 0);
  EXPECT_FALSE(result.finished);
  EXPECT_DOUBLE_EQ(result.completion_time_hours, 10.0);  // the horizon
}

TEST(RunSimulationTest, FineBucketRateStreamsCorrectly) {
  // A rate function with many small buckets exercises the streaming loop's
  // bucket walk; totals must match the coarse-bucket equivalent.
  std::vector<double> fine(240, 500.0);  // 240 x 6-minute buckets = 24 h
  auto fine_rate = arrival::PiecewiseConstantRate::Create(fine, 0.1).value();
  auto coarse_rate = ConstantRate(500.0);
  LinearAcceptance acceptance;
  stats::RunningStats fine_n, coarse_n;
  Rng rng(59);
  for (int rep = 0; rep < 60; ++rep) {
    FixedOfferController c1(Offer{2.0, 1});
    Rng r1 = rng.Fork();
    fine_n.Add(static_cast<double>(
        RunSimulation(BaseConfig(1000, 10.0), fine_rate, acceptance, c1, r1)
            .value()
            .tasks_assigned));
    FixedOfferController c2(Offer{2.0, 1});
    Rng r2 = rng.Fork();
    coarse_n.Add(static_cast<double>(
        RunSimulation(BaseConfig(1000, 10.0), coarse_rate, acceptance, c2, r2)
            .value()
            .tasks_assigned));
  }
  EXPECT_NEAR(fine_n.mean(), coarse_n.mean(),
              5.0 * (fine_n.stderr_mean() + coarse_n.stderr_mean()) + 1.0);
}

TEST(RunSimulationTest, EarlyExitDoesNotScanFullHorizon) {
  // A 10,000-hour horizon with an instantly-completing batch must return
  // quickly (the streaming loop stops at completion); this is a liveness
  // guard rather than a timing assertion.
  auto rate = ConstantRate(5000.0, 24.0);
  LinearAcceptance acceptance;
  SimulatorConfig config = BaseConfig(10, 10000.0);
  FixedOfferController ctl(Offer{100.0, 1});
  Rng rng(61);
  auto result = RunSimulation(config, rate, acceptance, ctl, rng).value();
  EXPECT_TRUE(result.finished);
  EXPECT_LT(result.completion_time_hours, 1.0);
}

// The controller tests consult through the sheet surface (the test_util
// SingleOffer helper builds the request and unwraps the lone offer).
TEST(ControllerTest, ScheduleControllerPlaysIntervals) {
  auto ctl =
      ScheduleController::Create({{10.0, 1}, {20.0, 1}, {30.0, 1}}, 2.0)
          .value();
  EXPECT_DOUBLE_EQ(test_util::SingleOffer(ctl, 0.0, 5).value().per_task_reward_cents,
                   10.0);
  EXPECT_DOUBLE_EQ(test_util::SingleOffer(ctl, 1.99, 5).value().per_task_reward_cents,
                   10.0);
  EXPECT_DOUBLE_EQ(test_util::SingleOffer(ctl, 2.0, 5).value().per_task_reward_cents,
                   20.0);
  EXPECT_DOUBLE_EQ(test_util::SingleOffer(ctl, 4.5, 5).value().per_task_reward_cents,
                   30.0);
  // Past the schedule end the last offer persists.
  EXPECT_DOUBLE_EQ(test_util::SingleOffer(ctl, 99.0, 5).value().per_task_reward_cents,
                   30.0);
  EXPECT_TRUE(test_util::SingleOffer(ctl, -1.0, 5).status().IsInvalidArgument());
  EXPECT_TRUE(ScheduleController::Create({}, 1.0).status().IsInvalidArgument());
  EXPECT_TRUE(
      ScheduleController::Create({{10.0, 1}}, 0.0).status().IsInvalidArgument());
  EXPECT_TRUE(
      ScheduleController::Create({{10.0, 0}}, 1.0).status().IsInvalidArgument());
}

TEST(ControllerTest, StaticTierHighestFirst) {
  auto ctl = StaticTierController::Create({{5.0, 3}, {9.0, 2}}).value();
  // 5 tasks total; highest tier (9.0, 2 tasks) first.
  EXPECT_DOUBLE_EQ(test_util::SingleOffer(ctl, 0.0, 5).value().per_task_reward_cents,
                   9.0);
  EXPECT_DOUBLE_EQ(test_util::SingleOffer(ctl, 0.0, 4).value().per_task_reward_cents,
                   9.0);
  EXPECT_DOUBLE_EQ(test_util::SingleOffer(ctl, 0.0, 3).value().per_task_reward_cents,
                   5.0);
  EXPECT_DOUBLE_EQ(test_util::SingleOffer(ctl, 0.0, 1).value().per_task_reward_cents,
                   5.0);
  EXPECT_TRUE(test_util::SingleOffer(ctl, 0.0, 0).status().IsOutOfRange());
  EXPECT_TRUE(test_util::SingleOffer(ctl, 0.0, 6).status().IsOutOfRange());
  EXPECT_TRUE(StaticTierController::Create({}).status().IsInvalidArgument());
  EXPECT_TRUE(
      StaticTierController::Create({{5.0, 0}}).status().IsInvalidArgument());
}

TEST(ControllerTest, DecideAnswersSingleOfferSheets) {
  FixedOfferController ctl(Offer{12.5, 3});
  const DecisionRequest request = DecisionRequest::Single(1.0, 7);
  EXPECT_EQ(request.num_types(), 1);
  EXPECT_EQ(request.total_remaining(), 7);
  EXPECT_DOUBLE_EQ(request.campaign_hours, 1.0);
  const OfferSheet sheet = ctl.Decide(request).value();
  ASSERT_EQ(sheet.num_types(), 1);
  EXPECT_DOUBLE_EQ(sheet.offers[0].per_task_reward_cents, 12.5);
  EXPECT_EQ(sheet.offers[0].group_size, 3);
}

TEST(ControllerTest, SingleTypeControllersRejectMultiTypeRequests) {
  FixedOfferController ctl(Offer{10.0, 1});
  DecisionRequest request;
  request.remaining = {5, 5};
  EXPECT_TRUE(ctl.Decide(request).status().IsInvalidArgument());
}

TEST(RunSimulationTest, RejectsMultiTypeControllers) {
  // A controller that prices several types cannot drive the single-type
  // campaign loop; the session rejects it at creation.
  class TwoTypes final : public PricingController {
   public:
    int num_types() const override { return 2; }
    Result<OfferSheet> Decide(const DecisionRequest&) override {
      OfferSheet sheet;
      sheet.offers = {Offer{5.0, 1}, Offer{6.0, 1}};
      return sheet;
    }
  };
  auto rate = ConstantRate(500.0);
  LinearAcceptance acceptance;
  TwoTypes two;
  Rng rng(67);
  EXPECT_TRUE(RunSimulation(BaseConfig(), rate, acceptance, two, rng)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(test_util::SingleOffer(two, 0.0, 5).status().IsFailedPrecondition());
}

}  // namespace
}  // namespace crowdprice::market
