// Kernel-layer tests: PmfArena layout/dedup invariants, KernelRegistry
// dispatch, and the backend parity suite -- every registered backend must
// agree with "scalar" to ~1e-12 with identical argmins on randomized
// layers, and must agree with ITSELF bit-for-bit between the dense
// (ScanLayer) and bracketed (ScanState) entry points, the contract that
// makes Algorithm 1 and Algorithm 2 produce identical plans per backend.

#include "kernel/layer_scan.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "kernel/pmf_arena.h"
#include "stats/poisson.h"
#include "util/rng.h"

namespace crowdprice::kernel {
namespace {

bool Aligned64(const double* p) {
  return reinterpret_cast<uintptr_t>(p) % 64 == 0;
}

TEST(PmfArenaTest, PacksAlignedTablesWithPrefixSums) {
  const std::vector<double> rates = {0.0, 5.0, 50.0, 500.0};
  auto arena = PmfArena::Build(rates, 1e-9);
  ASSERT_TRUE(arena.ok()) << arena.status();
  ASSERT_EQ(arena->num_tables(), rates.size());
  for (size_t i = 0; i < rates.size(); ++i) {
    const PmfView v = arena->View(arena->TableOf(i));
    EXPECT_TRUE(Aligned64(v.pmf));
    EXPECT_TRUE(Aligned64(v.prefix_mass));
    EXPECT_TRUE(Aligned64(v.prefix_weighted));
    auto tp = stats::MakeTruncatedPoisson(rates[i], 1e-9);
    ASSERT_TRUE(tp.ok());
    ASSERT_EQ(v.len, static_cast<int>(tp->pmf.size()));
    double mass = 0.0, weighted = 0.0;
    EXPECT_EQ(v.prefix_mass[0], 0.0);
    EXPECT_EQ(v.prefix_weighted[0], 0.0);
    for (int k = 0; k < v.len; ++k) {
      // The packed pmf is the canonical table, bit for bit.
      EXPECT_EQ(v.pmf[k], tp->pmf[static_cast<size_t>(k)]);
      mass += v.pmf[k];
      weighted += static_cast<double>(k) * v.pmf[k];
      EXPECT_EQ(v.prefix_mass[k + 1], mass);
      EXPECT_EQ(v.prefix_weighted[k + 1], weighted);
    }
    EXPECT_EQ(v.tail_mass, tp->tail_mass);
  }
  EXPECT_GT(arena->bytes(), 0u);
}

TEST(PmfArenaTest, DeduplicatesQuantizedRates) {
  const double rate = 610.0 * 0.731264987;
  const std::vector<double> rates = {rate, rate * (1.0 + 1e-15), rate, 42.0};
  auto arena = PmfArena::Build(rates, 1e-9);
  ASSERT_TRUE(arena.ok()) << arena.status();
  EXPECT_EQ(arena->num_tables(), 2u);
  EXPECT_EQ(arena->tables_built(), 2);
  EXPECT_EQ(arena->table_reuses(), 2);
  EXPECT_EQ(arena->TableOf(0), arena->TableOf(1));
  EXPECT_EQ(arena->TableOf(0), arena->TableOf(2));
  EXPECT_NE(arena->TableOf(0), arena->TableOf(3));
}

TEST(PmfArenaTest, CountsMatchTheSolversCachePattern) {
  // 21 actions x 12 intervals at a constant trace: one build per action,
  // the other 11 layers reuse -- the figures DeadlinePlan reports.
  std::vector<double> rates;
  for (int t = 0; t < 12; ++t) {
    for (int a = 0; a <= 20; ++a) {
      rates.push_back(90.0 * (static_cast<double>(a) / 40.0));
    }
  }
  auto arena = PmfArena::Build(rates, 1e-9);
  ASSERT_TRUE(arena.ok()) << arena.status();
  EXPECT_EQ(arena->tables_built(), 21);
  EXPECT_EQ(arena->table_reuses(), 21 * 11);
}

TEST(PmfArenaTest, RejectsInvalidRates) {
  EXPECT_TRUE(PmfArena::Build({1.0, -2.0}, 1e-9).status().IsInvalidArgument());
  EXPECT_TRUE(
      PmfArena::Build({std::nan("")}, 1e-9).status().IsInvalidArgument());
  EXPECT_TRUE(PmfArena::Build({1.0}, 1.5).status().IsInvalidArgument());
}

TEST(KernelRegistryTest, ScalarIsAlwaysAvailable) {
  const auto names = KernelRegistry::Global().Available();
  ASSERT_FALSE(names.empty());
  bool has_scalar = false;
  for (const auto& n : names) has_scalar |= n == "scalar";
  EXPECT_TRUE(has_scalar);
  auto scalar = KernelRegistry::Global().Resolve("scalar");
  ASSERT_TRUE(scalar.ok());
  EXPECT_STREQ((*scalar)->name(), "scalar");
  // Empty resolves to something; unknown names surface loudly.
  EXPECT_TRUE(KernelRegistry::Global().Resolve("").ok());
  EXPECT_TRUE(KernelRegistry::Global().Resolve("vliw9000").status().IsNotFound());
}

// ---------------------------------------------------------------------------
// Parity suite: randomized layers.
// ---------------------------------------------------------------------------

struct RandomLayer {
  PmfArena arena;
  std::vector<int> table_ids;
  std::vector<double> costs;
  std::vector<int> bundles;
  std::vector<double> opt_next;
  int num_tasks = 0;

  LayerTables Tables() const {
    LayerTables layer;
    layer.arena = &arena;
    layer.tables = table_ids.data();
    layer.costs = costs.data();
    layer.bundles = bundles.data();
    layer.num_actions = static_cast<int>(costs.size());
    return layer;
  }
};

// A layer whose table lengths straddle num_tasks, so the scans cross the
// growing/mixed/saturated regimes the SIMD backends special-case.
RandomLayer MakeRandomLayer(Rng& rng, bool bundled) {
  const int num_actions = 3 + static_cast<int>(rng.NextDouble() * 12.0);
  const int num_tasks = 40 + static_cast<int>(rng.NextDouble() * 140.0);
  std::vector<double> rates;
  std::vector<double> costs;
  std::vector<int> bundles;
  const double lambda = 2.0 + rng.NextDouble() * 2.5 * num_tasks;
  for (int a = 0; a < num_actions; ++a) {
    const double accept =
        (a + 1) / static_cast<double>(num_actions) * rng.NextDouble();
    rates.push_back(lambda * accept);
    costs.push_back(rng.NextDouble() * 40.0);
    bundles.push_back(
        bundled ? 1 + static_cast<int>(rng.NextDouble() * 4.0) : 1);
  }
  auto arena = PmfArena::Build(rates, 1e-9);
  EXPECT_TRUE(arena.ok()) << arena.status();
  RandomLayer out{std::move(arena).value(), {}, std::move(costs),
                  std::move(bundles), {}, num_tasks};
  for (size_t i = 0; i < rates.size(); ++i) {
    out.table_ids.push_back(out.arena.TableOf(i));
  }
  for (int n = 0; n <= num_tasks; ++n) {
    out.opt_next.push_back(rng.NextDouble() * 500.0);
  }
  out.opt_next[0] = 0.0;
  return out;
}

std::vector<const LayerScanKernel*> AllBackends() {
  std::vector<const LayerScanKernel*> out;
  for (const auto& name : KernelRegistry::Global().Available()) {
    out.push_back(KernelRegistry::Global().Resolve(name).value());
  }
  return out;
}

void ExpectClose(double got, double want, const char* what, int i) {
  const double tol = 1e-12 * std::max(1.0, std::abs(want));
  EXPECT_NEAR(got, want, tol) << what << " at " << i;
}

TEST(KernelParityTest, ScanLayerMatchesScalarOnRandomLayers) {
  const auto scalar = KernelRegistry::Global().Resolve("scalar").value();
  for (const bool bundled : {false, true}) {
    Rng rng(bundled ? 777 : 20260726);
    for (int rep = 0; rep < 12; ++rep) {
      const RandomLayer layer = MakeRandomLayer(rng, bundled);
      const LayerTables lt = layer.Tables();
      const int n = layer.num_tasks;
      std::vector<double> want_opt(n + 1, -1.0);
      std::vector<int32_t> want_act(n + 1, -7);
      scalar->ScanLayer(lt, 1, n, layer.opt_next.data(), want_opt.data(),
                        want_act.data());
      for (const LayerScanKernel* kern : AllBackends()) {
        SCOPED_TRACE(kern->name());
        std::vector<double> opt(n + 1, -1.0);
        std::vector<int32_t> act(n + 1, -7);
        kern->ScanLayer(lt, 1, n, layer.opt_next.data(), opt.data(),
                        act.data());
        for (int i = 1; i <= n; ++i) {
          ExpectClose(opt[i], want_opt[i], "opt", i);
          // Identical argmin: random costs make exact ties vanishingly
          // unlikely, so any drift here is a real indexing bug.
          ASSERT_EQ(act[i], want_act[i]) << "argmin at n=" << i;
        }
      }
    }
  }
}

TEST(KernelParityTest, ScanStateIsBitIdenticalToOwnScanLayer) {
  // The within-backend contract: dense and bracketed scans share their
  // arithmetic exactly, whatever group/remainder split ScanLayer used.
  Rng rng(4242);
  for (int rep = 0; rep < 8; ++rep) {
    const RandomLayer layer = MakeRandomLayer(rng, false);
    const LayerTables lt = layer.Tables();
    const int n = layer.num_tasks;
    for (const LayerScanKernel* kern : AllBackends()) {
      SCOPED_TRACE(kern->name());
      std::vector<double> opt(n + 1, 0.0);
      std::vector<int32_t> act(n + 1, -1);
      kern->ScanLayer(lt, 1, n, layer.opt_next.data(), opt.data(), act.data());
      for (int i = 1; i <= n; ++i) {
        const BestAction best = kern->ScanState(lt, i, 0, lt.num_actions - 1,
                                                layer.opt_next.data());
        ASSERT_EQ(best.index, act[i]) << "n=" << i;
        ASSERT_EQ(best.cost, opt[i]) << "n=" << i;  // bitwise
      }
      // Bracketed sub-ranges agree with a dense rescan of the same range.
      const BestAction hi_half = kern->ScanState(
          lt, n / 2, lt.num_actions / 2, lt.num_actions - 1,
          layer.opt_next.data());
      EXPECT_GE(hi_half.index, lt.num_actions / 2);
    }
  }
}

TEST(KernelParityTest, CollapseCorrelateMatchesScalar) {
  const auto scalar = KernelRegistry::Global().Resolve("scalar").value();
  Rng rng(99);
  for (int rep = 0; rep < 10; ++rep) {
    const RandomLayer layer = MakeRandomLayer(rng, false);
    const PmfView v = layer.arena.View(layer.table_ids[0]);
    const int m = layer.num_tasks;
    std::vector<double> want(m + 1, -1.0);
    scalar->CollapseCorrelate(v, layer.opt_next.data(), m, want.data());
    // Conservation sanity: with x == 1 everywhere the collapsed transition
    // is a probability mixture, so y == 1 everywhere.
    std::vector<double> ones(m + 1, 1.0);
    std::vector<double> mixed(m + 1, 0.0);
    scalar->CollapseCorrelate(v, ones.data(), m, mixed.data());
    for (int i = 0; i <= m; ++i) {
      EXPECT_NEAR(mixed[i], 1.0, 1e-9) << i;
    }
    for (const LayerScanKernel* kern : AllBackends()) {
      SCOPED_TRACE(kern->name());
      std::vector<double> got(m + 1, -1.0);
      kern->CollapseCorrelate(v, layer.opt_next.data(), m, got.data());
      for (int i = 0; i <= m; ++i) {
        ExpectClose(got[i], want[i], "collapse", i);
      }
    }
  }
}

TEST(KernelParityTest, AxpyAndMinCombineMatchScalar) {
  Rng rng(55);
  const int m = 203;  // odd length exercises every remainder path
  std::vector<double> x(m), base(m), addend(m);
  for (int i = 0; i < m; ++i) {
    x[i] = rng.NextDouble() * 10.0 - 5.0;
    base[i] = rng.NextDouble() * 100.0;
    addend[i] = rng.NextDouble() * 10.0;
  }
  const auto scalar = KernelRegistry::Global().Resolve("scalar").value();
  std::vector<double> want_y(m, 1.5), want_best(m, 90.0);
  std::vector<int32_t> want_arg(m, -1);
  scalar->Axpy(0.37, x.data(), want_y.data(), m);
  scalar->MinCombine(base.data(), addend.data(), -55.0, 7, m,
                     want_best.data(), want_arg.data());
  for (const LayerScanKernel* kern : AllBackends()) {
    SCOPED_TRACE(kern->name());
    std::vector<double> y(m, 1.5), best(m, 90.0);
    std::vector<int32_t> arg(m, -1);
    kern->Axpy(0.37, x.data(), y.data(), m);
    kern->MinCombine(base.data(), addend.data(), -55.0, 7, m, best.data(),
                     arg.data());
    for (int i = 0; i < m; ++i) {
      ExpectClose(y[i], want_y[i], "axpy", i);
      // MinCombine does no reassociation, so it is exact across backends.
      ASSERT_EQ(best[i], want_best[i]) << i;
      ASSERT_EQ(arg[i], want_arg[i]) << i;
    }
  }
}

TEST(KernelParityTest, MinCombineKeepsEarlierArgOnTies) {
  for (const LayerScanKernel* kern : AllBackends()) {
    SCOPED_TRACE(kern->name());
    std::vector<double> base = {1.0, 2.0, 3.0, 4.0, 5.0};
    std::vector<double> zero(5, 0.0);
    std::vector<double> best = {1.0, 9.0, 3.0, 9.0, 5.0};
    std::vector<int32_t> arg(5, 1);
    kern->MinCombine(base.data(), zero.data(), 0.0, 2, 5, best.data(),
                     arg.data());
    // Equal costs must NOT switch to the later arg.
    EXPECT_EQ(arg[0], 1);
    EXPECT_EQ(arg[2], 1);
    EXPECT_EQ(arg[4], 1);
    EXPECT_EQ(arg[1], 2);
    EXPECT_EQ(arg[3], 2);
  }
}

}  // namespace
}  // namespace crowdprice::kernel
