// CampaignRouter tests: placement is deterministic and minimally
// disruptive; routed decides are bit-identical to direct backend decides
// through the full client -> router server -> backend stack; the control
// plane routes by owner; a killed backend fails over to clean Unavailable
// responses (never a crash or hang) and health probes mark it down; and
// the frame-layer auth handshake gates both sides. The TSan CI job runs
// this binary to certify the fan-out and health lanes are race-free.

#include "router/router.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "choice/acceptance.h"
#include "engine/engine.h"
#include "net/client.h"
#include "net/server.h"
#include "pricing/fixed_price.h"
#include "router/placement.h"
#include "serving/campaign_shard_map.h"

namespace crowdprice::router {
namespace {

using net::PricingClient;
using net::PricingServer;
using net::ServerOptions;
using serving::CampaignId;
using serving::CampaignLimits;
using serving::CampaignState;
using serving::ControlOp;
using serving::DecideRequest;
using serving::DecideResponse;

engine::PolicyArtifact SmallDeadlineArtifact() {
  engine::DeadlineDpSpec spec;
  spec.problem.num_tasks = 20;
  spec.problem.num_intervals = 8;
  spec.problem.penalty_cents = 150.0;
  spec.interval_lambdas.assign(8, 60.0);
  spec.actions = pricing::ActionSet::FromPriceGrid(
                     30, choice::LogitAcceptance::Paper2014())
                     .value();
  return engine::Engine::Solve(spec).value();
}

CampaignLimits SmallLimits() {
  CampaignLimits limits;
  limits.total_tasks = 20;
  limits.deadline_hours = 8.0;
  return limits;
}

/// One live backend: a shard map fronted by a loopback PricingServer.
struct Backend {
  std::unique_ptr<serving::CampaignShardMap> map;
  std::unique_ptr<PricingServer> server;
  std::string name;  ///< "127.0.0.1:<port>" -- the placement name.

  static Backend Start(const std::string& auth_token = "") {
    Backend backend;
    backend.map = std::make_unique<serving::CampaignShardMap>(
        serving::CampaignShardMap::Create(2).value());
    ServerOptions options;
    options.port = 0;
    options.num_workers = 2;
    options.auth_token = auth_token;
    backend.server = std::make_unique<PricingServer>(
        PricingServer::Create(backend.map.get(), options).value());
    EXPECT_TRUE(backend.server->Start().ok());
    backend.name = "127.0.0.1:" + std::to_string(backend.server->port());
    return backend;
  }
};

/// Pool options tuned for tests: no background probes (ProbeNow drives
/// them), one quick retry, tiny backoff so failover asserts run fast.
BackendPoolOptions TestPoolOptions() {
  BackendPoolOptions options;
  options.probe_interval_ms = 0;
  options.down_after_failures = 2;
  options.max_attempts = 2;
  options.backoff_initial_ms = 1;
  options.backoff_max_ms = 4;
  return options;
}

TEST(PlacementTableTest, DeterministicAndMinimallyDisruptive) {
  const std::vector<std::string> three = {"a:1", "b:1", "c:1"};
  const PlacementTable table = PlacementTable::Create(three, 1).value();
  // Same inputs, same owners -- regardless of list order.
  const PlacementTable shuffled =
      PlacementTable::Create({"c:1", "a:1", "b:1"}, 2).value();
  std::map<std::string, int> owners;
  for (CampaignId id = 1; id <= 1000; ++id) {
    const std::string owner = table.OwnerOf(id).value();
    EXPECT_EQ(owner, shuffled.OwnerOf(id).value()) << "id " << id;
    ++owners[owner];
  }
  // Every backend owns a healthy share (rendezvous spreads uniformly).
  ASSERT_EQ(owners.size(), 3u);
  for (const auto& [name, count] : owners) {
    EXPECT_GT(count, 200) << name;
    EXPECT_LT(count, 500) << name;
  }

  // Removing one backend moves exactly its campaigns; nobody else shifts.
  const PlacementTable without_c =
      PlacementTable::Create({"a:1", "b:1"}, 3).value();
  for (CampaignId id = 1; id <= 1000; ++id) {
    const std::string before = table.OwnerOf(id).value();
    const std::string after = without_c.OwnerOf(id).value();
    if (before != "c:1") {
      EXPECT_EQ(after, before) << "id " << id;
    } else {
      EXPECT_NE(after, "c:1");
    }
  }
  // Adding one moves only what the newcomer wins.
  const PlacementTable with_d =
      PlacementTable::Create({"a:1", "b:1", "c:1", "d:1"}, 4).value();
  for (CampaignId id = 1; id <= 1000; ++id) {
    const std::string after = with_d.OwnerOf(id).value();
    if (after != "d:1") {
      EXPECT_EQ(after, table.OwnerOf(id).value());
    }
  }

  // Validation: empty names, duplicates, empty-table lookups.
  EXPECT_TRUE(PlacementTable::Create({""}, 1).status().IsInvalidArgument());
  EXPECT_TRUE(
      PlacementTable::Create({"a:1", "a:1"}, 1).status().IsInvalidArgument());
  EXPECT_TRUE(PlacementTable().OwnerOf(1).status().IsFailedPrecondition());
}

TEST(CampaignRouterTest, RoutedDecidesAreBitIdenticalToDirectDecides) {
  Backend b0 = Backend::Start();
  Backend b1 = Backend::Start();
  Backend b2 = Backend::Start();
  std::vector<Backend*> backends = {&b0, &b1, &b2};

  RouterOptions router_options;
  router_options.pool = TestPoolOptions();
  auto router = CampaignRouter::Create({b0.name, b1.name, b2.name},
                                       router_options);
  ASSERT_TRUE(router.ok()) << router.status();

  // Front the router with its own server; clients speak to it exactly as
  // they would to a single backend.
  ServerOptions options;
  options.port = 0;
  options.num_workers = 2;
  auto front = PricingServer::Create(&router.value(), options);
  ASSERT_TRUE(front.ok());
  ASSERT_TRUE(front->Start().ok());
  auto client = PricingClient::Connect("127.0.0.1", front->port());
  ASSERT_TRUE(client.ok());

  const auto artifact =
      std::make_shared<const engine::PolicyArtifact>(SmallDeadlineArtifact());
  std::vector<CampaignId> ids;
  for (int i = 0; i < 30; ++i) {
    const auto id = client->AdmitShared(artifact, SmallLimits());
    ASSERT_TRUE(id.ok()) << id.status();
    ids.push_back(*id);
  }
  EXPECT_EQ(router->live_campaigns(), 30u);

  // The placement spread the fleet across every backend.
  const PlacementTable placement = router->placement();
  size_t backends_used = 0;
  for (Backend* backend : backends) {
    if (backend->map->live_campaigns() > 0) ++backends_used;
  }
  EXPECT_EQ(backends_used, 3u);

  // A mixed batch (interleaved owners + one unknown id) answers through
  // the router bit-identically to each owning map, in request order.
  std::vector<DecideRequest> batch;
  for (size_t i = 0; i < ids.size(); ++i) {
    batch.push_back(DecideRequest::Single(
        ids[i], (static_cast<double>(i) / 4.0), 1 + static_cast<int>(i) % 20));
  }
  batch.push_back(DecideRequest::Single(999999, 0.0, 5));
  const auto responses = client->DecideBatch(batch);
  ASSERT_TRUE(responses.ok()) << responses.status();
  ASSERT_EQ(responses->size(), batch.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_TRUE((*responses)[i].status.ok()) << (*responses)[i].status;
    const std::string owner = placement.OwnerOf(ids[i]).value();
    serving::CampaignShardMap* map = nullptr;
    for (Backend* backend : backends) {
      if (backend->name == owner) map = backend->map.get();
    }
    ASSERT_NE(map, nullptr);
    const auto direct = map->Decide(ids[i], batch[i].request);
    ASSERT_TRUE(direct.ok());
    ASSERT_EQ((*responses)[i].sheet.offers.size(), direct->offers.size());
    for (size_t o = 0; o < direct->offers.size(); ++o) {
      EXPECT_EQ((*responses)[i].sheet.offers[o].per_task_reward_cents,
                direct->offers[o].per_task_reward_cents);
      EXPECT_EQ((*responses)[i].sheet.offers[o].group_size,
                direct->offers[o].group_size);
    }
  }
  EXPECT_TRUE(responses->back().status.IsNotFound());

  ASSERT_TRUE(front->Stop().ok());
}

TEST(CampaignRouterTest, ControlPlaneRoutesByOwner) {
  Backend b0 = Backend::Start();
  Backend b1 = Backend::Start();
  RouterOptions router_options;
  router_options.pool = TestPoolOptions();
  auto router = CampaignRouter::Create({b0.name, b1.name}, router_options);
  ASSERT_TRUE(router.ok());

  const auto artifact =
      std::make_shared<const engine::PolicyArtifact>(SmallDeadlineArtifact());
  const auto admitted =
      router->Apply(ControlOp::AdmitShared(artifact, SmallLimits()));
  ASSERT_TRUE(admitted.ok());
  const CampaignId id = admitted->id;

  // A hot swap through the router changes the owning backend's answers.
  pricing::FixedPriceSolution fixed;
  fixed.price_cents = 77;
  const auto swap_artifact = std::make_shared<const engine::PolicyArtifact>(
      engine::PolicyArtifact(fixed));
  ASSERT_TRUE(
      router->Apply(ControlOp::SwapArtifactShared(id, swap_artifact)).ok());
  const auto swapped =
      router->DecideBatch({DecideRequest::Single(id, 1.0, 5)});
  ASSERT_TRUE(swapped[0].status.ok());
  EXPECT_DOUBLE_EQ(swapped[0].sheet.offers[0].per_task_reward_cents, 77.0);

  // Exports route to the owner and carry the swapped policy.
  const auto exported = router->ExportCampaign(id);
  ASSERT_TRUE(exported.ok()) << exported.status();
  EXPECT_EQ(exported->id, id);
  EXPECT_EQ(exported->artifact->Serialize().value(),
            swap_artifact->Serialize().value());

  // Ticks retire through the router; the live set tracks it.
  EXPECT_EQ(router->Apply(ControlOp::Tick(id, 1.0, 0))->state,
            CampaignState::kRetiredCompleted);
  EXPECT_EQ(router->live_campaigns(), 0u);

  // Server-side verdicts come back with their codes intact.
  EXPECT_TRUE(router->Apply(ControlOp::Retire(id)).status().IsNotFound());
  EXPECT_TRUE(router->ExportCampaign(424242).status().IsNotFound());

  // Controller-backed admits are process-local by design.
  auto local = ControlOp::AdmitController(
      std::make_unique<market::FixedOfferController>(market::Offer{10.0, 1}),
      SmallLimits());
  EXPECT_TRUE(router->Apply(std::move(local)).status().IsInvalidArgument());
}

TEST(CampaignRouterTest, KilledBackendFailsOverToCleanUnavailable) {
  Backend b0 = Backend::Start();
  Backend b1 = Backend::Start();
  RouterOptions router_options;
  router_options.pool = TestPoolOptions();
  auto router = CampaignRouter::Create({b0.name, b1.name}, router_options);
  ASSERT_TRUE(router.ok());

  const auto artifact =
      std::make_shared<const engine::PolicyArtifact>(SmallDeadlineArtifact());
  std::vector<CampaignId> ids;
  for (int i = 0; i < 16; ++i) {
    ids.push_back(
        router->Apply(ControlOp::AdmitShared(artifact, SmallLimits()))->id);
  }
  const PlacementTable placement = router->placement();
  ASSERT_GT(b0.map->live_campaigns(), 0u);
  ASSERT_GT(b1.map->live_campaigns(), 0u);

  // Kill backend b1 mid-traffic.
  ASSERT_TRUE(b1.server->Stop().ok());

  std::vector<DecideRequest> batch;
  for (const CampaignId id : ids) {
    batch.push_back(DecideRequest::Single(id, 1.0, 5));
  }
  const std::vector<DecideResponse> responses = router->DecideBatch(batch);
  ASSERT_EQ(responses.size(), batch.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    const std::string owner = placement.OwnerOf(ids[i]).value();
    if (owner == b0.name) {
      EXPECT_TRUE(responses[i].status.ok()) << responses[i].status;
    } else {
      // The dead backend's requests answer Unavailable -- cleanly, per
      // request, with the rest of the batch unharmed.
      EXPECT_TRUE(responses[i].status.IsUnavailable())
          << responses[i].status;
    }
  }
  EXPECT_GT(router->stats().unavailable, 0u);

  // Control ops against the dead owner are Unavailable too, and the
  // router survives to serve the healthy backend.
  CampaignId dead_id = 0;
  for (const CampaignId id : ids) {
    if (placement.OwnerOf(id).value() == b1.name) dead_id = id;
  }
  ASSERT_NE(dead_id, 0u);
  EXPECT_TRUE(
      router->Apply(ControlOp::Tick(dead_id, 1.0, 5)).status().IsUnavailable());

  // Probes notice: after down_after_failures sweeps the backend is down
  // and subsequent calls fail fast without paying the dial.
  router->ProbeNow();
  router->ProbeNow();
  EXPECT_FALSE(router->stats().rebalances > 0);
  bool b1_down = false;
  for (const BackendHealth& health : router->Health()) {
    if (health.name == b1.name) b1_down = !health.up;
    if (health.name == b0.name) {
      EXPECT_TRUE(health.up);
    }
  }
  EXPECT_TRUE(b1_down);

  // A restarted backend on the same port is probed back up.
  ServerOptions revive;
  const uint16_t old_port = static_cast<uint16_t>(
      std::stoi(b1.name.substr(b1.name.rfind(':') + 1)));
  revive.port = old_port;
  revive.num_workers = 2;
  auto revived = PricingServer::Create(b1.map.get(), revive);
  ASSERT_TRUE(revived.ok());
  if (revived->Start().ok()) {  // Port may have been reclaimed by the OS.
    router->ProbeNow();
    for (const BackendHealth& health : router->Health()) {
      if (health.name == b1.name) {
        EXPECT_TRUE(health.up);
      }
    }
    ASSERT_TRUE(revived->Stop().ok());
  }
}

TEST(CampaignRouterTest, ProbeThreadMarksDownWithinInterval) {
  Backend b0 = Backend::Start();
  RouterOptions router_options;
  router_options.pool = TestPoolOptions();
  router_options.pool.probe_interval_ms = 20;
  router_options.pool.down_after_failures = 2;
  auto router = CampaignRouter::Create({b0.name}, router_options);
  ASSERT_TRUE(router.ok());

  ASSERT_TRUE(b0.server->Stop().ok());
  // Two probe misses at a 20ms cadence: well inside a second.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  bool down = false;
  while (!down && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    down = !router->Health()[0].up;
  }
  EXPECT_TRUE(down);
}

TEST(CampaignRouterTest, AuthGatesBothSidesOfTheRouter) {
  const std::string token = "fleet-secret";
  Backend b0 = Backend::Start(token);

  RouterOptions router_options;
  router_options.pool = TestPoolOptions();
  router_options.pool.client.auth_token = token;
  auto router = CampaignRouter::Create({b0.name}, router_options);
  ASSERT_TRUE(router.ok());

  ServerOptions options;
  options.port = 0;
  options.num_workers = 2;
  options.auth_token = token;
  auto front = PricingServer::Create(&router.value(), options);
  ASSERT_TRUE(front.ok());
  ASSERT_TRUE(front->Start().ok());

  // A tokenless client connects (the transport is fine) but every plane
  // is refused until it hellos.
  auto bare = PricingClient::Connect("127.0.0.1", front->port());
  ASSERT_TRUE(bare.ok());
  const auto refused = bare->Decide(1, market::DecisionRequest::Single(1, 5));
  EXPECT_TRUE(refused.status().IsUnauthenticated()) << refused.status();
  EXPECT_TRUE(bare->Retire(1).IsUnauthenticated());
  // Pings stay credential-free (probes must stay cheap).
  EXPECT_TRUE(bare->Ping().ok());

  // The wrong token is rejected at Connect; version skew is
  // FailedPrecondition.
  net::ClientOptions bad;
  bad.auth_token = "wrong";
  EXPECT_TRUE(PricingClient::Connect("127.0.0.1", front->port(), bad)
                  .status()
                  .IsUnauthenticated());
  net::HelloRequest skewed;
  skewed.version = 999;
  skewed.token = token;
  EXPECT_TRUE(bare->Hello(skewed).IsFailedPrecondition());

  // The right token unlocks the full stack: client -> router -> backend,
  // with the router presenting the token to the backend itself.
  net::ClientOptions good;
  good.auth_token = token;
  auto client = PricingClient::Connect("127.0.0.1", front->port(), good);
  ASSERT_TRUE(client.ok()) << client.status();
  const auto artifact =
      std::make_shared<const engine::PolicyArtifact>(SmallDeadlineArtifact());
  const auto id = client->AdmitShared(artifact, SmallLimits());
  ASSERT_TRUE(id.ok()) << id.status();
  EXPECT_TRUE(
      client->Decide(*id, market::DecisionRequest::Single(1.0, 5)).ok());
  EXPECT_EQ(b0.map->live_campaigns(), 1u);

  ASSERT_TRUE(front->Stop().ok());
}

TEST(CampaignRouterTest, LiveRebalanceMigratesExactlyTheDiff) {
  Backend b0 = Backend::Start();
  Backend b1 = Backend::Start();
  Backend b2 = Backend::Start();
  RouterOptions router_options;
  router_options.pool = TestPoolOptions();
  auto router = CampaignRouter::Create({b0.name, b1.name}, router_options);
  ASSERT_TRUE(router.ok());

  const auto artifact =
      std::make_shared<const engine::PolicyArtifact>(SmallDeadlineArtifact());
  std::vector<CampaignId> ids;
  std::vector<market::OfferSheet> before;
  for (int i = 0; i < 24; ++i) {
    CampaignLimits limits = SmallLimits();
    limits.admit_hours = 0.5 * (i % 4);
    ids.push_back(
        router->Apply(ControlOp::AdmitShared(artifact, limits))->id);
    const auto responses = router->DecideBatch(
        {DecideRequest::Single(ids.back(), limits.admit_hours + 1.0, 7)});
    ASSERT_TRUE(responses[0].status.ok());
    before.push_back(responses[0].sheet);
  }
  const PlacementTable old_placement = router->placement();

  // Grow the fleet: only campaigns the newcomer wins may move.
  const auto migrated = router->AddBackend(b2.name);
  ASSERT_TRUE(migrated.ok()) << migrated.status();
  EXPECT_GT(*migrated, 0u);
  const PlacementTable new_placement = router->placement();
  EXPECT_EQ(new_placement.version(), old_placement.version() + 1);
  size_t moved = 0;
  for (const CampaignId id : ids) {
    const std::string was = old_placement.OwnerOf(id).value();
    const std::string now = new_placement.OwnerOf(id).value();
    if (was != now) {
      ++moved;
      EXPECT_EQ(now, b2.name);
    }
  }
  EXPECT_EQ(moved, *migrated);
  EXPECT_EQ(b2.map->live_campaigns(), moved);
  EXPECT_EQ(router->live_campaigns(), ids.size());

  // Every campaign -- moved or not -- answers exactly what it answered
  // before the rebalance (same id, same limits, same policy bytes).
  for (size_t i = 0; i < ids.size(); ++i) {
    const auto responses = router->DecideBatch(
        {DecideRequest::Single(ids[i], 0.5 * (i % 4) + 1.0, 7)});
    ASSERT_TRUE(responses[0].status.ok()) << responses[0].status;
    ASSERT_EQ(responses[0].sheet.offers.size(), before[i].offers.size());
    for (size_t o = 0; o < before[i].offers.size(); ++o) {
      EXPECT_EQ(responses[0].sheet.offers[o].per_task_reward_cents,
                before[i].offers[o].per_task_reward_cents)
          << "campaign " << ids[i];
    }
  }

  // Shrink back out: the departing backend's campaigns redistribute and
  // nothing is lost.
  const auto drained = router->RemoveBackend(b2.name);
  ASSERT_TRUE(drained.ok()) << drained.status();
  EXPECT_EQ(*drained, moved);
  EXPECT_EQ(b2.map->live_campaigns(), 0u);
  EXPECT_EQ(router->live_campaigns(), ids.size());
  EXPECT_EQ(router->stats().migrations, moved * 2);
  EXPECT_EQ(router->stats().lost_campaigns, 0u);

  // Removing an unknown backend is NotFound, not a torn placement.
  EXPECT_TRUE(router->RemoveBackend("127.0.0.1:1").status().IsNotFound());
}

TEST(CampaignRouterTest, EmptyRouterAnswersUnavailable) {
  RouterOptions router_options;
  router_options.pool = TestPoolOptions();
  auto router = CampaignRouter::Create({}, router_options);
  ASSERT_TRUE(router.ok());
  const auto responses =
      router->DecideBatch({DecideRequest::Single(1, 1.0, 5)});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].status.IsUnavailable());
  const auto artifact =
      std::make_shared<const engine::PolicyArtifact>(SmallDeadlineArtifact());
  EXPECT_TRUE(router->Apply(ControlOp::AdmitShared(artifact, SmallLimits()))
                  .status()
                  .IsUnavailable());

  // Capacity arrives by rebalance; the router starts placing.
  Backend b0 = Backend::Start();
  ASSERT_TRUE(router->Rebalance({b0.name}).ok());
  EXPECT_TRUE(router->Apply(ControlOp::AdmitShared(artifact, SmallLimits()))
                  .ok());
}

}  // namespace
}  // namespace crowdprice::router
