// check_bench_json: validates BENCH_*.json perf records.
//
//   check_bench_json BENCH_a.json [BENCH_b.json ...]
//
// Every bench binary persists a BenchRecord (bench/bench_common.h) so PRs
// can regress against a perf trajectory; CI runs the benches in --smoke
// mode and gates on this validator so a malformed record (bad escaping,
// non-finite metric printed as "inf"/"nan", truncated write) fails the
// build instead of silently poisoning the trajectory.
//
// A record must be a JSON object of exactly
//   { "bench": <non-empty string>,
//     "params": { <string>: <number>, ... },
//     "metrics": { <string>: <number>, ... },
//     "labels": { <string>: <string>, ... } }
// JSON has no inf/nan literals, so finiteness comes free from parsing.
//
// Benches whose records downstream tooling keys on additionally have a
// required-metric schema (kKnownBenches): a record that parses but lost
// its headline metrics (a refactor renamed a key, a sweep emitted no
// cells) fails validation instead of silently emptying the trajectory.
//
// The fleet_throughput record additionally carries a scaling-curve gate
// over decides_per_sec_shards_{1,2,4,8,16}: the serving read path is
// wait-free, so adding shards must never collapse throughput. The gate is
// capacity-aware via the record's own params -- strict (monotone within
// 0.92, 16-shard >= 6x single-shard) when the measuring host reported
// hw_threads >= 16, non-collapse (monotone within 0.85, 16-shard >= 0.9x)
// on smaller hosts, and collapse-only (0.5x) for --smoke records, whose
// sizes are too small to time scaling honestly.
//
// The fleet_solve record carries two gates, both mirroring the bench's own
// checks. (1) eval_batched_speedup >= 3 on full records (the win over the
// pre-kernel per-campaign evaluator is algorithmic -- shared pmf blocks
// plus kernel layer scans -- so it holds on any core count); smoke waves
// are too small to amortize and only gate against being slower (>= 0.5).
// (2) decide_p99_storm_over_quiet <= 2 on full records from hosts with
// hw_threads >= 4; on narrower hosts a decide can stall one scheduler
// timeslice behind an already-running background solve, so the gate
// relaxes to collapse-only (32x, 16x for smoke) with an absolute escape:
// a storm p99 under 5 ms is never a stall whatever the ratio. Exit code 0
// when every file validates, 1 otherwise.

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// A tiny strict JSON parser (no dependencies; values only as deep as the
// record format needs, but the grammar is complete).
// ---------------------------------------------------------------------------

struct JsonValue;
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      value = nullptr;

  bool is_string() const { return value.index() == 3; }
  bool is_number() const { return value.index() == 2; }
  bool is_object() const { return value.index() == 5; }
  const std::string& as_string() const { return std::get<std::string>(value); }
  const JsonObject& as_object() const {
    return *std::get<std::shared_ptr<JsonObject>>(value);
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue& out, std::string& error) {
    error_ = &error;
    pos_ = 0;
    if (!ParseValue(out)) return false;
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing content after JSON value");
    return true;
  }

 private:
  bool Fail(const std::string& message) {
    *error_ = message + " (at byte " + std::to_string(pos_) + ")";
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool ParseValue(JsonValue& out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      std::string s;
      if (!ParseString(s)) return false;
      out.value = s;
      return true;
    }
    if (c == 't' || c == 'f') return ParseKeyword(out);
    if (c == 'n') return ParseKeyword(out);
    return ParseNumber(out);
  }

  bool ParseKeyword(JsonValue& out) {
    auto match = [&](const char* word) {
      return text_.compare(pos_, std::string(word).size(), word) == 0;
    };
    if (match("true")) {
      out.value = true;
      pos_ += 4;
      return true;
    }
    if (match("false")) {
      out.value = false;
      pos_ += 5;
      return true;
    }
    if (match("null")) {
      out.value = nullptr;
      pos_ += 4;
      return true;
    }
    return Fail("invalid literal");
  }

  bool ParseNumber(JsonValue& out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Fail("invalid number");
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("digits required after decimal point");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("digits required in exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string numeral = text_.substr(start, pos_ - start);
    errno = 0;
    char* end = nullptr;
    const double parsed = std::strtod(numeral.c_str(), &end);
    if (end != numeral.c_str() + numeral.size()) {
      return Fail("invalid number");
    }
    // Overflow to infinity is malformed (the record format promises
    // finite metrics); underflow to a (sub)normal tiny value is fine.
    if (errno == ERANGE && (parsed > 1.0 || parsed < -1.0)) {
      return Fail("number out of double range");
    }
    out.value = parsed;
    return true;
  }

  bool ParseString(std::string& out) {
    if (!Consume('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return Fail("invalid \\u escape");
            }
          }
          // The record format never emits non-ASCII; keep the escape
          // verbatim rather than decoding UTF-16 surrogates.
          out += "\\u" + text_.substr(pos_, 4);
          pos_ += 4;
          break;
        }
        default:
          return Fail("invalid escape character");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseArray(JsonValue& out) {
    if (!Consume('[')) return false;
    auto array = std::make_shared<JsonArray>();
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      out.value = array;
      return true;
    }
    while (true) {
      JsonValue element;
      if (!ParseValue(element)) return false;
      array->push_back(std::move(element));
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (!Consume(']')) return false;
    out.value = array;
    return true;
  }

  bool ParseObject(JsonValue& out) {
    if (!Consume('{')) return false;
    auto object = std::make_shared<JsonObject>();
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      out.value = object;
      return true;
    }
    while (true) {
      std::string key;
      SkipSpace();
      if (!ParseString(key)) return false;
      if (!Consume(':')) return false;
      JsonValue element;
      if (!ParseValue(element)) return false;
      object->emplace_back(std::move(key), std::move(element));
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (!Consume('}')) return false;
    out.value = object;
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string* error_ = nullptr;
};

// ---------------------------------------------------------------------------
// Record-shape validation
// ---------------------------------------------------------------------------

const JsonValue* FindKey(const JsonObject& object, const std::string& key) {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

// Per-bench required metrics: every listed key must be present, and for
// every listed prefix at least one metric key must start with it (sweep
// benches emit one key per swept cell).
struct BenchRequirements {
  const char* bench;
  std::vector<const char*> metrics;
  std::vector<const char*> metric_prefixes;
};

const std::vector<BenchRequirements>& KnownBenches() {
  static const std::vector<BenchRequirements> known = {
      {"fleet_throughput",
       {"serial_seconds", "fleet_seconds"},
       {"decides_per_sec_shards_"}},
      {"fleet_streaming",
       {"admit_mean_ms", "admit_max_ms"},
       {"decides_per_sec_window_", "admit_mean_ms_window_"}},
      {"serving_remote",
       {"sheets_per_sec", "p50_ms", "p99_ms"},
       {"sheets_per_sec_conns_", "p50_ms_conns_", "p99_ms_conns_"}},
      {"serving_router",
       {"sheets_per_sec", "p50_ms", "p99_ms", "direct_p99_ms",
        "p99_overhead_vs_direct"},
       {"sheets_per_sec_backends_", "p50_ms_backends_", "p99_ms_backends_",
        "p99_overhead_vs_direct_backends_"}},
      {"fleet_solve",
       {"wave_seconds", "sequential_solve_seconds", "eval_sequential_seconds",
        "eval_batched_seconds", "eval_batched_speedup", "decide_p99_quiet_ms",
        "decide_p99_storm_ms", "decide_p99_storm_over_quiet",
        "share_blocks_built", "share_blocks_shared"},
       {"waves_per_sec_threads_"}},
  };
  return known;
}

// Looks up `key` in a params/metrics object; false (with `error` set) when
// it is absent. Shape validation already guaranteed every entry is a
// finite number.
bool RequireNumber(const JsonObject& object, const char* section,
                   const std::string& key, double& out, std::string& error) {
  const JsonValue* value = FindKey(object, key);
  if (value == nullptr) {
    error = std::string("missing required ") + section + " \"" + key + "\"";
    return false;
  }
  out = std::get<double>(value->value);
  return true;
}

// The scaling-curve gate for the fleet_throughput record (see file
// comment). Thresholds here mirror the bench's own bench::Check gates;
// the bench enforces them at measurement time, this validator re-derives
// them from the persisted record so a regressed curve cannot be committed
// or slip through CI even if the bench binary's checks are bypassed.
bool ValidateFleetScalingCurve(const JsonObject& params,
                               const JsonObject& metrics, std::string& error) {
  double hw_threads = 0.0, smoke = 0.0;
  if (!RequireNumber(params, "param", "hw_threads", hw_threads, error) ||
      !RequireNumber(params, "param", "smoke", smoke, error)) {
    return false;
  }
  const std::vector<int> gate_shards = {1, 2, 4, 8, 16};
  std::map<int, double> curve;
  for (int shards : gate_shards) {
    double value = 0.0;
    if (!RequireNumber(metrics, "metric",
                       "decides_per_sec_shards_" + std::to_string(shards),
                       value, error)) {
      return false;
    }
    if (value <= 0.0) {
      error = "decides_per_sec_shards_" + std::to_string(shards) +
              " must be positive";
      return false;
    }
    curve[shards] = value;
  }
  const bool is_smoke = smoke != 0.0;
  const double tolerance =
      is_smoke ? 0.50 : (hw_threads >= 16.0 ? 0.92 : 0.85);
  const double head_factor =
      is_smoke ? 0.50 : (hw_threads >= 16.0 ? 6.0 : 0.90);
  for (size_t i = 0; i + 1 < gate_shards.size(); ++i) {
    const double prev = curve[gate_shards[i]];
    const double next = curve[gate_shards[i + 1]];
    if (next < tolerance * prev) {
      error = "scaling collapse: decides_per_sec_shards_" +
              std::to_string(gate_shards[i + 1]) + " (" +
              std::to_string(next) + ") < " + std::to_string(tolerance) +
              " x decides_per_sec_shards_" + std::to_string(gate_shards[i]) +
              " (" + std::to_string(prev) + ")";
      return false;
    }
  }
  if (curve[16] < head_factor * curve[1]) {
    error = "scaling gate: decides_per_sec_shards_16 (" +
            std::to_string(curve[16]) + ") < " + std::to_string(head_factor) +
            " x decides_per_sec_shards_1 (" + std::to_string(curve[1]) +
            ") [hw_threads=" + std::to_string(hw_threads) +
            ", smoke=" + std::to_string(smoke) + "]";
    return false;
  }
  std::printf(
      "     fleet_throughput scaling gate: %s (16-shard %.2fx 1-shard, "
      "required >= %.2fx)\n",
      is_smoke ? "smoke/collapse-only"
               : (hw_threads >= 16.0 ? "strict 6x" : "non-collapse"),
      curve[16] / curve[1], head_factor);
  return true;
}

// The routing-tier overhead gate for the serving_router record: the
// worst-case routed p99 must stay within 2x of the direct (router-less)
// p99 measured by the same run. Smoke records are too short for stable
// tail quantiles, so they only gate against outright pathology (16x); the
// bench binary applies the identical thresholds at measurement time.
bool ValidateRouterOverhead(const JsonObject& params,
                            const JsonObject& metrics, std::string& error) {
  double overhead = 0.0, smoke = 0.0;
  if (!RequireNumber(metrics, "metric", "p99_overhead_vs_direct", overhead,
                     error) ||
      !RequireNumber(params, "param", "smoke", smoke, error)) {
    return false;
  }
  if (overhead < 0.0) {
    error = "p99_overhead_vs_direct must be non-negative";
    return false;
  }
  const bool is_smoke = smoke != 0.0;
  const double ceiling = is_smoke ? 16.0 : 2.0;
  if (overhead > ceiling) {
    error = "routing overhead gate: p99_overhead_vs_direct (" +
            std::to_string(overhead) + ") > " + std::to_string(ceiling) +
            (is_smoke ? " [smoke]" : " [full]");
    return false;
  }
  std::printf(
      "     serving_router overhead gate: %s (p99 %.2fx direct, "
      "ceiling %.1fx)\n",
      is_smoke ? "smoke/pathology-only" : "strict 2x", overhead, ceiling);
  return true;
}

// The solve-farm gates for the fleet_solve record (see file comment):
// batched evaluation speedup and storm-vs-quiet serving p99, re-derived
// from the record's own hw_threads/smoke params exactly as the bench
// derives them at measurement time.
bool ValidateFleetSolve(const JsonObject& params, const JsonObject& metrics,
                        std::string& error) {
  double hw_threads = 0.0, smoke = 0.0;
  double eval_speedup = 0.0, ratio = 0.0, storm_ms = 0.0, shared = 0.0;
  if (!RequireNumber(params, "param", "hw_threads", hw_threads, error) ||
      !RequireNumber(params, "param", "smoke", smoke, error) ||
      !RequireNumber(metrics, "metric", "eval_batched_speedup", eval_speedup,
                     error) ||
      !RequireNumber(metrics, "metric", "decide_p99_storm_over_quiet", ratio,
                     error) ||
      !RequireNumber(metrics, "metric", "decide_p99_storm_ms", storm_ms,
                     error) ||
      !RequireNumber(metrics, "metric", "share_blocks_shared", shared,
                     error)) {
    return false;
  }
  const bool is_smoke = smoke != 0.0;
  if (shared <= 0.0) {
    error = "share_blocks_shared must be positive: a wave stamped from "
            "repeated rate profiles that shares nothing means the pmf share "
            "cache is broken";
    return false;
  }
  const double eval_floor = is_smoke ? 0.5 : 3.0;
  if (eval_speedup < eval_floor) {
    error = "batched evaluation gate: eval_batched_speedup (" +
            std::to_string(eval_speedup) + ") < " +
            std::to_string(eval_floor) + (is_smoke ? " [smoke]" : " [full]");
    return false;
  }
  const double storm_ceiling =
      !is_smoke && hw_threads >= 4.0 ? 2.0 : is_smoke ? 16.0 : 32.0;
  if (ratio > storm_ceiling && storm_ms > 5.0) {
    error = "re-solve storm gate: decide_p99_storm_over_quiet (" +
            std::to_string(ratio) + ") > " + std::to_string(storm_ceiling) +
            " and decide_p99_storm_ms (" + std::to_string(storm_ms) +
            ") > 5 ms [hw_threads=" + std::to_string(hw_threads) +
            ", smoke=" + std::to_string(smoke) + "]";
    return false;
  }
  std::printf(
      "     fleet_solve gates: eval %.2fx (floor %.1fx), storm p99 %.2fx "
      "quiet / %.3f ms (%s)\n",
      eval_speedup, eval_floor, ratio, storm_ms,
      is_smoke ? "smoke/pathology-only"
               : (hw_threads >= 4.0 ? "strict 2x" : "narrow-host"));
  return true;
}

bool ValidateRequirements(const std::string& bench, const JsonObject& params,
                          const JsonObject& metrics, std::string& error) {
  for (const BenchRequirements& required : KnownBenches()) {
    if (bench != required.bench) continue;
    for (const char* key : required.metrics) {
      if (FindKey(metrics, key) == nullptr) {
        error = "\"" + bench + "\" record is missing required metric \"" +
                key + "\"";
        return false;
      }
    }
    for (const char* prefix : required.metric_prefixes) {
      bool found = false;
      for (const auto& [key, unused] : metrics) {
        (void)unused;
        if (key.rfind(prefix, 0) == 0) {
          found = true;
          break;
        }
      }
      if (!found) {
        error = "\"" + bench + "\" record has no metric starting with \"" +
                prefix + "\"";
        return false;
      }
    }
  }
  if (bench == "fleet_throughput") {
    if (!ValidateFleetScalingCurve(params, metrics, error)) {
      error = "\"" + bench + "\" " + error;
      return false;
    }
  }
  if (bench == "serving_router") {
    if (!ValidateRouterOverhead(params, metrics, error)) {
      error = "\"" + bench + "\" " + error;
      return false;
    }
  }
  if (bench == "fleet_solve") {
    if (!ValidateFleetSolve(params, metrics, error)) {
      error = "\"" + bench + "\" " + error;
      return false;
    }
  }
  return true;
}

bool ValidateRecord(const JsonValue& root, std::string& error) {
  if (!root.is_object()) {
    error = "top-level value is not an object";
    return false;
  }
  const JsonObject& record = root.as_object();
  for (const auto& [key, unused] : record) {
    (void)unused;
    if (key != "bench" && key != "params" && key != "metrics" &&
        key != "labels") {
      error = "unexpected key \"" + key + "\"";
      return false;
    }
  }

  const JsonValue* bench = FindKey(record, "bench");
  if (bench == nullptr || !bench->is_string() || bench->as_string().empty()) {
    error = "\"bench\" must be a non-empty string";
    return false;
  }
  for (const char* section : {"params", "metrics"}) {
    const JsonValue* value = FindKey(record, section);
    if (value == nullptr || !value->is_object()) {
      error = std::string("\"") + section + "\" must be an object";
      return false;
    }
    for (const auto& [key, entry] : value->as_object()) {
      if (!entry.is_number()) {
        error = std::string("\"") + section + "\"." + key + " is not a number";
        return false;
      }
    }
  }
  const JsonValue* labels = FindKey(record, "labels");
  if (labels == nullptr || !labels->is_object()) {
    error = "\"labels\" must be an object";
    return false;
  }
  for (const auto& [key, entry] : labels->as_object()) {
    if (!entry.is_string()) {
      error = "\"labels\"." + key + " is not a string";
      return false;
    }
  }
  return ValidateRequirements(bench->as_string(),
                              FindKey(record, "params")->as_object(),
                              FindKey(record, "metrics")->as_object(), error);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: check_bench_json BENCH_a.json [BENCH_b.json ...]\n");
    return 1;
  }
  int bad = 0;
  for (int i = 1; i < argc; ++i) {
    const char* path = argv[i];
    std::ifstream in(path);
    if (!in.good()) {
      std::printf("FAIL %s: cannot open\n", path);
      ++bad;
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    JsonValue root;
    std::string error;
    Parser parser(text);
    if (!parser.Parse(root, error) || !ValidateRecord(root, error)) {
      std::printf("FAIL %s: %s\n", path, error.c_str());
      ++bad;
      continue;
    }
    std::printf("OK   %s\n", path);
  }
  if (bad > 0) {
    std::printf("%d of %d record(s) malformed\n", bad, argc - 1);
    return 1;
  }
  std::printf("all %d record(s) well-formed\n", argc - 1);
  return 0;
}
