// crowdprice_cli: solve pricing problems from the command line.
//
//   crowdprice_cli deadline --tasks 200 --hours 24 --intervals 72
//       --rate 5083 --max-price 50 --bound 0.5 [--out plan.txt]
//   crowdprice_cli budget   --tasks 200 --budget 2500 --rate 5083
//       --max-price 50
//   crowdprice_cli tradeoff --alpha 32 --rate 5083 --max-price 60
//
// The acceptance model defaults to the paper's Eq. 13 logit
// (s=15, b=-0.39, M=2000); override with --accept-s/--accept-b/--accept-m.
// Exit code 0 on success, 1 on user error, 2 on solver failure.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "crowdprice.h"

using namespace crowdprice;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  bool Has(const std::string& key) const { return flags.count(key) > 0; }

  double Num(const std::string& key, double fallback) const {
    auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    return std::strtod(it->second.c_str(), nullptr);
  }

  std::string Str(const std::string& key, const std::string& fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
};

int Usage() {
  std::cerr <<
      "usage:\n"
      "  crowdprice_cli deadline --tasks N --hours T [--intervals NT]\n"
      "      [--rate workers_per_hour] [--max-price C] [--bound E]\n"
      "      [--penalty P] [--out plan.txt]\n"
      "  crowdprice_cli budget --tasks N --budget CENTS\n"
      "      [--rate workers_per_hour] [--max-price C]\n"
      "  crowdprice_cli tradeoff --alpha CENTS_PER_HOUR\n"
      "      [--rate workers_per_hour] [--max-price C]\n"
      "common acceptance overrides: --accept-s --accept-b --accept-m\n";
  return 1;
}

Result<Args> Parse(int argc, char** argv) {
  if (argc < 2) return Status::InvalidArgument("missing command");
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag.rfind("--", 0) != 0) {
      return Status::InvalidArgument(StringF("unexpected token '%s'", flag.c_str()));
    }
    flag = flag.substr(2);
    if (i + 1 >= argc) {
      return Status::InvalidArgument(StringF("flag --%s needs a value", flag.c_str()));
    }
    args.flags[flag] = argv[++i];
  }
  return args;
}

Result<choice::LogitAcceptance> Acceptance(const Args& args) {
  return choice::LogitAcceptance::Create(args.Num("accept-s", 15.0),
                                         args.Num("accept-b", -0.39),
                                         args.Num("accept-m", 2000.0));
}

int RunDeadline(const Args& args) {
  const int tasks = static_cast<int>(args.Num("tasks", 0));
  const double hours = args.Num("hours", 0.0);
  const int intervals =
      static_cast<int>(args.Num("intervals", std::max(1.0, hours * 3.0)));
  const double rate = args.Num("rate", 5083.0);
  const int max_price = static_cast<int>(args.Num("max-price", 50));
  if (tasks < 1 || hours <= 0.0) {
    std::cerr << "deadline requires --tasks >= 1 and --hours > 0\n";
    return 1;
  }
  auto acceptance = Acceptance(args);
  if (!acceptance.ok()) {
    std::cerr << acceptance.status() << "\n";
    return 1;
  }
  auto actions = pricing::ActionSet::FromPriceGrid(max_price, *acceptance);
  if (!actions.ok()) {
    std::cerr << actions.status() << "\n";
    return 2;
  }
  std::vector<double> lambdas(static_cast<size_t>(intervals),
                              rate * hours / intervals);
  pricing::DeadlineProblem problem;
  problem.num_tasks = tasks;
  problem.num_intervals = intervals;

  Result<pricing::BoundSolveResult> solved = Status::OK();
  if (args.Has("penalty")) {
    problem.penalty_cents = args.Num("penalty", 0.0);
    auto plan = pricing::SolveImprovedDp(problem, lambdas, *actions);
    if (!plan.ok()) {
      std::cerr << plan.status() << "\n";
      return 2;
    }
    auto eval = pricing::EvaluatePolicyNominal(*plan);
    if (!eval.ok()) {
      std::cerr << eval.status() << "\n";
      return 2;
    }
    solved = pricing::BoundSolveResult{std::move(plan).value(),
                                       std::move(eval).value(),
                                       problem.penalty_cents, 1};
  } else {
    solved = pricing::SolveForExpectedRemaining(problem, lambdas, *actions,
                                                args.Num("bound", 0.5));
  }
  if (!solved.ok()) {
    std::cerr << solved.status() << "\n";
    return 2;
  }

  std::cout << StringF("opening price:        %.0f cents\n",
                       solved->plan.PriceAt(tasks, 0).value_or(-1));
  std::cout << StringF("expected total cost:  %.0f cents\n",
                       solved->evaluation.expected_cost_cents);
  std::cout << StringF("avg reward per task:  %.2f cents\n",
                       solved->evaluation.average_reward_per_task);
  std::cout << StringF("E[unfinished]:        %.3f of %d\n",
                       solved->evaluation.expected_remaining, tasks);
  std::cout << StringF("Pr[all done]:         %.4f\n",
                       1.0 - solved->evaluation.prob_unfinished);
  std::cout << StringF("penalty used:         %.1f cents/task\n",
                       solved->penalty_used);

  Table schedule({"interval", "price @ full backlog", "price @ half",
                  "price @ 10% left"});
  for (int t = 0; t < intervals; t += std::max(1, intervals / 8)) {
    (void)schedule.AddRow(
        {StringF("%d", t),
         StringF("%.0f", solved->plan.PriceAt(tasks, t).value_or(-1)),
         StringF("%.0f",
                 solved->plan.PriceAt(std::max(1, tasks / 2), t).value_or(-1)),
         StringF("%.0f",
                 solved->plan.PriceAt(std::max(1, tasks / 10), t).value_or(-1))});
  }
  std::cout << "\n";
  schedule.Print(std::cout);

  if (args.Has("out")) {
    std::ofstream out(args.Str("out", ""));
    out << pricing::SerializePlan(solved->plan);
    if (!out.good()) {
      std::cerr << "failed to write " << args.Str("out", "") << "\n";
      return 2;
    }
    std::cout << "\nplan written to " << args.Str("out", "") << "\n";
  }
  return 0;
}

int RunBudget(const Args& args) {
  const int64_t tasks = static_cast<int64_t>(args.Num("tasks", 0));
  const double budget = args.Num("budget", -1.0);
  const double rate = args.Num("rate", 5083.0);
  const int max_price = static_cast<int>(args.Num("max-price", 50));
  if (tasks < 1 || budget < 0.0) {
    std::cerr << "budget requires --tasks >= 1 and --budget >= 0 (cents)\n";
    return 1;
  }
  auto acceptance = Acceptance(args);
  if (!acceptance.ok()) {
    std::cerr << acceptance.status() << "\n";
    return 1;
  }
  auto assignment = pricing::SolveBudgetLp(tasks, budget, *acceptance, max_price);
  if (!assignment.ok()) {
    std::cerr << assignment.status() << "\n";
    return 2;
  }
  std::cout << "static price assignment (Algorithm 3):\n";
  for (const auto& alloc : assignment->allocations) {
    std::cout << StringF("  %lld tasks at %d cents\n",
                         static_cast<long long>(alloc.count), alloc.price_cents);
  }
  std::cout << StringF("committed budget:     %.0f of %.0f cents\n",
                       assignment->total_cost_cents, budget);
  std::cout << StringF("E[worker arrivals]:   %.0f\n",
                       assignment->expected_worker_arrivals);
  auto latency = assignment->ExpectedLatencyHours(rate);
  if (latency.ok()) {
    std::cout << StringF("E[completion time]:   %.1f hours at %.0f workers/hour\n",
                         *latency, rate);
  }
  return 0;
}

int RunTradeoff(const Args& args) {
  const double alpha = args.Num("alpha", -1.0);
  const double rate = args.Num("rate", 5083.0);
  const int max_price = static_cast<int>(args.Num("max-price", 60));
  if (alpha < 0.0) {
    std::cerr << "tradeoff requires --alpha >= 0 (cents per task-hour)\n";
    return 1;
  }
  auto acceptance = Acceptance(args);
  if (!acceptance.ok()) {
    std::cerr << acceptance.status() << "\n";
    return 1;
  }
  auto sol = pricing::SolveWorkerArrivalTradeoff(rate, *acceptance, alpha,
                                                 max_price);
  if (!sol.ok()) {
    std::cerr << sol.status() << "\n";
    return 2;
  }
  std::cout << StringF("optimal price:        %d cents\n", sol->price_cents);
  std::cout << StringF("E[latency per task]:  %.3f hours\n",
                       sol->expected_latency_per_task);
  std::cout << StringF("cost + alpha*latency: %.2f cents/task\n",
                       sol->objective_per_task);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = Parse(argc, argv);
  if (!args.ok()) {
    std::cerr << args.status() << "\n";
    return Usage();
  }
  if (args->command == "deadline") return RunDeadline(*args);
  if (args->command == "budget") return RunBudget(*args);
  if (args->command == "tradeoff") return RunTradeoff(*args);
  std::cerr << "unknown command '" << args->command << "'\n";
  return Usage();
}
