// crowdprice_cli: solve pricing problems from the command line.
//
//   crowdprice_cli deadline --tasks 200 --hours 24 --intervals 72
//       --rate 5083 --max-price 50 --bound 0.5 [--out plan.txt]
//   crowdprice_cli budget   --tasks 200 --budget 2500 --rate 5083
//       --max-price 50
//   crowdprice_cli tradeoff --alpha 32 --rate 5083 --max-price 60
//   crowdprice_cli fleet    --campaigns 500 --shards 8 --tasks 40
//       --hours 8 --rate 400 --max-price 50 [--bound 0.5] [--seed 7]
//       [--arrive-over 12] [--retire-frac 0.1] [--shards-sweep]
//   crowdprice_cli multitype --tasks1 15 --tasks2 15 --hours 8
//       --rate 80 --max-price 30 [--replicates 50] [--out plan.txt]
//   crowdprice_cli solve --wave campaigns.txt [--threads K] [--evaluate]
//   crowdprice_cli solvers
//
// Every policy is produced through engine::Solve; the CLI only builds the
// PolicySpec and formats the artifact. `fleet` additionally runs the
// sharded serving layer: it admits N copies of the solved campaign into a
// market::FleetSimulator and plays them all against one shared arrival
// stream, reporting aggregate outcomes and per-shard serving stats. With
// --arrive-over H the marketplace is open: admissions spread over the
// first H hours (streaming admission at bucket edges while earlier
// campaigns are in flight), and --retire-frac F pulls that fraction of
// the fleet mid-run one hour after each victim's admission.
// `solve` is the batch entry to the solve farm: each non-comment line of
// the --wave file is one deadline campaign "tasks hours rate [penalty]"
// (penalty omitted = bound mode at E[remaining] <= 0.5), and the whole
// file is solved as one engine::SolveWave over a SolverPool, sharing
// truncated-Poisson blocks across campaigns via the process-wide
// PmfShareCache.
// `multitype` solves the §6 joint two-type policy, plays it through the
// OfferSheet decision surface (MakeController + RunMultiTypeSimulation)
// and compares simulated per-type completions to the plan's nominal
// prediction. The acceptance model defaults to the paper's Eq. 13 logit
// (s=15, b=-0.39, M=2000); override with --accept-s/--accept-b/--accept-m
// (single-type) or --s1/--b1/--s2/--b2/--m (joint).
// Exit code 0 on success, 1 on user error, 2 on solver failure.

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "crowdprice.h"

using namespace crowdprice;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  bool Has(const std::string& key) const { return flags.count(key) > 0; }

  double Num(const std::string& key, double fallback) const {
    auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    return std::strtod(it->second.c_str(), nullptr);
  }

  std::string Str(const std::string& key, const std::string& fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
};

int Usage() {
  std::cerr <<
      "usage:\n"
      "  crowdprice_cli deadline --tasks N --hours T [--intervals NT]\n"
      "      [--rate workers_per_hour] [--max-price C] [--bound E]\n"
      "      [--penalty P] [--out plan.txt]\n"
      "  crowdprice_cli budget --tasks N --budget CENTS\n"
      "      [--rate workers_per_hour] [--max-price C]\n"
      "  crowdprice_cli tradeoff --alpha CENTS_PER_HOUR\n"
      "      [--rate workers_per_hour] [--max-price C]\n"
      "  crowdprice_cli fleet --campaigns M [--shards S] [--tasks N]\n"
      "      [--hours T] [--rate workers_per_hour] [--max-price C]\n"
      "      [--bound E] [--seed K] [--arrive-over H] [--retire-frac F]\n"
      "      [--shards-sweep]  (replay the same schedule at shard counts\n"
      "      1,2,4,8,16,32 and print the decides/sec scaling curve)\n"
      "  crowdprice_cli multitype --tasks1 N1 --tasks2 N2 --hours T\n"
      "      [--rate workers_per_hour] [--max-price C] [--stride S]\n"
      "      [--penalty1 P] [--penalty2 P] [--replicates R] [--seed K]\n"
      "      [--out plan.txt]\n"
      "  crowdprice_cli solve --wave FILE [--threads K] [--max-price C]\n"
      "      [--intervals-per-hour R] [--evaluate]  (batch-solve one\n"
      "      deadline campaign per line \"tasks hours rate [penalty]\"\n"
      "      through the solve farm; --evaluate also scores each policy)\n"
      "  crowdprice_cli solvers\n"
      "  crowdprice_cli kernels\n"
      "common acceptance overrides: --accept-s --accept-b --accept-m\n"
      "joint (multitype) overrides: --s1 --b1 --s2 --b2 --m\n"
      "kernel backend override (deadline/fleet/multitype): --kernel NAME\n"
      "  (also via CROWDPRICE_KERNEL; `kernels` lists what is available)\n";
  return 1;
}

// Flags that take no value; their presence alone sets them.
bool IsBooleanFlag(const std::string& flag) {
  return flag == "shards-sweep" || flag == "evaluate";
}

Result<Args> Parse(int argc, char** argv) {
  if (argc < 2) return Status::InvalidArgument("missing command");
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag.rfind("--", 0) != 0) {
      return Status::InvalidArgument(StringF("unexpected token '%s'", flag.c_str()));
    }
    flag = flag.substr(2);
    if (IsBooleanFlag(flag)) {
      args.flags[flag] = "1";
      continue;
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument(StringF("flag --%s needs a value", flag.c_str()));
    }
    args.flags[flag] = argv[++i];
  }
  return args;
}

Result<choice::LogitAcceptance> Acceptance(const Args& args) {
  return choice::LogitAcceptance::Create(args.Num("accept-s", 15.0),
                                         args.Num("accept-b", -0.39),
                                         args.Num("accept-m", 2000.0));
}

int RunDeadline(const Args& args) {
  const int tasks = static_cast<int>(args.Num("tasks", 0));
  const double hours = args.Num("hours", 0.0);
  const int intervals =
      static_cast<int>(args.Num("intervals", std::max(1.0, hours * 3.0)));
  const double rate = args.Num("rate", 5083.0);
  const int max_price = static_cast<int>(args.Num("max-price", 50));
  if (tasks < 1 || hours <= 0.0) {
    std::cerr << "deadline requires --tasks >= 1 and --hours > 0\n";
    return 1;
  }
  auto acceptance = Acceptance(args);
  if (!acceptance.ok()) {
    std::cerr << acceptance.status() << "\n";
    return 1;
  }
  auto actions = pricing::ActionSet::FromPriceGrid(max_price, *acceptance);
  if (!actions.ok()) {
    std::cerr << actions.status() << "\n";
    return 2;
  }

  engine::DeadlineDpSpec spec;
  spec.problem.num_tasks = tasks;
  spec.problem.num_intervals = intervals;
  spec.interval_lambdas.assign(static_cast<size_t>(intervals),
                               rate * hours / intervals);
  spec.actions = std::move(actions).value();
  spec.dp_options.kernel_backend = args.Str("kernel", "");
  if (args.Has("penalty")) {
    spec.problem.penalty_cents = args.Num("penalty", 0.0);
  } else {
    spec.expected_remaining_bound = args.Num("bound", 0.5);
  }

  auto artifact = engine::Solve(spec);
  if (!artifact.ok()) {
    std::cerr << artifact.status() << "\n";
    return 2;
  }
  auto eval = artifact->Evaluate();
  if (!eval.ok()) {
    std::cerr << eval.status() << "\n";
    return 2;
  }
  auto plan_ptr = artifact->deadline_plan();
  if (!plan_ptr.ok()) {
    std::cerr << plan_ptr.status() << "\n";
    return 2;
  }
  const pricing::DeadlinePlan& plan = **plan_ptr;

  std::cout << StringF("opening price:        %.0f cents\n",
                       plan.PriceAt(tasks, 0).value_or(-1));
  std::cout << StringF("expected total cost:  %.0f cents\n",
                       eval->expected_cost_cents);
  std::cout << StringF("avg reward per task:  %.2f cents\n",
                       eval->average_reward_per_task);
  std::cout << StringF("E[unfinished]:        %.3f of %d\n",
                       eval->expected_remaining, tasks);
  std::cout << StringF("Pr[all done]:         %.4f\n", 1.0 - eval->prob_unfinished);
  std::cout << StringF("penalty used:         %.1f cents/task\n",
                       artifact->penalty_used());

  Table schedule({"interval", "price @ full backlog", "price @ half",
                  "price @ 10% left"});
  for (int t = 0; t < intervals; t += std::max(1, intervals / 8)) {
    (void)schedule.AddRow(
        {StringF("%d", t),
         StringF("%.0f", plan.PriceAt(tasks, t).value_or(-1)),
         StringF("%.0f", plan.PriceAt(std::max(1, tasks / 2), t).value_or(-1)),
         StringF("%.0f", plan.PriceAt(std::max(1, tasks / 10), t).value_or(-1))});
  }
  std::cout << "\n";
  schedule.Print(std::cout);

  if (args.Has("out")) {
    auto serialized = artifact->Serialize();
    if (!serialized.ok()) {
      std::cerr << serialized.status() << "\n";
      return 2;
    }
    std::ofstream out(args.Str("out", ""));
    out << *serialized;
    if (!out.good()) {
      std::cerr << "failed to write " << args.Str("out", "") << "\n";
      return 2;
    }
    std::cout << "\nartifact written to " << args.Str("out", "") << "\n";
  }
  return 0;
}

int RunBudget(const Args& args) {
  const int64_t tasks = static_cast<int64_t>(args.Num("tasks", 0));
  const double budget = args.Num("budget", -1.0);
  const double rate = args.Num("rate", 5083.0);
  const int max_price = static_cast<int>(args.Num("max-price", 50));
  if (tasks < 1 || budget < 0.0) {
    std::cerr << "budget requires --tasks >= 1 and --budget >= 0 (cents)\n";
    return 1;
  }
  auto acceptance = Acceptance(args);
  if (!acceptance.ok()) {
    std::cerr << acceptance.status() << "\n";
    return 1;
  }

  engine::BudgetStaticSpec spec;
  spec.num_tasks = tasks;
  spec.budget_cents = budget;
  spec.acceptance = &*acceptance;
  spec.max_price_cents = max_price;
  auto artifact = engine::Solve(spec);
  if (!artifact.ok()) {
    std::cerr << artifact.status() << "\n";
    return 2;
  }
  auto assignment = artifact->budget_assignment();
  if (!assignment.ok()) {
    std::cerr << assignment.status() << "\n";
    return 2;
  }
  std::cout << "static price assignment (Algorithm 3):\n";
  for (const auto& alloc : (*assignment)->allocations) {
    std::cout << StringF("  %lld tasks at %d cents\n",
                         static_cast<long long>(alloc.count), alloc.price_cents);
  }
  std::cout << StringF("committed budget:     %.0f of %.0f cents\n",
                       (*assignment)->total_cost_cents, budget);
  std::cout << StringF("E[worker arrivals]:   %.0f\n",
                       (*assignment)->expected_worker_arrivals);
  auto latency = (*assignment)->ExpectedLatencyHours(rate);
  if (latency.ok()) {
    std::cout << StringF("E[completion time]:   %.1f hours at %.0f workers/hour\n",
                         *latency, rate);
  }
  return 0;
}

int RunTradeoff(const Args& args) {
  const double alpha = args.Num("alpha", -1.0);
  const double rate = args.Num("rate", 5083.0);
  const int max_price = static_cast<int>(args.Num("max-price", 60));
  if (alpha < 0.0) {
    std::cerr << "tradeoff requires --alpha >= 0 (cents per task-hour)\n";
    return 1;
  }
  auto acceptance = Acceptance(args);
  if (!acceptance.ok()) {
    std::cerr << acceptance.status() << "\n";
    return 1;
  }

  engine::TradeoffSpec spec;
  spec.rate = rate;
  spec.acceptance = &*acceptance;
  spec.alpha = alpha;
  spec.max_price_cents = max_price;
  auto artifact = engine::Solve(spec);
  if (!artifact.ok()) {
    std::cerr << artifact.status() << "\n";
    return 2;
  }
  auto sol = artifact->tradeoff();
  if (!sol.ok()) {
    std::cerr << sol.status() << "\n";
    return 2;
  }
  std::cout << StringF("optimal price:        %d cents\n", (*sol)->price_cents);
  std::cout << StringF("E[latency per task]:  %.3f hours\n",
                       (*sol)->expected_latency_per_task);
  std::cout << StringF("cost + alpha*latency: %.2f cents/task\n",
                       (*sol)->objective_per_task);
  return 0;
}

int RunFleet(const Args& args) {
  const int campaigns = static_cast<int>(args.Num("campaigns", 0));
  const int shards = static_cast<int>(args.Num("shards", 8));
  const int tasks = static_cast<int>(args.Num("tasks", 40));
  const double hours = args.Num("hours", 8.0);
  const double rate_per_hour = args.Num("rate", 400.0);
  const int max_price = static_cast<int>(args.Num("max-price", 50));
  const auto seed = static_cast<uint64_t>(args.Num("seed", 7.0));
  const double arrive_over = args.Num("arrive-over", 0.0);
  const double retire_frac = args.Num("retire-frac", 0.0);
  if (campaigns < 1 || tasks < 1 || hours <= 0.0 || shards < 1) {
    std::cerr << "fleet requires --campaigns >= 1, --tasks >= 1, "
                 "--hours > 0, --shards >= 1\n";
    return 1;
  }
  if (arrive_over < 0.0 || retire_frac < 0.0 || retire_frac > 1.0) {
    std::cerr << "fleet requires --arrive-over >= 0 and --retire-frac in "
                 "[0, 1]\n";
    return 1;
  }
  auto acceptance = Acceptance(args);
  if (!acceptance.ok()) {
    std::cerr << acceptance.status() << "\n";
    return 1;
  }
  auto actions = pricing::ActionSet::FromPriceGrid(max_price, *acceptance);
  if (!actions.ok()) {
    std::cerr << actions.status() << "\n";
    return 2;
  }

  // One deadline policy, played by every campaign in the fleet.
  const int intervals = std::max(1, static_cast<int>(hours * 3.0));
  engine::DeadlineDpSpec spec;
  spec.problem.num_tasks = tasks;
  spec.problem.num_intervals = intervals;
  spec.interval_lambdas.assign(static_cast<size_t>(intervals),
                               rate_per_hour * hours / intervals);
  spec.actions = std::move(actions).value();
  spec.dp_options.kernel_backend = args.Str("kernel", "");
  spec.expected_remaining_bound = args.Num("bound", 0.5);
  auto artifact = engine::Solve(spec);
  if (!artifact.ok()) {
    std::cerr << artifact.status() << "\n";
    return 2;
  }

  auto rate = arrival::PiecewiseConstantRate::Constant(rate_per_hour, 1.0);
  if (!rate.ok()) {
    std::cerr << rate.status() << "\n";
    return 2;
  }
  market::SimulatorConfig sim;
  sim.total_tasks = tasks;
  sim.horizon_hours = hours;
  sim.decision_interval_hours = hours / intervals;
  sim.service_minutes_per_task = 2.0;

  // Every campaign plays the same immutable policy: share one copy of the
  // solved tables across the whole fleet. With --arrive-over the fleet is
  // an open marketplace: admissions land at random bucket edges across the
  // window while earlier campaigns are mid-flight.
  auto shared = std::make_shared<const engine::PolicyArtifact>(
      std::move(*artifact));
  auto build_schedule = [&]() -> Result<market::ArrivalSchedule> {
    Rng master(seed);
    market::ArrivalSchedule schedule;
    for (int i = 0; i < campaigns; ++i) {
      const double admit_at = market::RandomBucketEdge(
          master, arrive_over, rate->bucket_width_hours());
      auto admitted = schedule.AdmitShared(admit_at, shared, sim, *acceptance,
                                           master.Fork());
      if (!admitted.ok()) return admitted.status();
      // Proportional victim pick: pull campaign i iff the running count
      // floor((i+1)*F) advances, so every fleet size retires ~F of its
      // campaigns.
      if (retire_frac > 0.0 &&
          static_cast<int64_t>(static_cast<double>(i + 1) * retire_frac) >
              static_cast<int64_t>(static_cast<double>(i) * retire_frac)) {
        const Status scheduled = schedule.RetireAt(*admitted, admit_at + 1.0);
        if (!scheduled.ok()) return scheduled;
      }
    }
    return schedule;
  };

  if (args.Has("shards-sweep")) {
    // Rebuild the schedule from the same seed at every shard count:
    // identical admission edges and per-campaign RNG streams, so every
    // row must reproduce the same outcomes (the serving layer's
    // serial-equivalence contract) -- only the wall clock may differ.
    std::cout << StringF(
        "shard sweep: %d campaigns, same schedule per shard count\n\n",
        campaigns);
    Table curve({"shards", "decides/sec", "wall s", "finished", "paid cents"});
    for (int sweep_shards : {1, 2, 4, 8, 16, 32}) {
      auto sweep_fleet = market::FleetSimulator::Create(sweep_shards);
      if (!sweep_fleet.ok()) {
        std::cerr << sweep_fleet.status() << "\n";
        return 2;
      }
      auto schedule = build_schedule();
      if (!schedule.ok()) {
        std::cerr << schedule.status() << "\n";
        return 2;
      }
      const auto start = std::chrono::steady_clock::now();
      auto sweep_outcomes =
          sweep_fleet->RunStreaming(*rate, std::move(*schedule));
      if (!sweep_outcomes.ok()) {
        std::cerr << sweep_outcomes.status() << "\n";
        return 2;
      }
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      int64_t finished = 0;
      double total_cost = 0.0;
      for (const auto& outcome : *sweep_outcomes) {
        if (outcome.result.finished) ++finished;
        total_cost += outcome.result.total_cost_cents;
      }
      const auto decides = sweep_fleet->shard_map().TotalStats().decides;
      (void)curve.AddRow(
          {StringF("%d", sweep_shards),
           StringF("%.0f",
                   wall > 0.0 ? static_cast<double>(decides) / wall : 0.0),
           StringF("%.3f", wall), StringF("%lld", (long long)finished),
           StringF("%.0f", total_cost)});
    }
    curve.Print(std::cout);
    std::cout << "\n(identical finished/paid columns across rows are the "
                 "determinism contract at work)\n";
    return 0;
  }

  auto fleet = market::FleetSimulator::Create(shards);
  if (!fleet.ok()) {
    std::cerr << fleet.status() << "\n";
    return 2;
  }
  auto schedule = build_schedule();
  if (!schedule.ok()) {
    std::cerr << schedule.status() << "\n";
    return 2;
  }
  auto outcomes = fleet->RunStreaming(*rate, std::move(*schedule));
  if (!outcomes.ok()) {
    std::cerr << outcomes.status() << "\n";
    return 2;
  }

  int64_t finished = 0;
  int64_t pulled = 0;
  double total_cost = 0.0;
  int64_t total_assigned = 0;
  for (const auto& outcome : *outcomes) {
    if (outcome.result.finished) ++finished;
    if (outcome.final_state == serving::CampaignState::kRetiredExplicit) {
      ++pulled;
    }
    total_cost += outcome.result.total_cost_cents;
    total_assigned += outcome.result.tasks_assigned;
  }
  std::cout << StringF("fleet of %d campaigns on %d shard(s):\n", campaigns,
                       fleet->shard_map().num_shards());
  std::cout << StringF("  finished by deadline: %lld / %d\n",
                       static_cast<long long>(finished), campaigns);
  if (pulled > 0) {
    std::cout << StringF("  pulled mid-run:       %lld\n",
                         static_cast<long long>(pulled));
  }
  std::cout << StringF("  tasks assigned:       %lld of %lld\n",
                       static_cast<long long>(total_assigned),
                       static_cast<long long>(campaigns) * tasks);
  std::cout << StringF("  total paid:           %.0f cents (%.2f / task)\n",
                       total_cost,
                       total_assigned > 0 ? total_cost / total_assigned : 0.0);
  if (arrive_over > 0.0) {
    const market::StreamingStats& stream = fleet->streaming_stats();
    std::cout << StringF(
        "  streaming admission:  %llu campaigns over %.1f h, admit "
        "latency %.4f ms mean / %.4f ms max\n",
        (unsigned long long)stream.admitted, arrive_over,
        stream.admit_mean_ms, stream.admit_max_ms);
  }

  Table stats({"shard", "admitted", "decides", "completed", "deadline",
               "pulled", "peak live"});
  for (int s = 0; s < fleet->shard_map().num_shards(); ++s) {
    const serving::ShardStats shard = fleet->shard_map().shard_stats(s);
    (void)stats.AddRow(
        {StringF("%d", s), StringF("%llu", (unsigned long long)shard.admitted),
         StringF("%llu", (unsigned long long)shard.decides),
         StringF("%llu", (unsigned long long)shard.retired_completed),
         StringF("%llu", (unsigned long long)shard.retired_deadline),
         StringF("%llu", (unsigned long long)shard.retired_explicit),
         StringF("%lld", (long long)shard.peak_live)});
  }
  std::cout << "\n";
  stats.Print(std::cout);
  return 0;
}

int RunMultiType(const Args& args) {
  const int tasks1 = static_cast<int>(args.Num("tasks1", 0));
  const int tasks2 = static_cast<int>(args.Num("tasks2", 0));
  const double hours = args.Num("hours", 0.0);
  const int intervals =
      static_cast<int>(args.Num("intervals", std::max(1.0, hours)));
  const double rate_per_hour = args.Num("rate", 80.0);
  const int replicates = static_cast<int>(args.Num("replicates", 50));
  if (tasks1 < 0 || tasks2 < 0 || tasks1 + tasks2 < 1 || hours <= 0.0) {
    std::cerr << "multitype requires --tasks1/--tasks2 (>= 1 total) and "
                 "--hours > 0\n";
    return 1;
  }

  engine::MultiTypeSpec spec;
  spec.s1 = args.Num("s1", 10.0);
  spec.b1 = args.Num("b1", 1.4);
  spec.s2 = args.Num("s2", 10.0);
  spec.b2 = args.Num("b2", 1.0);
  spec.m = args.Num("m", 200.0);
  spec.problem.num_tasks_1 = tasks1;
  spec.problem.num_tasks_2 = tasks2;
  spec.problem.num_intervals = intervals;
  spec.problem.penalty_1_cents = args.Num("penalty1", 200.0);
  spec.problem.penalty_2_cents = args.Num("penalty2", 150.0);
  spec.problem.max_price_cents =
      static_cast<int>(args.Num("max-price", 30));
  spec.problem.price_stride = static_cast<int>(args.Num("stride", 2));
  spec.kernel_backend = args.Str("kernel", "");
  spec.interval_lambdas.assign(static_cast<size_t>(intervals),
                               rate_per_hour * hours / intervals);

  auto artifact = engine::Solve(spec);
  if (!artifact.ok()) {
    std::cerr << artifact.status() << "\n";
    return 2;
  }
  auto plan_ptr = artifact->multitype_plan();
  if (!plan_ptr.ok()) {
    std::cerr << plan_ptr.status() << "\n";
    return 2;
  }
  const pricing::MultiTypePlan& plan = **plan_ptr;
  auto joint = pricing::JointLogitAcceptance::Create(spec.s1, spec.b1,
                                                     spec.s2, spec.b2,
                                                     spec.m);
  if (!joint.ok()) {
    std::cerr << joint.status() << "\n";
    return 2;
  }
  auto nominal = pricing::EvaluateMultiTypeNominal(plan, *joint);
  if (!nominal.ok()) {
    std::cerr << nominal.status() << "\n";
    return 2;
  }
  std::cout << StringF("joint objective:      %.0f cents\n",
                       plan.TotalObjective());
  std::cout << StringF("E[done] type 1:       %.2f of %d\n",
                       nominal->expected_completed[0], tasks1);
  std::cout << StringF("E[done] type 2:       %.2f of %d\n",
                       nominal->expected_completed[1], tasks2);
  std::cout << StringF("E[reward outlay]:     %.0f cents\n",
                       nominal->expected_cost_cents);

  // Play the artifact through the OfferSheet surface.
  auto controller = artifact->MakeController(hours);
  if (!controller.ok()) {
    std::cerr << controller.status() << "\n";
    return 2;
  }
  auto rate = arrival::PiecewiseConstantRate::Constant(rate_per_hour, 1.0);
  if (!rate.ok()) {
    std::cerr << rate.status() << "\n";
    return 2;
  }
  pricing::JointLogitSheetAcceptance acceptance(*joint);
  market::MultiTypeSimConfig sim;
  sim.tasks_per_type = {tasks1, tasks2};
  sim.horizon_hours = hours;
  sim.decision_interval_hours = hours / intervals;
  double done1 = 0.0, done2 = 0.0, paid = 0.0;
  Rng master(static_cast<uint64_t>(args.Num("seed", 7.0)));
  for (int rep = 0; rep < std::max(1, replicates); ++rep) {
    Rng child = master.Fork();
    auto played = market::RunMultiTypeSimulation(sim, *rate, acceptance,
                                                 **controller, child);
    if (!played.ok()) {
      std::cerr << played.status() << "\n";
      return 2;
    }
    done1 += static_cast<double>(played->types[0].tasks_assigned);
    done2 += static_cast<double>(played->types[1].tasks_assigned);
    paid += played->total_cost_cents;
  }
  const double n = static_cast<double>(std::max(1, replicates));
  std::cout << StringF(
      "simulated (%d reps):  type 1 %.2f done, type 2 %.2f done, "
      "%.0f cents avg\n",
      std::max(1, replicates), done1 / n, done2 / n, paid / n);

  if (args.Has("out")) {
    auto serialized = artifact->Serialize();
    if (!serialized.ok()) {
      std::cerr << serialized.status() << "\n";
      return 2;
    }
    std::ofstream out(args.Str("out", ""));
    out << *serialized;
    if (!out.good()) {
      std::cerr << "failed to write " << args.Str("out", "") << "\n";
      return 2;
    }
    std::cout << "artifact written to " << args.Str("out", "") << "\n";
  }
  return 0;
}

// Batch entry to the solve farm: one deadline campaign per wave-file line,
// all solved in a single SolveWave over the process-wide pmf share cache.
int RunSolveWave(const Args& args) {
  if (!args.Has("wave")) {
    std::cerr << "solve requires --wave FILE (one campaign per line: "
                 "\"tasks hours rate [penalty]\")\n";
    return 1;
  }
  const int threads = static_cast<int>(args.Num("threads", 0));
  const int max_price = static_cast<int>(args.Num("max-price", 50));
  const double intervals_per_hour = args.Num("intervals-per-hour", 3.0);
  if (intervals_per_hour <= 0.0) {
    std::cerr << "solve requires --intervals-per-hour > 0\n";
    return 1;
  }
  auto acceptance = Acceptance(args);
  if (!acceptance.ok()) {
    std::cerr << acceptance.status() << "\n";
    return 1;
  }
  auto actions = pricing::ActionSet::FromPriceGrid(max_price, *acceptance);
  if (!actions.ok()) {
    std::cerr << actions.status() << "\n";
    return 2;
  }

  std::ifstream in(args.Str("wave", ""));
  if (!in.good()) {
    std::cerr << "cannot open " << args.Str("wave", "") << "\n";
    return 1;
  }
  std::vector<engine::PolicySpec> specs;
  std::vector<double> spec_hours;
  std::string line;
  for (int line_no = 1; std::getline(in, line); ++line_no) {
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream cells(line);
    int tasks = 0;
    double hours = 0.0, rate = 0.0;
    if (!(cells >> tasks >> hours >> rate) || tasks < 1 || hours <= 0.0) {
      std::cerr << StringF(
          "%s:%d: expected \"tasks hours rate [penalty]\" with tasks >= 1 "
          "and hours > 0\n",
          args.Str("wave", "").c_str(), line_no);
      return 1;
    }
    engine::DeadlineDpSpec spec;
    const int intervals =
        std::max(1, static_cast<int>(hours * intervals_per_hour));
    spec.problem.num_tasks = tasks;
    spec.problem.num_intervals = intervals;
    spec.interval_lambdas.assign(static_cast<size_t>(intervals),
                                 rate * hours / intervals);
    spec.actions = *actions;
    double penalty = 0.0;
    if (cells >> penalty) {
      spec.problem.penalty_cents = penalty;
    } else {
      spec.expected_remaining_bound = 0.5;
    }
    specs.push_back(std::move(spec));
    spec_hours.push_back(hours);
  }
  if (specs.empty()) {
    std::cerr << args.Str("wave", "") << ": no campaigns\n";
    return 1;
  }

  engine::SolverPool pool(threads, /*background=*/false);
  engine::SolveWaveOptions options;
  options.pool = &pool;
  options.evaluate = args.Has("evaluate");
  options.kernel_backend = args.Str("kernel", "");
  const auto start = std::chrono::steady_clock::now();
  auto wave = engine::SolveWave(specs, options);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::vector<std::string> columns = {"campaign", "tasks", "hours",
                                      "opening price", "penalty used"};
  if (options.evaluate) {
    columns.push_back("E[cost] cents");
    columns.push_back("E[left]");
  }
  Table table(columns);
  int failed = 0;
  for (size_t i = 0; i < wave.size(); ++i) {
    if (!wave[i].ok()) {
      ++failed;
      std::cerr << StringF("campaign %zu: ", i) << wave[i].status() << "\n";
      continue;
    }
    auto plan = wave[i]->deadline_plan();
    if (!plan.ok()) {
      std::cerr << plan.status() << "\n";
      return 2;
    }
    std::vector<std::string> row = {
        StringF("%zu", i), StringF("%d", (*plan)->num_tasks()),
        StringF("%.1f", spec_hours[i]),
        StringF("%.0f",
                (*plan)->PriceAt((*plan)->num_tasks(), 0).value_or(-1)),
        StringF("%.1f", wave[i]->penalty_used())};
    if (options.evaluate) {
      auto eval = wave[i]->deadline_evaluation();
      if (!eval.ok()) {
        std::cerr << eval.status() << "\n";
        return 2;
      }
      row.push_back(StringF("%.0f", (*eval)->expected_cost_cents));
      row.push_back(StringF("%.3f", (*eval)->expected_remaining));
    }
    (void)table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  const kernel::PmfArena::Stats share = kernel::PmfShareCache::Global().stats();
  std::cout << StringF(
      "\nsolved %zu of %zu campaign(s) in %.3f s on %d farm thread(s)\n",
      wave.size() - static_cast<size_t>(failed), wave.size(), wall,
      pool.size());
  std::cout << StringF(
      "pmf share cache: %lld block(s) built, %lld shared, %.1f KiB "
      "resident\n",
      static_cast<long long>(share.blocks_built),
      static_cast<long long>(share.blocks_shared),
      static_cast<double>(kernel::PmfShareCache::Global().resident_bytes()) /
          1024.0);
  return failed == 0 ? 0 : 2;
}

int RunSolvers() {
  std::cout << "registered solvers:\n";
  for (const std::string& line : engine::SolverRegistry::Global().Describe()) {
    std::cout << "  " << line << "\n";
  }
  return 0;
}

int RunKernels() {
  const auto& registry = kernel::KernelRegistry::Global();
  auto selected = registry.Resolve("");
  std::cout << "kernel backends (ascending preference):\n";
  for (const std::string& name : registry.Available()) {
    const bool is_default =
        selected.ok() && name == (*selected)->name();
    std::cout << "  " << name << (is_default ? "  [default]" : "") << "\n";
  }
  std::cout << "force per solve with --kernel NAME or the CROWDPRICE_KERNEL "
               "environment variable.\n";
  const kernel::PmfArena::Stats share = kernel::PmfShareCache::Global().stats();
  std::cout << StringF(
      "pmf share cache: %lld block(s) built, %lld shared, %.1f KiB "
      "resident, %lld evicted\n",
      static_cast<long long>(share.blocks_built),
      static_cast<long long>(share.blocks_shared),
      static_cast<double>(kernel::PmfShareCache::Global().resident_bytes()) /
          1024.0,
      static_cast<long long>(kernel::PmfShareCache::Global().evicted()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = Parse(argc, argv);
  if (!args.ok()) {
    std::cerr << args.status() << "\n";
    return Usage();
  }
  if (args->command == "deadline") return RunDeadline(*args);
  if (args->command == "budget") return RunBudget(*args);
  if (args->command == "tradeoff") return RunTradeoff(*args);
  if (args->command == "fleet") return RunFleet(*args);
  if (args->command == "multitype") return RunMultiType(*args);
  if (args->command == "solve") return RunSolveWave(*args);
  if (args->command == "solvers") return RunSolvers();
  if (args->command == "kernels") return RunKernels();
  std::cerr << "unknown command '" << args->command << "'\n";
  return Usage();
}
