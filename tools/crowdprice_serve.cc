// crowdprice_serve: the network-facing pricing server.
//
//   crowdprice_serve [--port 7710] [--shards 8] [--workers 4]
//                    [--max-frame-mb 64] [--stats-every 10]
//                    [--auth-token TOKEN]
//                    [--tls-cert PEM --tls-key PEM [--tls-ca PEM]]
//
// Serves the DecisionRequest -> OfferSheet surface of an (initially
// empty) serving::CampaignShardMap over TCP: clients admit, swap, and
// retire campaigns with control frames and price them with decide-batch
// frames (protocol in src/net/wire.h; client in src/net/client.h). Runs
// until SIGINT/SIGTERM, then drains in-flight batches and exits.
// --stats-every N prints serving counters every N seconds (0 disables).
// --auth-token requires every connection to hello with the token first.
// --tls-cert/--tls-key switch the wire to TLS; --tls-ca additionally
// demands client certificates (mutual TLS). See net/transport.h for the
// identity model (private CA per fleet, no hostname checks).
//
// --port 0 binds an ephemeral port. Whatever the port, the first stdout
// line is the machine-parseable `PORT <n>` -- launchers (the router's
// test harness, scripts spawning local fleets) read the bound port from
// it instead of racing a log grep.
//
// Exit code 0 on clean shutdown, 1 on user error, 2 when the server
// fails to start (e.g. the port is taken).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "net/server.h"
#include "serving/campaign_shard_map.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

long FlagValue(int argc, char** argv, const char* name, long fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return std::strtol(argv[i + 1], nullptr, 10);
    }
  }
  return fallback;
}

std::string FlagString(int argc, char** argv, const char* name,
                       const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

void PrintStats(const crowdprice::net::PricingServer& server,
                const crowdprice::serving::CampaignShardMap& map) {
  const crowdprice::net::ServerStats stats = server.stats();
  std::printf(
      "conns=%llu frames=%llu decides=%llu control_ops=%llu "
      "protocol_errors=%llu live_campaigns=%zu\n",
      static_cast<unsigned long long>(stats.connections_accepted),
      static_cast<unsigned long long>(stats.frames_received),
      static_cast<unsigned long long>(stats.decide_requests),
      static_cast<unsigned long long>(stats.control_ops),
      static_cast<unsigned long long>(stats.protocol_errors),
      map.live_campaigns());
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      std::printf(
          "usage: crowdprice_serve [--port N] [--shards N] [--workers N]\n"
          "                        [--max-frame-mb N] [--stats-every SECS]\n"
          "                        [--auth-token TOKEN]\n"
          "                        [--tls-cert PEM --tls-key PEM "
          "[--tls-ca PEM]]\n");
      return 0;
    }
  }
  const long port = FlagValue(argc, argv, "--port", 7710);
  const long shards = FlagValue(argc, argv, "--shards", 8);
  const long workers = FlagValue(argc, argv, "--workers", 4);
  const long max_frame_mb = FlagValue(argc, argv, "--max-frame-mb", 64);
  const long stats_every = FlagValue(argc, argv, "--stats-every", 10);
  const std::string auth_token = FlagString(argc, argv, "--auth-token", "");
  const std::string tls_cert = FlagString(argc, argv, "--tls-cert", "");
  const std::string tls_key = FlagString(argc, argv, "--tls-key", "");
  const std::string tls_ca = FlagString(argc, argv, "--tls-ca", "");
  if (port < 0 || port > 65535 || shards < 1 || workers < 1 ||
      max_frame_mb < 1) {
    std::fprintf(stderr, "crowdprice_serve: bad flag value\n");
    return 1;
  }

  auto map = crowdprice::serving::CampaignShardMap::Create(
      static_cast<int>(shards));
  if (!map.ok()) {
    std::fprintf(stderr, "crowdprice_serve: %s\n",
                 map.status().ToString().c_str());
    return 1;
  }

  crowdprice::net::ServerOptions options;
  options.port = static_cast<uint16_t>(port);
  options.num_workers = static_cast<int>(workers);
  options.max_frame_bytes = static_cast<uint32_t>(max_frame_mb) * (1u << 20);
  options.auth_token = auth_token;
  options.tls.cert_file = tls_cert;
  options.tls.key_file = tls_key;
  options.tls.ca_file = tls_ca;
  auto server = crowdprice::net::PricingServer::Create(&map.value(), options);
  if (!server.ok()) {
    std::fprintf(stderr, "crowdprice_serve: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  const crowdprice::Status started = server->Start();
  if (!started.ok()) {
    std::fprintf(stderr, "crowdprice_serve: %s\n",
                 started.ToString().c_str());
    return 2;
  }
  std::printf("PORT %u\n", server->port());
  std::printf(
      "crowdprice_serve listening on port %u (%ld shards, %ld workers%s%s)\n",
      server->port(), shards, workers,
      auth_token.empty() ? "" : ", auth required",
      options.tls.enabled() ? ", tls" : "");
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  int ticks = 0;
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    if (stats_every > 0 && ++ticks >= stats_every * 5) {
      ticks = 0;
      PrintStats(*server, *map);
    }
  }

  std::printf("crowdprice_serve: draining and shutting down\n");
  const crowdprice::Status stopped = server->Stop();
  if (!stopped.ok()) {
    std::fprintf(stderr, "crowdprice_serve: %s\n", stopped.ToString().c_str());
    return 2;
  }
  PrintStats(*server, *map);
  return 0;
}
