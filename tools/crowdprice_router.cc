// crowdprice_router: the multi-node routing tier over crowdprice_serve
// backends.
//
//   crowdprice_router --backends 127.0.0.1:7710,127.0.0.1:7711
//                     [--port 7700] [--workers 4] [--max-frame-mb 64]
//                     [--probe-interval-ms 250] [--stats-every 10]
//                     [--auth-token TOKEN]
//                     [--tls-cert PEM --tls-key PEM] [--tls-ca PEM]
//
// Speaks the same frame protocol on both sides: clients connect to the
// router exactly as they would to a single crowdprice_serve, and the
// router shards campaigns across its backends by rendezvous hashing,
// fans decide batches out by owner, health-probes every backend, and
// fails over cleanly (Unavailable, never a crash) when one dies
// (src/router/router.h). --auth-token applies to both sides: clients
// must hello with it, and the router presents it to its backends.
//
// TLS also applies to both sides: --tls-cert/--tls-key terminate TLS on
// the router's own port, and --tls-ca makes every backend connection
// TLS (the cert/key pair, when given, is also presented to backends
// that demand client certificates). Mixed fleets are possible -- a TLS
// front over plain backends needs only --tls-cert/--tls-key, a plain
// front over TLS backends only --tls-ca.
//
// --port 0 binds an ephemeral port; the first stdout line is the
// machine-parseable `PORT <n>`, as with crowdprice_serve.
//
// Exit code 0 on clean shutdown, 1 on user error, 2 when the server
// fails to start.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/server.h"
#include "router/router.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

long FlagValue(int argc, char** argv, const char* name, long fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return std::strtol(argv[i + 1], nullptr, 10);
    }
  }
  return fallback;
}

std::string FlagString(int argc, char** argv, const char* name,
                       const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

std::vector<std::string> SplitCommas(const std::string& list) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= list.size()) {
    const size_t comma = list.find(',', start);
    const size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > start) out.push_back(list.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

void PrintStats(const crowdprice::net::PricingServer& server,
                const crowdprice::router::CampaignRouter& router) {
  const crowdprice::net::ServerStats frames = server.stats();
  const crowdprice::router::RouterStats routed = router.stats();
  size_t backends_up = 0;
  const auto health = router.Health();
  for (const auto& backend : health) {
    if (backend.up) ++backends_up;
  }
  std::printf(
      "conns=%llu frames=%llu decides=%llu control_ops=%llu "
      "unavailable=%llu live_campaigns=%zu backends_up=%zu/%zu "
      "placement_v=%llu migrations=%llu\n",
      static_cast<unsigned long long>(frames.connections_accepted),
      static_cast<unsigned long long>(frames.frames_received),
      static_cast<unsigned long long>(routed.decide_requests),
      static_cast<unsigned long long>(routed.control_ops),
      static_cast<unsigned long long>(routed.unavailable),
      router.live_campaigns(), backends_up, health.size(),
      static_cast<unsigned long long>(router.placement().version()),
      static_cast<unsigned long long>(routed.migrations));
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      std::printf(
          "usage: crowdprice_router --backends HOST:PORT[,HOST:PORT...]\n"
          "                         [--port N] [--workers N]\n"
          "                         [--max-frame-mb N]\n"
          "                         [--probe-interval-ms N]\n"
          "                         [--stats-every SECS]\n"
          "                         [--auth-token TOKEN]\n"
          "                         [--tls-cert PEM --tls-key PEM]\n"
          "                         [--tls-ca PEM]\n");
      return 0;
    }
  }
  const long port = FlagValue(argc, argv, "--port", 7700);
  const long workers = FlagValue(argc, argv, "--workers", 4);
  const long max_frame_mb = FlagValue(argc, argv, "--max-frame-mb", 64);
  const long probe_ms = FlagValue(argc, argv, "--probe-interval-ms", 250);
  const long stats_every = FlagValue(argc, argv, "--stats-every", 10);
  const std::string auth_token = FlagString(argc, argv, "--auth-token", "");
  const std::string tls_cert = FlagString(argc, argv, "--tls-cert", "");
  const std::string tls_key = FlagString(argc, argv, "--tls-key", "");
  const std::string tls_ca = FlagString(argc, argv, "--tls-ca", "");
  const std::vector<std::string> backends =
      SplitCommas(FlagString(argc, argv, "--backends", ""));
  if (port < 0 || port > 65535 || workers < 1 || max_frame_mb < 1) {
    std::fprintf(stderr, "crowdprice_router: bad flag value\n");
    return 1;
  }
  if (backends.empty()) {
    std::fprintf(stderr,
                 "crowdprice_router: --backends is required "
                 "(comma-separated host:port list)\n");
    return 1;
  }

  crowdprice::router::RouterOptions router_options;
  router_options.pool.client.max_frame_bytes =
      static_cast<uint32_t>(max_frame_mb) * (1u << 20);
  router_options.pool.client.auth_token = auth_token;
  if (!tls_ca.empty()) {
    router_options.pool.client.tls.ca_file = tls_ca;
    // Present the router's own identity to backends that demand client
    // certificates.
    router_options.pool.client.tls.cert_file = tls_cert;
    router_options.pool.client.tls.key_file = tls_key;
  }
  router_options.pool.probe_interval_ms = static_cast<int>(probe_ms);
  auto router =
      crowdprice::router::CampaignRouter::Create(backends, router_options);
  if (!router.ok()) {
    std::fprintf(stderr, "crowdprice_router: %s\n",
                 router.status().ToString().c_str());
    return 1;
  }

  crowdprice::net::ServerOptions options;
  options.port = static_cast<uint16_t>(port);
  options.num_workers = static_cast<int>(workers);
  options.max_frame_bytes = static_cast<uint32_t>(max_frame_mb) * (1u << 20);
  options.auth_token = auth_token;
  // The router's own port terminates TLS with cert/key only; demanding
  // client certificates of pricing clients is a frame-auth job
  // (--auth-token), not a transport one.
  options.tls.cert_file = tls_cert;
  options.tls.key_file = tls_key;
  auto server =
      crowdprice::net::PricingServer::Create(&router.value(), options);
  if (!server.ok()) {
    std::fprintf(stderr, "crowdprice_router: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  const crowdprice::Status started = server->Start();
  if (!started.ok()) {
    std::fprintf(stderr, "crowdprice_router: %s\n",
                 started.ToString().c_str());
    return 2;
  }
  std::printf("PORT %u\n", server->port());
  std::printf(
      "crowdprice_router listening on port %u (%zu backends, %ld "
      "workers%s%s%s)\n",
      server->port(), backends.size(), workers,
      auth_token.empty() ? "" : ", auth required",
      options.tls.enabled() ? ", tls front" : "",
      tls_ca.empty() ? "" : ", tls backends");
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  int ticks = 0;
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    if (stats_every > 0 && ++ticks >= stats_every * 5) {
      ticks = 0;
      PrintStats(*server, *router);
    }
  }

  std::printf("crowdprice_router: draining and shutting down\n");
  const crowdprice::Status stopped = server->Stop();
  if (!stopped.ok()) {
    std::fprintf(stderr, "crowdprice_router: %s\n",
                 stopped.ToString().c_str());
    return 2;
  }
  PrintStats(*server, *router);
  return 0;
}
